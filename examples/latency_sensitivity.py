"""Sensitivity to persistent-memory technology (a miniature Fig. 10).

Sweeps the PM latency multiplier from battery-backed DRAM (1x) to a slow
NVM technology (16x) and prints each scheme's throughput normalized to NP
at the same latency - showing why asynchronous commit makes ASAP "robust
against increasing persistent memory latency".

Run:  python examples/latency_sensitivity.py
"""

from repro import Machine, SystemConfig, make_scheme
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(num_threads=4, ops_per_thread=25, value_bytes=64)
MULTIPLIERS = [1, 2, 4, 16]
SCHEMES = ["asap", "hwundo", "hwredo"]
WORKLOAD = "HM"


def throughput(scheme, multiplier):
    cfg = SystemConfig.small(num_cores=8, pm_latency_multiplier=multiplier)
    machine = Machine(cfg, make_scheme(scheme))
    get_workload(WORKLOAD, PARAMS).install(machine)
    return machine.run().throughput


def main():
    print(f"workload: {WORKLOAD}; throughput normalized to NP (higher is better)")
    print(f"{'PM latency':>10s} " + "".join(f"{s:>9s}" for s in SCHEMES))
    for m in MULTIPLIERS:
        np_tp = throughput("np", m)
        row = [throughput(s, m) / np_tp for s in SCHEMES]
        print(f"{m:>9d}x " + "".join(f"{v:>9.2f}" for v in row))
    print()
    print("expected shape (paper Fig. 10): ASAP stays near NP across the")
    print("sweep; HWUndo and HWRedo fall away as persist operations on the")
    print("commit path stretch with the device latency.")


if __name__ == "__main__":
    main()

"""Visualizing asynchronous commit: the same program's timeline under a
synchronous-commit scheme (HWUndo) and under ASAP.

For each atomic region we print when `asap_end` retired and when the
region actually committed. Under HWUndo the two coincide (execution
stalls at the end of the region until it is durable); under ASAP the
instruction stream runs ahead and commits trail behind, in dependence
order - Fig. 4's state machine at work.

Run:  python examples/timeline.py
"""

from repro import Machine, SystemConfig, make_scheme
from repro.core.rid import unpack_rid
from repro.sim.ops import Begin, End, Read, Write
from repro.sim.trace import Tracer

REGIONS = 6


def run_traced(scheme_name):
    machine = Machine(SystemConfig.small(), make_scheme(scheme_name))
    tracer = Tracer(machine, trace_persists=False)
    a = machine.heap.alloc(64 * REGIONS)

    def worker(env):
        for i in range(REGIONS):
            yield Begin()
            (v,) = yield Read(a + 64 * i, 1)
            yield Write(a + 64 * i, [v + i])
            yield End()

    machine.spawn(worker)
    machine.run()
    return tracer


def show(scheme_name):
    tracer = run_traced(scheme_name)
    ends = {e.rid: e.cycle for e in tracer.of_kind("end")}
    commits = {e.rid: e.cycle for e in tracer.of_kind("commit")}
    print(f"\n{scheme_name}:")
    print(f"  {'region':>8} {'end retired':>12} {'committed':>10} {'lag':>6}")
    for rid in sorted(ends):
        lag = commits[rid] - ends[rid]
        print(
            f"  {str(unpack_rid(rid)):>8} {ends[rid]:>12} "
            f"{commits[rid]:>10} {lag:>6}"
        )
    lags = [commits[r] - ends[r] for r in ends]
    print(f"  mean commit lag: {sum(lags) / len(lags):.0f} cycles")


def main():
    print("one thread, six atomic regions, identical program:")
    show("hwundo")
    show("asap")
    print(
        "\nHWUndo stalls the thread until each region is durable (lag 0);"
        "\nASAP retires End immediately and commits in the background."
    )


if __name__ == "__main__":
    main()

"""A miniature design-space exploration (see docs/EXPLORE.md).

Sweeps a 2x2 grid - LH-WPQ depth x Dependence List capacity - over one
workload and prints the report: per-point throughput, the Pareto frontier
of throughput vs added on-chip area (Sec. 6.2 model), and the tornado
sensitivity of each axis.

The same sweep from the command line::

    asap-repro explore --axis lh_wpq_entries=1,16 \\
        --axis dep_list_entries=8,64 --workloads HM

Run:  python examples/explore_sweep.py
"""

from repro.explore import SweepSpace, analyze, explore, make_driver, to_markdown


def main():
    space = SweepSpace.build(
        axes={
            "lh_wpq_entries": [1, 16],
            "dep_list_entries": [8, 64],
        },
        workloads=["HM"],
        scheme="asap",
    )
    result = explore(space, make_driver("grid"), objective="throughput")
    print(to_markdown(result, analyze(result)), end="")
    print()
    best = result.best()
    print("expected shape: the 1-entry LH-WPQ stalls the commit pipeline")
    print("(the Sec. 7.4 effect), while Dependence List capacity only buys")
    print("area here - so the frontier trades those KBs against throughput.")
    print(
        f"Best by throughput alone: {dict(best.point)} "
        f"({best.area_bytes / 1024:.1f} KB added)."
    )


if __name__ == "__main__":
    main()

"""Quickstart: atomic durable regions with asynchronous commit.

Builds a small machine running the ASAP scheme, executes a few atomic
regions from two threads, and shows the headline behaviour: ``End``
retires immediately (asynchronous commit) while regions become durable in
dependence order in the background; ``Fence`` provides synchronous
persistence on demand (Sec. 5.2).

Run:  python examples/quickstart.py
"""

from repro import Machine, SystemConfig, make_scheme
from repro.sim.ops import Begin, End, Fence, Lock, Read, Unlock, Write


def main():
    machine = Machine(SystemConfig.small(), make_scheme("asap"))
    engine = machine.scheme.engine

    # asap_malloc: allocate persistent data (page-table bit set -> PBit)
    account_a = machine.heap.alloc(64)
    account_b = machine.heap.alloc(64)
    machine.bootstrap_write(account_a, [1000])  # durable initial balances
    machine.bootstrap_write(account_b, [1000])
    lock = machine.new_lock("accounts")

    commit_log = []
    engine.on_commit.append(
        lambda rid: commit_log.append((machine.scheduler.now, rid))
    )

    def transfer_worker(env, amount):
        """Move `amount` from A to B, five times, atomically each time."""
        for _ in range(5):
            yield Lock(lock)
            yield Begin()  # asap_begin
            (a,) = yield Read(account_a, 1)
            (b,) = yield Read(account_b, 1)
            yield Write(account_a, [a - amount])
            yield Write(account_b, [b + amount])
            yield End()  # asap_end: retires immediately, commits async
            yield Unlock(lock)
        committed_before_fence = len(commit_log)
        yield Fence()  # asap_fence: block until my last region is durable
        print(
            f"  thread {env.thread_id}: {committed_before_fence} commits "
            f"seen at fence entry, {len(commit_log)} after it returned"
        )

    machine.spawn(lambda env: transfer_worker(env, 10))
    machine.spawn(lambda env: transfer_worker(env, 25))

    result = machine.run()

    print(f"simulated {result.cycles} cycles, {result.regions_completed} regions")
    print(f"cycles/region: {result.cycles_per_region:.1f}")
    print(f"PM write traffic: {result.pm_writes} lines {result.pm_writes_by_kind}")
    print(f"commits (in dependence order): {[rid for _, rid in commit_log]}")

    # money is conserved, volatile and durable views agree
    total = machine.volatile.read_word(account_a) + machine.volatile.read_word(account_b)
    assert total == 2000, total
    assert machine.oracle.mismatches(machine.pm_image) == []
    print("balances conserved; durable state matches committed state")


if __name__ == "__main__":
    main()

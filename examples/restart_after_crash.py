"""Full crash lifecycle: run, crash, recover, restart, continue.

The end-to-end story persistent memory exists for: a string-swap array
(Table 3's SS) survives a power failure mid-run. We recover the PM image
with the paper's procedure, boot a fresh machine on the recovered state,
and keep working - verifying at every step that the string multiset is
intact (swaps move strings; a torn swap would duplicate or destroy one).

Run:  python examples/restart_after_crash.py
"""

from repro import Machine, SystemConfig, make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(num_threads=4, ops_per_thread=25, value_bytes=256, setup_items=32)


def build():
    machine = Machine(SystemConfig.small(), make_scheme("asap"))
    workload = get_workload("SS", PARAMS)
    workload.install(machine)
    return machine, workload


def main():
    # Phase 1: run until the lights go out.
    total = build()[0].run().cycles
    machine, workload = build()
    state = crash_machine(machine, at_cycle=total // 2)
    print(
        f"power failure at cycle {state.crash_cycle}: "
        f"{len(state.dependence_entries)} atomic regions in flight"
    )

    # Phase 2: recovery (Sec. 5.5).
    image, report = recover(state)
    verdict = verify_recovery(machine, image)
    assert verdict.ok, verdict.explain()
    errors = workload.validate_image(image)
    assert errors == [], errors
    print(
        f"recovered: {report.undone_count} regions rolled back, "
        f"{report.restored_lines} lines restored; string multiset intact"
    )

    # Phase 3: restart on the recovered state and keep swapping.
    machine2, workload2 = build()
    machine2.adopt_image(image)
    result = machine2.run()
    errors = workload2.validate_image(machine2.pm_image)
    assert errors == [], errors
    assert machine2.oracle.mismatches(machine2.pm_image) == []
    print(
        f"restarted and ran {result.regions_completed} more atomic swaps "
        f"({result.cycles} cycles); final durable state valid"
    )
    print("crash -> recover -> restart lifecycle complete")


if __name__ == "__main__":
    main()

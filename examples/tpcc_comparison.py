"""TPC-C New-Order under all six persistence schemes.

The paper's largest workload (5-15 order lines plus district and stock
updates per atomic region) run under all six schemes - NP / SW / HWUndo /
HWRedo / ASAP and the asap_redo extension - on the same machine
configuration: a miniature of the Fig. 7/8/9b columns for TPCC.

Run:  python examples/tpcc_comparison.py
"""

from repro import Machine, SystemConfig, make_scheme
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(num_threads=4, ops_per_thread=20, value_bytes=64)
SCHEMES = ["np", "sw", "hwundo", "hwredo", "asap", "asap_redo"]


def run(scheme):
    machine = Machine(SystemConfig.small(num_cores=8), make_scheme(scheme))
    get_workload("TPCC", PARAMS).install(machine)
    return machine.run()


def main():
    results = {scheme: run(scheme) for scheme in SCHEMES}
    sw = results["sw"]
    np_result = results["np"]

    header = (
        f"{'scheme':8s} {'cycles':>10s} {'speedup/SW':>11s} "
        f"{'cycles/region':>14s} {'vs NP':>7s} {'PM writes':>10s}"
    )
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        r = results[scheme]
        print(
            f"{scheme:8s} {r.cycles:>10d} {r.speedup_over(sw):>11.2f} "
            f"{r.cycles_per_region:>14.0f} "
            f"{r.cycles_per_region / np_result.cycles_per_region:>7.2f} "
            f"{r.pm_writes:>10d}"
        )

    asap = results["asap"]
    print()
    print(
        f"ASAP vs HWUndo: {asap.speedup_over(results['hwundo']):.2f}x faster, "
        f"{asap.traffic_ratio_over(results['hwundo']):.2f}x the PM traffic"
    )
    print(
        f"ASAP vs HWRedo: {asap.speedup_over(results['hwredo']):.2f}x faster, "
        f"{asap.traffic_ratio_over(results['hwredo']):.2f}x the PM traffic"
    )


if __name__ == "__main__":
    main()

"""Crash and recovery of a persistent key-value store.

Runs the Echo workload (Table 3's EO - a versioned KV store with a global
commit timestamp) under ASAP, pulls the plug mid-run, executes the paper's
Sec. 5.5 recovery procedure (dependence DAG -> reverse happens-before ->
undo from the per-thread logs), and verifies the recovered image is a
consistent prefix of the run.

Run:  python examples/kvstore_recovery.py
"""

from repro import Machine, SystemConfig, make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(num_threads=4, ops_per_thread=30, value_bytes=64, setup_items=32)


def build():
    machine = Machine(SystemConfig.small(), make_scheme("asap"))
    get_workload("EO", PARAMS).install(machine)
    return machine


def main():
    # dry run to learn the total length, then crash at a third of it
    total = build().run().cycles
    crash_cycle = total // 3
    print(f"full run: {total} cycles; crashing a fresh run at {crash_cycle}")

    machine = build()
    state = crash_machine(machine, at_cycle=crash_cycle)
    print(
        f"crash: {state.flushed_wpq_entries} WPQ entries ADR-flushed, "
        f"{len(state.dependence_entries)} uncommitted regions in the "
        f"persisted Dependence List"
    )
    for entry in state.dependence_entries[:6]:
        print(f"  uncommitted rid={entry['rid']:#x} state={entry['state']} deps={entry['deps']}")

    image, report = recover(state)
    print(
        f"recovery: scanned {report.records_scanned} log record slots, "
        f"matched {report.records_matched}, undid {report.undone_count} "
        f"regions, restored {report.restored_lines} lines"
    )

    verdict = verify_recovery(machine, image)
    print(verdict.explain())
    assert verdict.ok

    committed = len(machine.oracle.committed_rids)
    started = committed + len(machine.oracle.uncommitted_rids())
    print(
        f"outcome: {committed} regions durable, "
        f"{started - committed} rolled back atomically - no partial updates"
    )


if __name__ == "__main__":
    main()

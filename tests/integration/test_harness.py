"""Harness integration: experiments run and produce paper-shaped results.

These run on tiny workload sizes; they assert *directions* (who wins),
never absolute values.
"""

import pytest

from repro.harness.experiment import ExperimentResult, geomean
from repro.harness.experiments import REGISTRY, area, fig1, fig7, fig8, fig9a, fig9b
from repro.harness.cli import main

FAST = ["HM", "SS"]  # quickest two workloads


def test_geomean():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([2, 0, 8]) == 4.0  # zeros skipped


def test_geomean_row_surfaces_dropped_cells():
    # a zero cell cannot enter the geomean; it is excluded but must be
    # called out in notes, not silently inflate the aggregate
    r = ExperimentResult("X", "t", columns=["a", "b"])
    r.add_row("w1", a=2.0, b=1.0)
    r.add_row("w2", a=0.0, b=4.0)
    gm = r.geomean_row()
    assert gm["a"] == pytest.approx(2.0)
    assert gm["b"] == pytest.approx(2.0)
    assert "w2:a" in r.notes and "non-positive" in r.notes
    assert "w1" not in r.notes


def test_geomean_row_appends_to_existing_notes():
    r = ExperimentResult("X", "t", columns=["a"], notes="prior note")
    r.add_row("w1", a=0.0)
    r.geomean_row()
    assert r.notes.startswith("prior note; ")
    assert "w1:a" in r.notes


def test_geomean_row_no_note_when_all_positive():
    r = ExperimentResult("X", "t", columns=["a"])
    r.add_row("w1", a=1.5)
    r.geomean_row()
    assert r.notes == ""


def test_experiment_result_table_renders():
    r = ExperimentResult("X", "t", columns=["a", "b"])
    r.add_row("w1", a=1.0, b=2.0)
    r.geomean_row()
    text = r.to_table()
    assert "w1" in text and "GeoMean" in text


def test_fig1_shape():
    result = fig1.run(quick=True, workloads=FAST)
    gm = result.rows["GeoMean"]
    # persist operations cost throughput; logging costs more than flushing
    assert gm["DPO Only"] < 1.0
    assert gm["LPO & DPO"] < gm["DPO Only"]


def test_fig7_shape():
    result = fig7.run(quick=True, workloads=["HM"], sizes=[64])
    gm = result.rows["GeoMean"]
    assert gm["ASAP"] > gm["HWUndo"] > 1.0
    assert gm["ASAP"] > gm["HWRedo"] > 1.0
    assert gm["NP"] >= gm["ASAP"] * 0.95


def test_fig8_shape():
    result = fig8.run(quick=True, workloads=["HM"], sizes=[64])
    gm = result.rows["GeoMean"]
    assert gm["SW"] > gm["HWUndo"] > gm["ASAP"]
    assert gm["ASAP"] < 1.7


def test_fig9a_monotone():
    result = fig9a.run(quick=True, workloads=FAST)
    gm = result.rows["GeoMean"]
    assert gm["ASAP-No-Opt"] >= gm["ASAP+C"] >= gm["ASAP+C+LP"] >= gm["ASAP"] == pytest.approx(1.0)
    assert gm["ASAP-No-Opt"] > 1.2


def test_fig9b_shape():
    result = fig9b.run(quick=True, workloads=FAST)
    gm = result.rows["GeoMean"]
    assert gm["SW"] > gm["HWUndo"] > 1.0
    assert gm["SW"] > gm["HWRedo"] > 1.0


def test_area_experiment():
    result = area.run()
    assert result.rows["measured"]["total %"] < 3.0


def test_registry_complete():
    assert set(REGISTRY) == {
        "fig1", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig10_overlap",
        "lhwpq", "area", "ablations", "extension", "numa", "corun", "eadr",
        "serve-bench",
    }


def test_cli_config_and_workloads(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "128 WPQ entries" in out
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "TPCC" in out


def test_cli_runs_area(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "Sec. 6.2" in out


def test_cli_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_crashtest_command(capsys):
    assert main(["crashtest", "--workloads", "SS"]) == 0
    out = capsys.readouterr().out
    assert "SS/asap: CONSISTENT" in out
    assert "SS/asap_redo: CONSISTENT" in out


def test_crashtest_api_report_fields():
    from repro.harness.crashtest import run_crashtest

    report = run_crashtest(workload="Q", scheme="asap", points=6)
    assert report.ok
    assert report.points_checked == 6
    assert report.points_with_rollback > 0
    assert "CONSISTENT" in report.summary()


def test_summary_command(capsys):
    assert main(["summary", "--workloads", "HM"]) == 0
    out = capsys.readouterr().out
    assert "headline claims" in out
    assert "area overhead" in out


def test_summary_ratio_handles_zero_denominator():
    # a quick run can yield a zero NP geomean; summary must print n/a
    # instead of crashing with ZeroDivisionError
    from repro.harness.cli import _ratio

    assert _ratio(2.0, 0.0) == "n/a"
    assert _ratio(2.0, 0) == "n/a"
    assert _ratio(3.0, 2.0) == "1.50x"
    assert _ratio(1, 0.52, "x NP") == "1.92x NP"


def test_serve_bench_shape(capsys):
    assert main(["serve-bench", "--workloads", "SVC", "--no-progress",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "SVC" in out and "p99" in out and "offered" in out


def test_cli_serve_bench_jobs_and_cache_byte_identity(tmp_path, capsys):
    # The open-loop rows (arrival schedule, histogram, percentiles) must
    # be byte-identical across worker counts and cache states: cold
    # serial, warm parallel, and cold parallel all emit the same JSON.
    cold1 = tmp_path / "cold1.json"
    warm2 = tmp_path / "warm2.json"
    cold2 = tmp_path / "cold2.json"
    args = ["serve-bench", "--workloads", "SVC", "--no-progress"]
    cache = str(tmp_path / "cache")
    assert main(args + ["--cache-dir", cache, "--jobs", "1",
                        "--json", str(cold1)]) == 0
    capsys.readouterr()
    assert main(args + ["--cache-dir", cache, "--jobs", "2",
                        "--json", str(warm2)]) == 0
    assert "cells from cache" in capsys.readouterr().out
    assert main(args + ["--cache-dir", str(tmp_path / "cache2"), "--jobs", "2",
                        "--json", str(cold2)]) == 0
    assert cold1.read_text() == warm2.read_text() == cold2.read_text()


def test_cli_jobs_and_cache_flags(tmp_path, capsys):
    json1 = tmp_path / "j1.json"
    json4 = tmp_path / "j4.json"
    cache_dir = tmp_path / "cache"
    args = ["fig7", "--workloads", "HM", "--no-progress", "--cache-dir", str(cache_dir)]
    assert main(args + ["--jobs", "1", "--json", str(json1)]) == 0
    capsys.readouterr()
    assert main(args + ["--jobs", "2", "--json", str(json4)]) == 0
    out = capsys.readouterr().out
    # second invocation was fully cache-fed, and rows are byte-identical
    assert "cells from cache" in out
    assert json1.read_text() == json4.read_text()

"""Harness integration: experiments run and produce paper-shaped results.

These run on tiny workload sizes; they assert *directions* (who wins),
never absolute values.
"""

import pytest

from repro.harness.experiment import ExperimentResult, geomean
from repro.harness.experiments import REGISTRY, area, fig1, fig7, fig8, fig9a, fig9b
from repro.harness.cli import main

FAST = ["HM", "SS"]  # quickest two workloads


def test_geomean():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([2, 0, 8]) == 4.0  # zeros skipped


def test_experiment_result_table_renders():
    r = ExperimentResult("X", "t", columns=["a", "b"])
    r.add_row("w1", a=1.0, b=2.0)
    r.geomean_row()
    text = r.to_table()
    assert "w1" in text and "GeoMean" in text


def test_fig1_shape():
    result = fig1.run(quick=True, workloads=FAST)
    gm = result.rows["GeoMean"]
    # persist operations cost throughput; logging costs more than flushing
    assert gm["DPO Only"] < 1.0
    assert gm["LPO & DPO"] < gm["DPO Only"]


def test_fig7_shape():
    result = fig7.run(quick=True, workloads=["HM"], sizes=[64])
    gm = result.rows["GeoMean"]
    assert gm["ASAP"] > gm["HWUndo"] > 1.0
    assert gm["ASAP"] > gm["HWRedo"] > 1.0
    assert gm["NP"] >= gm["ASAP"] * 0.95


def test_fig8_shape():
    result = fig8.run(quick=True, workloads=["HM"], sizes=[64])
    gm = result.rows["GeoMean"]
    assert gm["SW"] > gm["HWUndo"] > gm["ASAP"]
    assert gm["ASAP"] < 1.7


def test_fig9a_monotone():
    result = fig9a.run(quick=True, workloads=FAST)
    gm = result.rows["GeoMean"]
    assert gm["ASAP-No-Opt"] >= gm["ASAP+C"] >= gm["ASAP+C+LP"] >= gm["ASAP"] == pytest.approx(1.0)
    assert gm["ASAP-No-Opt"] > 1.2


def test_fig9b_shape():
    result = fig9b.run(quick=True, workloads=FAST)
    gm = result.rows["GeoMean"]
    assert gm["SW"] > gm["HWUndo"] > 1.0
    assert gm["SW"] > gm["HWRedo"] > 1.0


def test_area_experiment():
    result = area.run()
    assert result.rows["measured"]["total %"] < 3.0


def test_registry_complete():
    assert set(REGISTRY) == {
        "fig1", "fig7", "fig8", "fig9a", "fig9b", "fig10", "lhwpq", "area",
        "ablations", "extension", "numa", "corun", "eadr",
    }


def test_cli_config_and_workloads(capsys):
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "128 WPQ entries" in out
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "TPCC" in out


def test_cli_runs_area(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "Sec. 6.2" in out


def test_cli_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_crashtest_command(capsys):
    assert main(["crashtest", "--workloads", "SS"]) == 0
    out = capsys.readouterr().out
    assert "SS/asap: CONSISTENT" in out
    assert "SS/asap_redo: CONSISTENT" in out


def test_crashtest_api_report_fields():
    from repro.harness.crashtest import run_crashtest

    report = run_crashtest(workload="Q", scheme="asap", points=6)
    assert report.ok
    assert report.points_checked == 6
    assert report.points_with_rollback > 0
    assert "CONSISTENT" in report.summary()


def test_summary_command(capsys):
    assert main(["summary", "--workloads", "HM"]) == 0
    out = capsys.readouterr().out
    assert "headline claims" in out
    assert "area overhead" in out

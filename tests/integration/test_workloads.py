"""Every Table 3 workload under every scheme: functional consistency."""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload, workload_names

PARAMS = WorkloadParams(num_threads=3, ops_per_thread=12, value_bytes=64, setup_items=24)


def run(workload, scheme, params=PARAMS, **small_kwargs):
    m = Machine(SystemConfig.small(**small_kwargs), make_scheme(scheme))
    get_workload(workload, params).install(m)
    return m, m.run()


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize("scheme", ["np", "sw", "hwundo", "hwredo", "asap"])
def test_workload_completes_and_commits(workload, scheme):
    m, res = run(workload, scheme)
    assert res.regions_completed == PARAMS.num_threads * PARAMS.ops_per_thread
    assert m.oracle.uncommitted_rids() == []


@pytest.mark.parametrize("workload", workload_names())
def test_committed_image_matches_volatile_at_quiescence(workload):
    """At quiescence every region has committed, so the oracle's durable
    image must agree with the volatile truth on all tracked words."""
    m, res = run(workload, "asap")
    assert m.oracle.mismatches(m.volatile) == []


@pytest.mark.parametrize("workload", workload_names())
def test_pm_image_matches_committed_after_drain(workload):
    """After the event queue drains (all DPOs issued and applied), the PM
    image itself must hold every committed value."""
    m, res = run(workload, "asap")
    diffs = m.oracle.mismatches(m.pm_image)
    assert diffs == [], diffs[:5]


@pytest.mark.parametrize("workload", workload_names())
def test_workload_2kb_payloads(workload):
    params = WorkloadParams(num_threads=2, ops_per_thread=6, value_bytes=2048, setup_items=12)
    m, res = run(workload, "asap", params)
    assert res.regions_completed == 12
    assert m.oracle.mismatches(m.pm_image) == []


@pytest.mark.parametrize("workload", workload_names())
def test_workload_deterministic(workload):
    _, res1 = run(workload, "asap")
    _, res2 = run(workload, "asap")
    assert res1.cycles == res2.cycles
    assert res1.pm_writes == res2.pm_writes


def test_workload_registry():
    assert workload_names() == ["BN", "BT", "CT", "EO", "HM", "Q", "RB", "SS", "TPCC"]
    with pytest.raises(Exception):
        get_workload("NOPE")


@pytest.mark.parametrize("workload", ["BN", "HM", "Q"])
def test_single_thread_variant(workload):
    params = WorkloadParams(num_threads=1, ops_per_thread=20, setup_items=16)
    m, res = run(workload, "asap", params)
    assert res.regions_completed == 20


@pytest.mark.parametrize("fraction", [0.0, 1.0])
def test_update_fraction_extremes(fraction):
    """update_fraction=0 -> pure inserts; =1 -> pure updates (where the
    structure has entries to update)."""
    params = WorkloadParams(
        num_threads=2, ops_per_thread=10, setup_items=16, update_fraction=fraction
    )
    m, res = run("BN", "asap", params)
    assert res.regions_completed == 20
    assert m.oracle.mismatches(m.pm_image) == []


def test_update_fraction_changes_footprint():
    """Pure updates allocate no new nodes; pure inserts allocate many."""
    def heap_use(fraction):
        params = WorkloadParams(
            num_threads=2, ops_per_thread=15, setup_items=16,
            update_fraction=fraction,
        )
        m, _ = run("HM", "asap", params)
        return m.heap.allocated_bytes

    assert heap_use(0.0) > heap_use(1.0)

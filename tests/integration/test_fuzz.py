"""The interleaving-aware crash fuzzer, tested against itself.

Three contracts: campaigns are deterministic per seed; the current code
survives a small campaign across both schemes; and - run against the
preserved pre-fix WPQ model - the fuzzer *finds* the historical bug from
the corpus seeds and shrinks it to a minimal still-failing schedule.
"""

import json
import os
import subprocess
import sys

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "property", "corpus"
)

from repro.harness.fuzz import (
    FuzzCase,
    case_failures,
    check_no_crash,
    generate_case,
    load_corpus_entry,
    mutate_case,
    run_fuzz,
    save_corpus_entry,
    shrink_case,
)

ROADMAP_UNDO_THREADS = [
    [[(0, False, 0)], [(1, False, 0), (3, False, 0)],
     [(0, False, 0), (1, False, 0), (4, False, 0)]],
    [[(0, False, 0), (2, False, 0)], [(6, False, 0)], [(4, True, 1)]],
]


def legacy_case(**kw):
    kw.setdefault("scheme", "asap")
    kw.setdefault("threads", ROADMAP_UNDO_THREADS)
    kw.setdefault("wpq_entries", 4)
    return FuzzCase(fifo_backpressure=False, **kw)


def test_generation_is_deterministic():
    a = generate_case(7, 3, "asap")
    b = generate_case(7, 3, "asap")
    assert a == b
    assert generate_case(7, 4, "asap") != a


def test_case_json_round_trip():
    case = generate_case(0, 0, "asap_redo")
    again = FuzzCase.from_json(json.loads(json.dumps(case.to_json())))
    assert again == case


def test_small_campaign_clean_on_fixed_code():
    report = run_fuzz(seed=0, budget=24, crash_points=1)
    assert report.ok, report.failures
    assert report.runs >= 24
    assert {"asap", "asap_redo"} <= set(report.schemes)


def test_campaign_is_deterministic():
    r1 = run_fuzz(seed=3, budget=12, crash_points=1)
    r2 = run_fuzz(seed=3, budget=12, crash_points=1)
    assert r1.runs == r2.runs
    assert r1.wpq_sizes == r2.wpq_sizes
    assert r1.failures == r2.failures


def test_fuzzer_finds_the_prefix_bug_from_corpus_seeds():
    # Corpus-seeded mutation must rediscover the historical hazard when
    # fuzzing the preserved pre-fix backpressure model.
    report = run_fuzz(
        seed=0,
        budget=80,
        crash_points=0,
        schemes=("asap",),
        shrink=False,
        fifo_backpressure=False,
        corpus=[FuzzCase(scheme="asap", threads=ROADMAP_UNDO_THREADS,
                         wpq_entries=4)],
    )
    assert not report.ok, "fuzzer failed to rediscover the pre-fix bug"
    assert any("committed values missing" in f for f in report.failures)


def test_shrinker_on_the_original_prefix_schedule():
    # Acceptance criterion: given the original failing schedule pre-fix,
    # the shrinker produces a minimal example that still fails. (The
    # original is already hypothesis-minimal, so "minimal" here means no
    # larger - and every single-element removal must flip it to passing,
    # which is what the fixed-point guarantees.)
    case = legacy_case()

    def still_fails(c):
        return bool(case_failures(c, crash_points=0))

    assert still_fails(case)
    minimal = shrink_case(case, still_fails)
    assert still_fails(minimal)
    assert minimal.size <= case.size


def test_shrinker_removes_padding():
    # Pad the known-minimal schedule with an irrelevant third thread and
    # jitter; the shrinker must strip at least the padding back off.
    padded = legacy_case(
        threads=ROADMAP_UNDO_THREADS + [[[(9, False, 3)], [(10, False, 4)]]],
        jitter=[[], [], [0, 60]],
    )

    def still_fails(c):
        return bool(case_failures(c, crash_points=0))

    assert still_fails(padded)
    minimal = shrink_case(padded, still_fails)
    assert still_fails(minimal)
    assert len(minimal.threads) == 2
    assert minimal.size <= legacy_case().size


def test_mutation_preserves_wellformedness():
    import random

    rng = random.Random(0)
    case = generate_case(0, 1, "asap")
    for _ in range(50):
        case = mutate_case(case, rng)
        assert case.threads and all(case.threads)
        for thread in case.threads:
            for region in thread:
                assert region
                for line, rmw, value in region:
                    assert 0 <= line < 12
                    assert isinstance(rmw, bool)


def test_corpus_save_load_round_trip(tmp_path):
    case = generate_case(0, 2, "asap_redo")
    path = str(tmp_path / "entry.json")
    save_corpus_entry(case, path, "round-trip test")
    loaded, meta = load_corpus_entry(path)
    assert loaded == case
    assert meta["description"] == "round-trip test"
    assert meta["example"].startswith("@example(")


def test_cli_exit_codes():
    # clean campaign -> 0; legacy campaign seeded by the corpus -> 1
    env_cmd = [sys.executable, "-m", "repro.harness.cli"]
    clean = subprocess.run(
        env_cmd + ["fuzz", "--seed", "0", "--budget", "6", "--points", "1"],
        capture_output=True, text=True,
    )
    assert clean.returncode == 0, clean.stderr
    assert "CLEAN" in clean.stdout
    # budget sized to re-find the pinned backpressure bug from the
    # current corpus seed pool (grows as entries are added)
    failing = subprocess.run(
        env_cmd + ["fuzz", "--seed", "0", "--budget", "80", "--points", "0",
                   "--scheme", "asap", "--legacy-backpressure", "--no-shrink",
                   "--corpus", CORPUS_DIR],
        capture_output=True, text=True,
    )
    assert failing.returncode == 1, failing.stdout + failing.stderr
    assert "FAILURES" in failing.stdout


def test_example_line_is_pasteable():
    case = FuzzCase(scheme="asap", threads=ROADMAP_UNDO_THREADS)
    line = case.example_line()
    assert line.startswith("@example(threads=")
    assert "test_prop_recovery" in line
    # the embedded literal must evaluate back to the schedule
    literal = line.split("@example(threads=", 1)[1].split(")  #", 1)[0]
    assert eval(literal) == ROADMAP_UNDO_THREADS


def test_check_no_crash_flags_the_legacy_bug():
    assert check_no_crash(legacy_case())
    fixed = FuzzCase(scheme="asap", threads=ROADMAP_UNDO_THREADS,
                     wpq_entries=4)
    assert check_no_crash(fixed) == []

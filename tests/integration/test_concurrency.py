"""Concurrency effects the paper motivates in Secs. 1-2.

"High latency atomic regions translate into high latency critical
sections and consequently more lock contention. The latency overhead of
persist operations is therefore harmful for concurrency." (Sec. 2.1)
"""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write


def contended_run(scheme, threads=6, regions=12):
    m = Machine(SystemConfig.small(num_cores=8), make_scheme(scheme))
    a = m.heap.alloc(64 * 4)
    lock = m.new_lock("hot")

    def worker(env, tid):
        for i in range(regions):
            yield Lock(lock)
            yield Begin()
            for j in range(4):
                (v,) = yield Read(a + 64 * j, 1)
                yield Write(a + 64 * j, [v + 1])
            yield End()
            yield Unlock(lock)

    for t in range(threads):
        m.spawn(lambda env, t=t: worker(env, t))
    res = m.run()
    return m, res, lock


def test_sync_persists_amplify_lock_contention():
    """Under one hot lock, the synchronous schemes' end-of-region persist
    waits extend every critical section, collapsing total throughput; the
    counter increments still serialize correctly everywhere."""
    results = {}
    for scheme in ("np", "sw", "hwundo", "asap"):
        m, res, lock = contended_run(scheme)
        results[scheme] = res
        # correctness under contention: all increments applied
        base = min(m.oracle.tracked_words)
        assert m.volatile.read_word(base) == 6 * 12
    assert results["sw"].cycles > results["hwundo"].cycles > results["asap"].cycles
    # ASAP's critical sections are persist-free: close to NP even contended
    assert results["asap"].cycles <= results["np"].cycles * 1.6
    # SW holds the lock across its flushes: dramatic collapse
    assert results["sw"].cycles > 2 * results["asap"].cycles


def test_asap_critical_section_excludes_persist_wait():
    """The unlock happens before the region's persists complete under
    ASAP: lock hold time is independent of PM latency."""

    def hold_cycles(scheme, mult):
        m = Machine(
            SystemConfig.small(num_cores=4, pm_latency_multiplier=mult),
            make_scheme(scheme),
        )
        a = m.heap.alloc(64)
        lock = m.new_lock()
        stamps = []

        def worker(env):
            for i in range(6):
                yield Lock(lock)
                start = m.scheduler.now
                yield Begin()
                (v,) = yield Read(a, 1)
                yield Write(a, [v + 1])
                yield End()
                yield Unlock(lock)
                stamps.append(m.scheduler.now - start)

        m.spawn(worker)
        m.run()
        return sum(stamps) / len(stamps)

    asap_fast = hold_cycles("asap", 1)
    asap_slow = hold_cycles("asap", 8)
    undo_fast = hold_cycles("hwundo", 1)
    undo_slow = hold_cycles("hwundo", 8)
    # ASAP's critical sections are much shorter at any PM speed (no
    # persist wait inside the lock) and grow far less with PM latency -
    # the residual growth is structural backpressure, not a commit wait
    assert asap_fast < 0.5 * undo_fast
    assert asap_slow < 0.5 * undo_slow
    assert (undo_slow / undo_fast) > (asap_slow / asap_fast)
    assert undo_slow > 3 * asap_slow


def test_volatile_data_dependences_are_not_tracked():
    """Sec. 5.4: writes to non-persistent memory carry no OwnerRID, so a
    region reading another region's volatile output records no dependence
    - the documented (and justified) non-feature."""
    m = Machine(SystemConfig.small(), make_scheme("asap"))
    eng = m.scheme.engine
    scratch = m.dram_heap.alloc(64)  # volatile
    pm = m.heap.alloc(64)
    lock = m.new_lock()

    def producer(env):
        yield Lock(lock)
        yield Begin()
        yield Write(scratch, [7])  # volatile write inside a region
        yield Write(pm, [1])
        yield End()
        yield Unlock(lock)

    def consumer(env):
        yield Lock(lock)
        yield Begin()
        (v,) = yield Read(scratch, 1)  # volatile read: no dep capture
        yield Write(pm + 8, [v])
        yield End()
        yield Unlock(lock)

    m.spawn(producer)
    m.spawn(consumer)
    m.run()
    # only the control-free PM line writes could create deps; scratch never
    meta = m.hierarchy.tags.get(scratch)
    assert meta is None or meta.owner_rid is None
    assert m.volatile.read_word(pm + 8) == 7  # functionally still works


def test_fence_per_region_degenerates_toward_synchronous():
    """Sec. 6.4: "If asap_fence is used [between regions], then ASAP
    degenerates to HWUndo" - fencing every region forfeits the
    asynchronous-commit advantage."""
    from repro.sim.ops import Fence

    def run(scheme, fence_each):
        m = Machine(SystemConfig.small(num_cores=2), make_scheme(scheme))
        a = m.heap.alloc(64 * 4)

        def worker(env):
            for i in range(25):
                yield Begin()
                yield Write(a + 64 * (i % 4), [i])
                yield End()
                if fence_each:
                    yield Fence()

        m.spawn(worker)
        return m.run()

    asap_free = run("asap", fence_each=False)
    asap_fenced = run("asap", fence_each=True)
    hwundo = run("hwundo", fence_each=False)
    # fencing costs ASAP dearly: every region now waits for its commit
    assert asap_fenced.cycles > 2 * asap_free.cycles
    # ...landing it in synchronous-commit territory. (It still edges out
    # our HWUndo because a fenced ASAP waits for WPQ accepts while the
    # pre-ADR baseline waits for NVM drains - see docs/PROTOCOL.md.)
    assert asap_fenced.cycles > 0.4 * hwundo.cycles

"""Configuration-space integration: full Table 2 machine, many channels,
crash on baseline schemes, CLI output formats, determinism."""

import json

import pytest

from repro.common.params import SystemConfig
from repro.harness.cli import main
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(num_threads=4, ops_per_thread=8, setup_items=16)


def test_full_table2_machine_runs():
    """The unscaled 18-core / 4-channel / 128-WPQ configuration."""
    machine = Machine(SystemConfig(), make_scheme("asap"))
    params = WorkloadParams(num_threads=8, ops_per_thread=6, setup_items=16)
    get_workload("HM", params).install(machine)
    res = machine.run()
    assert res.regions_completed == 48
    assert machine.oracle.mismatches(machine.pm_image) == []


def test_full_table2_crash_recovery():
    def build():
        machine = Machine(SystemConfig(), make_scheme("asap"))
        get_workload("Q", PARAMS).install(machine)
        return machine

    total = build().run().cycles
    machine = build()
    state = crash_machine(machine, at_cycle=total // 2)
    image, _ = recover(state)
    assert verify_recovery(machine, image).ok


def test_single_channel_machine():
    cfg = SystemConfig.small(num_cores=2)
    from dataclasses import replace

    cfg = replace(
        cfg, memory=replace(cfg.memory, num_controllers=1, channels_per_controller=1)
    )
    machine = Machine(cfg, make_scheme("asap"))
    get_workload("BN", PARAMS).install(machine)
    res = machine.run()
    assert res.regions_completed == 32
    assert machine.oracle.mismatches(machine.pm_image) == []


def test_eight_channel_machine():
    cfg = SystemConfig.small(num_cores=4)
    from dataclasses import replace

    cfg = replace(
        cfg, memory=replace(cfg.memory, num_controllers=4, channels_per_controller=2)
    )
    machine = Machine(cfg, make_scheme("asap"))
    get_workload("HM", PARAMS).install(machine)
    res = machine.run()
    assert res.regions_completed == 32
    assert len(machine.scheme.engine.dep_lists) == 8


@pytest.mark.parametrize("scheme", ["np", "sw", "hwundo", "hwredo"])
def test_crash_on_non_asap_schemes_is_benign(scheme):
    """crash_machine works on every scheme; recovery is a no-op where the
    scheme exposes no dependence snapshot (everything durable was already
    in place or in the flushed WPQ)."""
    machine = Machine(SystemConfig.small(), make_scheme(scheme))
    get_workload("SS", PARAMS).install(machine)
    state = crash_machine(machine, at_cycle=2000)
    image, report = recover(state)
    assert report.undone_count == 0  # no dependence entries -> nothing to undo


def test_cli_json_output(tmp_path, capsys):
    out = tmp_path / "results.json"
    assert main(["area", "--json", str(out)]) == 0
    data = json.loads(out.read_text())
    assert "area" in data
    assert data["area"][0]["exp_id"] == "Sec. 6.2"
    assert "measured" in data["area"][0]["rows"]


def test_cli_csv_output(tmp_path, capsys):
    assert main(["area", "--csv-dir", str(tmp_path)]) == 0
    csv_text = (tmp_path / "area.csv").read_text()
    assert csv_text.splitlines()[0] == "label,core %,uncore %,total %"


@pytest.mark.parametrize("scheme", ["asap", "hwundo", "sw", "asap_redo"])
def test_scheme_determinism(scheme):
    def run():
        machine = Machine(SystemConfig.small(), make_scheme(scheme))
        get_workload("EO", PARAMS).install(machine)
        res = machine.run()
        return (res.cycles, res.pm_writes, sorted(machine.oracle.committed_rids))

    assert run() == run()

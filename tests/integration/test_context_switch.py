"""Context switching (Sec. 5.7): migrate threads between cores."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Migrate, Read, Write


def make(scheme="asap", **kwargs):
    m = Machine(SystemConfig.small(**kwargs), make_scheme(scheme))
    return m, m.heap.alloc(64 * 8)


@pytest.mark.parametrize("scheme", ["np", "sw", "hwundo", "hwredo", "asap"])
def test_migrate_between_regions(scheme):
    m, a = make(scheme)

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield Migrate(2)
        yield Begin()
        (v,) = yield Read(a, 1)
        yield Write(a + 64, [v + 1])
        yield End()

    m.spawn(worker, core_id=0)
    res = m.run()
    assert res.regions_completed == 2
    assert m.volatile.read_word(a + 64) == 2
    assert m.oracle.uncommitted_rids() == []


def test_asap_migrate_drains_cl_entries():
    m, a = make("asap")
    eng = m.scheme.engine
    snapshots = {}

    def worker(env):
        for i in range(3):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()
        snapshots["before"] = len(m.scheme.engine.cl_lists[0])
        yield Migrate(3)
        snapshots["after_old_core"] = len(m.scheme.engine.cl_lists[0])
        yield Begin()
        yield Write(a + 64 * 5, [5])
        yield End()

    m.spawn(worker, core_id=0)
    m.run()
    # the old core's CL List was drained before the thread resumed
    assert snapshots["after_old_core"] == 0
    assert eng.stats.commits == 4
    assert eng.threads[0].core_id == 3


def test_asap_migrate_inside_region_rejected():
    m, a = make("asap")

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield Migrate(1)
        yield End()

    m.spawn(worker, core_id=0)
    with pytest.raises(SimulationError, match="context switch inside"):
        m.run()


def test_migrate_to_bad_core_rejected():
    m, a = make("np")

    def worker(env):
        yield Migrate(99)

    m.spawn(worker)
    with pytest.raises(SimulationError, match="nonexistent core"):
        m.run()


def test_migrate_preserves_thread_state_registers():
    m, a = make("asap")
    eng = m.scheme.engine

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield Migrate(2)

    m.spawn(worker, core_id=1)
    m.run()
    regs = eng.threads[0].regs
    assert regs.cur_local_rid == 1  # survived the save/restore
    assert regs.nest_depth == 0


def test_crash_recovery_with_migrations():
    def build():
        m = Machine(SystemConfig.small(), make_scheme("asap"))
        a = m.heap.alloc(64 * 16)

        def worker(env, tid):
            for i in range(8):
                yield Begin()
                (v,) = yield Read(a + 64 * ((tid + i) % 16), 1)
                yield Write(a + 64 * ((tid + i) % 16), [v + 1])
                yield End()
                if i % 3 == 2:
                    yield Migrate((tid + i) % m.config.num_cores)

        for t in range(3):
            m.spawn(lambda env, t=t: worker(env, t))
        return m

    total = build().run().cycles
    for frac in (0.4, 0.8):
        m = build()
        state = crash_machine(m, at_cycle=int(total * frac))
        image, _ = recover(state)
        verdict = verify_recovery(m, image)
        assert verdict.ok, verdict.explain()

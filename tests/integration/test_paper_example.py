"""Replays the paper's worked example (Fig. 6): two concurrent atomic
regions on two cores with a data dependence through location A.

R1 (core 0): lock; A = A'; B = B'; unlock  - ends first
R2 (core 1): lock; A = A''; unlock        - depends on R1 via A

Checks performed along the way mirror the figure's panels: ownership
transfer, the dependence entry, the commit ordering, and the DPO-dropping
interaction between R1's DPO[A'] and R2's LPO[A'].
"""

from repro.common.params import SystemConfig
from repro.core.rid import pack_rid
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write


def build():
    # a single-entry WPQ keeps persist ops outstanding long enough for the
    # dependence to be captured, like the figure's timeline
    m = Machine(SystemConfig.small(wpq_entries=1), make_scheme("asap"))
    eng = m.scheme.engine
    return m, eng


def test_fig6_walkthrough():
    m, eng = build()
    a = m.heap.alloc(64)
    b = m.heap.alloc(64)
    m.bootstrap_write(a, [100])  # A (old value)
    m.bootstrap_write(b, [200])  # B (old value)
    x = m.new_lock("x")
    r1 = pack_rid(0, 1)
    r2 = pack_rid(1, 1)
    observations = {}
    commit_order = []
    eng.on_commit.append(commit_order.append)

    def thread1(env):
        yield Lock(x)
        yield Begin()
        yield Write(a, [101])  # A = A' (first write: LPO on old A)
        # Fig. 6a: R1 owns A's line, which is locked while the LPO flies
        meta = m.hierarchy.tags.get(a)
        observations["owner_after_A"] = meta.owner_rid
        observations["locked_after_A"] = meta.lock_bit
        yield Write(b, [201])  # B = B'
        yield Unlock(x)
        yield End()

    def thread2(env):
        yield Lock(x)
        yield Begin()
        (va,) = yield Read(a, 1)
        observations["r2_sees"] = va
        yield Write(a, [102])  # A = A'' (takes ownership, Fig. 6d)
        observations["owner_after_A2"] = m.hierarchy.tags.get(a).owner_rid
        dep_entry = eng.dep_list_for(r2).entry(r2)
        observations["r2_deps"] = set(dep_entry.deps)
        yield Unlock(x)
        yield End()

    m.spawn(thread1, core_id=0)
    m.spawn(thread2, core_id=1)
    m.run()

    # Fig. 6a: first write locked the line and made R1 its owner
    assert observations["owner_after_A"] == r1
    assert observations["locked_after_A"] is True
    # Fig. 6d: R2 read R1's value, took ownership, recorded the dependence
    assert observations["r2_sees"] == 101
    assert observations["owner_after_A2"] == r2
    assert r1 in observations["r2_deps"]
    # Fig. 6g/h: R1 commits first, then (its dependence cleared) R2
    assert commit_order.index(r1) < commit_order.index(r2)
    assert eng.stats.commits == 2
    # Fig. 6e: R2's LPO for A' found R1's DPO[A'] queued and dropped it
    assert eng.stats.dpo_drops >= 1
    # final durable state: both regions' effects, A = A''
    assert m.pm_image.read_word(a) == 102
    assert m.pm_image.read_word(b) == 201


def test_fig2a_scenario_is_prevented():
    """Fig. 2a: without enforcement, Y could persist while X's LPO is
    lost. With ASAP, region 2 (writing Y) cannot commit before region 1
    (writing X)."""
    m, eng = build()
    x_addr = m.heap.alloc(64)
    y_addr = m.heap.alloc(64)
    commit_order = []
    eng.on_commit.append(commit_order.append)

    def thread(env):
        yield Begin()
        yield Write(x_addr, [1])  # X = ...
        yield End()
        yield Begin()
        yield Write(y_addr, [2])  # Y = ... (control-dependent on X's region)
        yield End()

    m.spawn(thread)
    m.run()
    assert commit_order == [pack_rid(0, 1), pack_rid(0, 2)]

"""Semantic recovery: recovered images must be *valid data structures*.

Word-level equality with the oracle is one guarantee; these tests walk
the recovered structure from its persistent roots and check the data
structure's own invariants (BST ordering, red-black properties, chain
hashing, queue reachability, TPC-C row constraints...). Every atomic
region moves the structure between valid states, so any dependence-
consistent prefix must validate.

Each validator is also exercised negatively - corrupting one word of a
healthy image must trip it - so a passing run is meaningful.
"""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload, workload_names

PARAMS = WorkloadParams(num_threads=3, ops_per_thread=15, setup_items=24)


def fresh(name, **small_kwargs):
    machine = Machine(SystemConfig.small(**small_kwargs), make_scheme("asap"))
    workload = get_workload(name, PARAMS)
    workload.install(machine)
    return machine, workload


@pytest.mark.parametrize("name", workload_names())
def test_final_pm_image_is_valid_structure(name):
    machine, workload = fresh(name)
    machine.run()
    assert workload.validate_image(machine.pm_image) == []
    assert workload.validate_image(machine.volatile) == []


@pytest.mark.parametrize("name", workload_names())
def test_recovered_image_is_valid_structure(name):
    total = fresh(name)[0].run().cycles
    for frac in (0.35, 0.7):
        machine, workload = fresh(name)
        state = crash_machine(machine, at_cycle=int(total * frac))
        image, _report = recover(state)
        errors = workload.validate_image(image)
        assert errors == [], (name, frac, errors)


def test_unrecovered_crash_image_is_sometimes_invalid():
    """Sanity: recovery is *doing* something. Scanning a short queue run
    densely, at least one crash point must leave the raw (unrecovered) PM
    image word-level inconsistent with the oracle - the queue's hot anchor
    lines put committed values into uncommitted regions' logs via DPO
    dropping, so raw images go stale whenever a region is in flight."""
    from repro.recovery import verify_recovery

    params = WorkloadParams(num_threads=2, ops_per_thread=8, setup_items=8)

    def build():
        machine = Machine(SystemConfig.small(), make_scheme("asap"))
        workload = get_workload("Q", params)
        workload.install(machine)
        return machine

    total = build().run().cycles
    dirty_points = 0
    for cycle in range(100, total, max(50, total // 60)):
        machine = build()
        state = crash_machine(machine, at_cycle=cycle)
        raw = verify_recovery(machine, state.pm_image)
        if not raw.ok:
            dirty_points += 1
    assert dirty_points > 0, "every raw crash image was already consistent?"


# -- negative controls: each validator detects corruption -------------------


def _corrupt_word(image, addr, value=0xDEAD):
    image.write_word(addr, value)


def test_bn_validator_detects_bad_key():
    machine, workload = fresh("BN")
    machine.run()
    root = machine.pm_image.read_word(workload.root_cell)
    _corrupt_word(machine.pm_image, root)  # clobber the root's key
    assert workload.validate_image(machine.pm_image) != []


def test_hm_validator_detects_wrong_bucket():
    machine, workload = fresh("HM")
    machine.run()
    from repro.workloads.hashmap import _NUM_BUCKETS
    for b in range(_NUM_BUCKETS):
        head = machine.pm_image.read_word(workload.bucket_base + b * 64)
        if head:
            _corrupt_word(machine.pm_image, head, value=1)  # key 1 -> wrong hash
            break
    assert workload.validate_image(machine.pm_image) != []


def test_q_validator_detects_broken_chain():
    machine, workload = fresh("Q")
    machine.run()
    head = machine.pm_image.read_word(workload.head_cell)
    _corrupt_word(machine.pm_image, head, value=0)  # sever head's next ptr
    assert workload.validate_image(machine.pm_image) != []


def test_rb_validator_detects_red_root():
    machine, workload = fresh("RB")
    machine.run()
    root = machine.pm_image.read_word(workload.root_cell)
    _corrupt_word(machine.pm_image, root + 32, value=0)  # color word -> RED
    assert workload.validate_image(machine.pm_image) != []


def test_ss_validator_detects_torn_string():
    machine, workload = fresh("SS")
    machine.run()
    _corrupt_word(machine.pm_image, workload.base)  # slot 0, word 0
    assert workload.validate_image(machine.pm_image) != []


def test_tpcc_validator_detects_bad_stock():
    machine, workload = fresh("TPCC")
    machine.run()
    _corrupt_word(machine.pm_image, workload.stock_base, value=100000)
    assert workload.validate_image(machine.pm_image) != []


def test_eo_validator_detects_future_timestamp():
    machine, workload = fresh("EO")
    machine.run()
    from repro.workloads.echo import _NUM_BUCKETS
    for b in range(_NUM_BUCKETS):
        entry = machine.pm_image.read_word(workload.bucket_base + b * 64)
        if entry:
            version = machine.pm_image.read_word(entry + 8)
            _corrupt_word(machine.pm_image, version, value=1 << 40)  # ts beyond clock
            break
    assert workload.validate_image(machine.pm_image) != []


def test_bt_validator_detects_unsorted_node():
    machine, workload = fresh("BT")
    machine.run()
    root = machine.pm_image.read_word(workload.root_cell)
    count = machine.pm_image.read_word(root)
    if count >= 2:
        _corrupt_word(machine.pm_image, root + 8, value=1 << 61)  # first key huge
    else:
        _corrupt_word(machine.pm_image, root, value=100)  # absurd count
    assert workload.validate_image(machine.pm_image) != []


def test_ct_validator_detects_bad_leaf():
    machine, workload = fresh("CT")
    machine.run()
    root = machine.pm_image.read_word(workload.root_cell)
    left = machine.pm_image.read_word(root + 8)
    if left:
        # flip every bit of whatever key/bit word lives there
        old = machine.pm_image.read_word(left)
        _corrupt_word(machine.pm_image, left, value=old ^ ((1 << 30) - 1))
        assert workload.validate_image(machine.pm_image) != []

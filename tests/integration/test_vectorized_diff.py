"""The differential-identity gate for the fast simulation core.

The fast core (``fast_path=True``) elides payload snapshots, observer
dispatch, and the commit oracle, and swaps in the bucket-queue scheduler -
but it must be *indistinguishable* from the reference machine in every
:class:`~repro.sim.stats.RunResult` field. This suite pins that contract:

* every Table 3 workload under every registered scheme (contended small
  machine, so stalls/backpressure/dropping all fire),
* two cells at the harness's default quick scale,
* every fuzz-corpus regression schedule,
* and the routing rules: ``sanitize`` (and the explain/race tooling,
  which needs observer slots) always gets the reference machine, while
  the ``fast`` flag on :class:`~repro.harness.parallel.RunSpec` reaches
  :func:`~repro.harness.runner.build_machine`.

Any divergence here is a bug in the fast path, never an accepted delta -
see docs/PERF.md.
"""

import glob
import os
from dataclasses import asdict, replace as dc_replace

import pytest

from repro.common.params import SystemConfig
from repro.engine import FastScheduler, Scheduler
from repro.harness import runner
from repro.harness.fuzz import build_machine as fuzz_build_machine
from repro.harness.fuzz import install_case, load_corpus_entry
from repro.harness.parallel import RunSpec, run_cell
from repro.mem.image import FastMemoryImage
from repro.persist import make_scheme, scheme_names
from repro.sim.machine import Machine
from repro.workloads import (
    ServiceParams,
    WorkloadParams,
    service_workload_names,
    workload_names,
)

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "property", "corpus"
)
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

MATRIX = [(w, s) for w in workload_names() for s in scheme_names()]

#: every service workload under the schemes with the most divergent
#: commit timing (async ASAP variants, sync SW, undo locking)
SERVICE_MATRIX = [
    (w, s)
    for w in service_workload_names()
    for s in ("asap", "asap_redo", "sw", "hwundo")
]


def _config() -> SystemConfig:
    # Small but contended: 8-entry WPQs and 4 cores keep backpressure,
    # slot stalls, and LPO/DPO dropping live in short runs.
    return SystemConfig.small(num_cores=4, wpq_entries=8)


def _params(size: int = 256) -> WorkloadParams:
    return WorkloadParams(
        num_threads=4, ops_per_thread=16, value_bytes=size, setup_items=24
    )


def _pair(workload, scheme, config=None, params=None):
    ref = runner.run_once(workload, scheme, config, params, fast=False)
    fast = runner.run_once(workload, scheme, config, params, fast=True)
    return asdict(ref), asdict(fast)


@pytest.mark.parametrize(
    "workload,scheme", MATRIX, ids=[f"{w}-{s}" for w, s in MATRIX]
)
def test_fast_matches_reference(workload, scheme):
    ref, fast = _pair(workload, scheme, _config(), _params())
    assert fast == ref


@pytest.mark.parametrize(
    "workload,scheme", SERVICE_MATRIX, ids=[f"{w}-{s}" for w, s in SERVICE_MATRIX]
)
def test_fast_matches_reference_service(workload, scheme):
    # Open-loop service cells: the new latency fields (histogram,
    # percentiles, offered-vs-achieved) are filled from commit-time
    # callbacks and must also be bit-identical between the cores. The
    # load sits past the knee so queueing (and late drain-time commits
    # under the async schemes) are actually exercised.
    params = ServiceParams(
        num_threads=4, requests=48, value_bytes=256, setup_items=24,
        offered_load=8.0,
    )
    ref, fast = _pair(workload, scheme, _config(), params)
    assert ref["requests_completed"] == 48
    assert ref["latency_histogram"]
    assert ref["p99_cycles"] > 0
    assert ref["offered_vs_achieved"][0] == 8.0
    assert fast == ref


@pytest.mark.parametrize("workload,scheme", [("HM", "asap"), ("Q", "hwundo")])
def test_fast_matches_reference_quick_scale(workload, scheme):
    # The harness's actual quick machine (8 cores, 16-entry WPQs).
    ref, fast = _pair(workload, scheme)
    assert fast == ref


def _memory_variant(config, **overrides):
    return dc_replace(config, memory=dc_replace(config.memory, **overrides))


@pytest.mark.parametrize("workload,scheme", [("HM", "asap"), ("SS", "asap_redo")])
def test_fast_matches_reference_single_mshr(workload, scheme):
    # One MSHR per file: every concurrent distinct-line miss exhausts the
    # file, so the parked-retry and merge paths both run constantly.
    config = _memory_variant(_config(), mshrs_per_cache=1)
    ref, fast = _pair(workload, scheme, config, _params())
    assert ref["stall_breakdown"]["mshr"] > 0
    assert fast == ref


@pytest.mark.parametrize("workload,scheme", [("HM", "asap"), ("BT", "sw")])
def test_fast_matches_reference_legacy_blocking(workload, scheme):
    # mshrs_per_cache=0 keeps the pre-MSHR immediate-fill model selectable;
    # the fast core must mirror it too.
    config = _memory_variant(_config(), mshrs_per_cache=0)
    ref, fast = _pair(workload, scheme, config, _params())
    assert ref["mshr_merges"] == 0
    assert fast == ref


@pytest.mark.parametrize("workload,scheme", [("Q", "asap"), ("HM", "asap_redo")])
def test_fast_matches_reference_serialized_drains(workload, scheme):
    # The legacy lockstep-drain comparator (one write-bus token across all
    # channels) must also be bit-identical between the two cores.
    config = _memory_variant(_config(), overlapped_drains=False)
    ref, fast = _pair(workload, scheme, config, _params())
    assert fast == ref


@pytest.mark.parametrize("scheme,expect_stalls", [("asap", True), ("asap_redo", False)])
def test_fast_matches_reference_locked_set_contention(scheme, expect_stalls):
    # Tiny associativity plus slow PM keeps LPO LockBits set long enough
    # that fills hit fully locked sets - the retry path whose double
    # counting this PR fixed. Only the undo scheme locks lines (redo logs
    # never set the LockBit), so only its cell must actually stall.
    config = SystemConfig.small(
        num_cores=4, wpq_entries=4, pm_latency_multiplier=16.0
    )
    config = dc_replace(
        config,
        l1=dc_replace(config.l1, size_bytes=1024, assoc=1),
        l2=dc_replace(config.l2, size_bytes=2048, assoc=1),
        l3=dc_replace(config.l3, size_bytes=4096, assoc=2),
    )
    ref, fast = _pair("HM", scheme, config, _params())
    if expect_stalls:
        assert ref["stall_breakdown"]["locked_set"] > 0
    assert fast == ref


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_case_matches_reference(path):
    # Corpus schedules are adversarial by construction (each once broke
    # the model); they must not tell the two cores apart either.
    case, _ = load_corpus_entry(path)
    case.fifo_backpressure = True
    case.ordered_line_log_persists = True
    results = []
    for fast in (False, True):
        config = SystemConfig.small(
            wpq_entries=case.wpq_entries,
            ordered_line_log_persists=case.ordered_line_log_persists,
        )
        if case.mshrs_per_cache is not None:
            config = dc_replace(
                config,
                memory=dc_replace(
                    config.memory, mshrs_per_cache=case.mshrs_per_cache
                ),
            )
        machine = Machine(config, make_scheme(case.scheme), fast_path=fast)
        install_case(machine, case)
        results.append(asdict(machine.run()))
    assert results[1] == results[0]


def test_fast_machine_wiring():
    fast = runner.build_machine("Q", "asap", _config(), _params(), fast=True)
    assert fast.fast_path
    assert type(fast.scheduler) is FastScheduler
    assert isinstance(fast.volatile, FastMemoryImage)
    ref = runner.build_machine("Q", "asap", _config(), _params(), fast=False)
    assert not ref.fast_path
    assert type(ref.scheduler) is Scheduler


def test_sanitize_forces_reference_machine(monkeypatch):
    built = {}
    orig = runner.build_machine

    def spy(*args, **kwargs):
        machine = orig(*args, **kwargs)
        built["machine"] = machine
        return machine

    monkeypatch.setattr(runner, "build_machine", spy)
    runner.run_once("Q", "asap", _config(), _params(), sanitize=True, fast=True)
    machine = built["machine"]
    assert machine.fast_path is False
    assert type(machine.scheduler) is Scheduler
    # The sanitizer did attach (it needs the reference observer slots).
    assert machine.hierarchy.observer is not None


def test_runspec_fast_flag_routing(monkeypatch):
    built = {}
    orig = runner.build_machine

    def spy(*args, **kwargs):
        machine = orig(*args, **kwargs)
        built["machine"] = machine
        return machine

    monkeypatch.setattr(runner, "build_machine", spy)
    base = dict(
        key=("Q",), workload="Q", scheme="asap",
        config=_config(), params=_params(),
    )
    run_cell(RunSpec(fast=True, **base))
    assert built["machine"].fast_path is True
    run_cell(RunSpec(fast=True, sanitize=True, **base))
    assert built["machine"].fast_path is False
    run_cell(RunSpec(**base))
    assert built["machine"].fast_path is False


def test_runspec_fast_flag_changes_cache_token():
    base = dict(
        key=("Q",), workload="Q", scheme="asap",
        config=_config(), params=_params(),
    )
    assert (
        RunSpec(fast=True, **base).cache_token()
        != RunSpec(**base).cache_token()
    )


def test_explain_tooling_stays_on_reference_machine():
    # The recovery replayer and race tracer build through the fuzz
    # harness's machine factory, which never opts into the fast core.
    case, _ = load_corpus_entry(CORPUS_FILES[0])
    case.fifo_backpressure = True
    case.ordered_line_log_persists = True
    machine = fuzz_build_machine(case)
    assert machine.fast_path is False
    assert type(machine.scheduler) is Scheduler

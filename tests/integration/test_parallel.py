"""The parallel run layer: RunSpec cells, the process pool, the cache.

Determinism is the load-bearing property: for any job count and any cache
state, an experiment's assembled rows must be identical to the historical
serial runner's. CI additionally asserts byte-identical ``--json`` output
for ``--jobs 1`` vs ``--jobs 4``.
"""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.harness.parallel import (
    CellResult,
    ResultCache,
    RunSpec,
    execute,
    run_cell,
    simulator_fingerprint,
)
from repro.harness.runner import (
    default_config,
    default_params,
    run_once,
    set_sanitize_default,
)
from repro.harness.experiments import ablations, fig7


def _spec(key=("HM", "np"), scheme="np", **overrides):
    base = dict(
        key=key,
        workload="HM",
        scheme=scheme,
        config=default_config(True),
        params=default_params(True),
    )
    base.update(overrides)
    return RunSpec(**base)


# -- run_cell ---------------------------------------------------------------


def test_run_cell_matches_run_once():
    cell = run_cell(_spec())
    direct = run_once("HM", "np", default_config(True), default_params(True))
    assert cell.result.pm_writes == direct.pm_writes
    assert cell.result.cycles == direct.cycles
    assert cell.wall_seconds > 0 and not cell.cached


def test_run_cell_harvests_extras_from_builder_machine():
    spec = RunSpec(
        key=("fence", 4),
        builder="repro.harness.experiments.ablations:_fence_machine",
        builder_kwargs=(("batch", 4),),
        extras=(("commits", "scheme.engine.stats.commits"),),
    )
    cell = run_cell(spec)
    assert cell.extras["commits"] > 0


# -- execute ----------------------------------------------------------------


def test_execute_parallel_identical_to_serial():
    specs = fig7.plan(quick=True, workloads=["HM"], sizes=[64]).specs
    serial = execute(specs, jobs=1)
    parallel = execute(specs, jobs=2)
    assert list(serial) == list(parallel)  # key order follows spec order
    for key in serial:
        assert serial[key].result.pm_writes == parallel[key].result.pm_writes
        assert serial[key].result.cycles == parallel[key].result.cycles


def test_execute_rejects_duplicate_keys():
    with pytest.raises(ConfigError):
        execute([_spec(), _spec()])


def test_execute_reports_progress_in_order():
    specs = [_spec(key=("a",)), _spec(key=("b",), scheme="sw")]
    seen = []
    execute(specs, progress=lambda done, total, spec, cell: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]


def test_sanitize_travels_inside_specs():
    set_sanitize_default(True)
    try:
        specs = fig7.plan(quick=True, workloads=["HM"], sizes=[64]).specs
    finally:
        set_sanitize_default(False)
    assert specs and all(spec.sanitize for spec in specs)
    # and an explicit override beats the process default
    assert not any(
        s.sanitize for s in fig7.plan(quick=True, workloads=["HM"], sanitize=False).specs
    )


# -- the cache --------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = _spec()
    assert cache.get(spec) is None
    cell = run_cell(spec)
    cache.put(spec, cell)
    hit = cache.get(spec)
    assert hit is not None and hit.cached
    assert hit.result.pm_writes == cell.result.pm_writes
    assert cache.hits == 1 and cache.misses == 1


def test_cache_invalidated_by_config_params_scheme_and_workload(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = _spec()
    cache.put(spec, run_cell(spec))
    assert cache.get(spec) is not None
    changed = [
        dataclasses.replace(spec, config=default_config(True, pm_latency_multiplier=2)),
        dataclasses.replace(spec, params=default_params(True, value_bytes=128)),
        dataclasses.replace(spec, scheme="sw"),
        dataclasses.replace(spec, workload="SS"),
        dataclasses.replace(spec, sanitize=True),
    ]
    for other in changed:
        assert cache.get(other) is None, other


def test_cache_shares_identical_cells_across_keys(tmp_path):
    # content-addressed: the same cell under a different experiment's key
    # hits, and the returned CellResult is re-labelled for the requester
    cache = ResultCache(str(tmp_path))
    spec = _spec(key=("fig7", "HM", "np"))
    cache.put(spec, run_cell(spec))
    other = dataclasses.replace(spec, key=("fig8", "HM", 64, "NP"))
    hit = cache.get(other)
    assert hit is not None and hit.key == ("fig8", "HM", 64, "NP")


def test_cache_tolerates_corrupt_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = _spec()
    cache.put(spec, run_cell(spec))
    path = cache._path(spec.cache_token())
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.get(spec) is None  # counts as a miss, no crash


def test_execute_uses_cache_and_rows_survive(tmp_path):
    cache = ResultCache(str(tmp_path))
    plan = fig7.plan(quick=True, workloads=["HM"], sizes=[64])
    cold = plan.assemble(execute(plan.specs, cache=cache))
    warm_cells = execute(plan.specs, cache=cache)
    assert all(cell.cached for cell in warm_cells.values())
    warm = plan.assemble(warm_cells)
    assert cold.rows == warm.rows


def test_builder_cells_cache_by_kwargs(tmp_path):
    cache = ResultCache(str(tmp_path))
    plan = ablations.plan_fence_batching(quick=True)
    execute(plan.specs, cache=cache)
    assert cache.hits == 0
    execute(plan.specs, cache=cache)
    assert cache.hits == len(plan.specs)


def test_fingerprint_is_stable_within_a_process():
    assert simulator_fingerprint() == simulator_fingerprint()
    assert len(simulator_fingerprint()) == 64


def test_cell_result_defaults():
    cell = CellResult(key=("x",), result=None)
    assert cell.extras == {} and not cell.cached

"""Restart-after-recovery: continue a workload on a recovered image."""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload

PARAMS = WorkloadParams(num_threads=3, ops_per_thread=12, value_bytes=128, setup_items=16)


def build(scheme="asap"):
    machine = Machine(SystemConfig.small(), make_scheme(scheme))
    workload = get_workload("SS", PARAMS)
    workload.install(machine)
    return machine, workload


@pytest.mark.parametrize("scheme", ["asap", "asap_redo"])
def test_restart_continues_from_recovered_state(scheme):
    total = build(scheme)[0].run().cycles
    machine, workload = build(scheme)
    state = crash_machine(machine, at_cycle=total // 2)
    image, _ = recover(state)
    assert verify_recovery(machine, image).ok

    machine2, workload2 = build(scheme)
    machine2.adopt_image(image)
    result = machine2.run()
    assert result.regions_completed == PARAMS.num_threads * PARAMS.ops_per_thread
    # still a valid permutation of the original strings, and the durable
    # view matches the committed view
    assert workload2.validate_image(machine2.pm_image) == []
    assert machine2.oracle.mismatches(machine2.pm_image) == []


def test_restart_can_crash_and_recover_again():
    """Two back-to-back crash cycles: recovery composes."""
    total = build()[0].run().cycles
    machine, _ = build()
    state = crash_machine(machine, at_cycle=total // 3)
    image, _ = recover(state)

    machine2, workload2 = build()
    machine2.adopt_image(image)
    state2 = crash_machine(machine2, at_cycle=total // 3)
    image2, _ = recover(state2)
    assert verify_recovery(machine2, image2).ok
    assert workload2.validate_image(image2) == []


def test_adopt_image_overwrites_all_views():
    machine, _ = build()
    from repro.mem.image import MemoryImage

    img = MemoryImage()
    addr = machine.config.address_space.pm_base
    img.write_word(addr, 777)
    machine.adopt_image(img)
    assert machine.volatile.read_word(addr) == 777
    assert machine.pm_image.read_word(addr) == 777
    assert machine.oracle.committed.read_word(addr) == 777

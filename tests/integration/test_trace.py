"""Timeline tests using the tracer: *when* things happen, per scheme."""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Write
from repro.sim.trace import BEGIN, COMMIT, END, PERSIST_ACCEPT, PERSIST_DRAIN, Tracer


def run_traced(scheme, regions=6, **kwargs):
    m = Machine(SystemConfig.small(**kwargs), make_scheme(scheme))
    tracer = Tracer(m)
    a = m.heap.alloc(64 * regions)

    def worker(env):
        for i in range(regions):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()

    m.spawn(worker)
    m.run()
    return m, tracer


def test_trace_records_all_region_events():
    m, tracer = run_traced("asap")
    assert len(tracer.of_kind(BEGIN)) == 6
    assert len(tracer.of_kind(END)) == 6
    assert len(tracer.of_kind(COMMIT)) == 6


def test_asap_commits_lag_end_retirement():
    """The paper's asynchrony, visible in the timeline: commits happen
    strictly after End retires."""
    m, tracer = run_traced("asap")
    lags = tracer.commit_lags()
    assert len(lags) == 6
    assert all(lag > 0 for lag in lags)


def test_hwundo_commits_at_end_retirement():
    """Synchronous commit: durable exactly when End retires (lag 0)."""
    m, tracer = run_traced("hwundo")
    assert all(lag == 0 for lag in tracer.commit_lags())


def test_asap_commit_order_in_trace_is_monotone():
    m, tracer = run_traced("asap")
    commit_rids = [e.rid for e in tracer.of_kind(COMMIT)]
    assert commit_rids == sorted(commit_rids)


def test_persist_events_captured():
    m, tracer = run_traced("asap")
    accepts = tracer.of_kind(PERSIST_ACCEPT)
    assert any("lpo" in e.detail for e in accepts)
    assert any("dpo" in e.detail for e in accepts)
    # drains may be fewer than accepts (drops), never more
    assert len(tracer.of_kind(PERSIST_DRAIN)) <= len(accepts)


def test_region_timeline_query():
    m, tracer = run_traced("asap")
    from repro.core.rid import pack_rid

    timeline = tracer.region_timeline(pack_rid(0, 1))
    assert timeline["end"] is not None
    assert timeline["commit"] is not None
    assert timeline["commit"] > timeline["end"]


def test_csv_export_and_dump():
    m, tracer = run_traced("asap", regions=2)
    csv_text = tracer.to_csv()
    assert csv_text.startswith("cycle,kind,thread,rid,detail")
    assert "commit" in csv_text
    dump = tracer.dump(limit=10)
    assert dump.count("\n") <= 9


def test_tracer_attaches_to_threads_spawned_later():
    m = Machine(SystemConfig.small(), make_scheme("asap"))
    tracer = Tracer(m)
    a = m.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()

    m.spawn(worker)  # spawned after the tracer attached
    m.run()
    assert len(tracer.of_kind(END)) == 1

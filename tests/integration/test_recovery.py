"""Crash-recovery integration tests: the paper's Sec. 5.5 procedure.

The central invariant: after a crash at *any* cycle, recovery must produce
a PM image identical to the commit oracle's durable image - full regions
or nothing, in dependence order.
"""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads import WorkloadParams, get_workload, workload_names

PARAMS = WorkloadParams(num_threads=3, ops_per_thread=12, value_bytes=64, setup_items=16)


def crash_and_check(build_machine, at_cycle):
    m = build_machine()
    state = crash_machine(m, at_cycle=at_cycle)
    image, report = recover(state)
    verdict = verify_recovery(m, image)
    assert verdict.ok, verdict.explain()
    return m, state, report


def workload_machine(name, params=PARAMS, **small_kwargs):
    def build():
        m = Machine(SystemConfig.small(**small_kwargs), make_scheme("asap"))
        get_workload(name, params).install(m)
        return m

    return build


@pytest.mark.parametrize("workload", workload_names())
def test_recovery_mid_run(workload):
    build = workload_machine(workload)
    total = build().run().cycles
    for frac in (0.3, 0.6, 0.9):
        crash_and_check(build, int(total * frac))


@pytest.mark.parametrize("workload", ["BN", "Q", "TPCC"])
def test_recovery_dense_crash_points(workload):
    build = workload_machine(workload)
    total = build().run().cycles
    for i in range(10):
        crash_and_check(build, 100 + (i * total) // 11)


def test_recovery_before_any_region():
    build = workload_machine("HM")
    m, state, report = crash_and_check(build, 5)
    assert report.undone_count == 0


def test_recovery_after_quiescence_undoes_nothing():
    build = workload_machine("HM")
    total = build().run().drain_cycles
    m, state, report = crash_and_check(build, total + 100)
    assert report.undone_count == 0


def test_recovery_with_2kb_regions():
    params = WorkloadParams(num_threads=2, ops_per_thread=6, value_bytes=2048, setup_items=8)
    build = workload_machine("SS", params)
    total = build().run().cycles
    for frac in (0.4, 0.8):
        crash_and_check(build, int(total * frac))


def test_recovery_with_tiny_wpq_and_log():
    """Structural pressure (1-entry WPQ, small log forcing overflow growth)
    must not break recoverability."""
    params = WorkloadParams(num_threads=2, ops_per_thread=10, setup_items=8)
    build = workload_machine("Q", params, wpq_entries=1, initial_log_entries=16)
    total = build().run().cycles
    for frac in (0.35, 0.7):
        crash_and_check(build, int(total * frac))


def test_recovery_undoes_dependent_chain_in_order():
    """Hand-built chain: R1 <- R2 <- R3 all touching one line. Crash while
    all are uncommitted; recovery must unwind to the bootstrap value."""

    def build():
        m = Machine(SystemConfig.small(wpq_entries=1), make_scheme("asap"))
        a = m.heap.alloc(64 * 8)
        m.bootstrap_write(a, [1000])
        lock = m.new_lock()

        def worker(env, inc):
            yield Lock(lock)
            yield Begin()
            (v,) = yield Read(a, 1)
            yield Write(a, [v + inc])
            # keep the WPQ saturated so nothing commits before the crash
            for j in range(1, 6):
                yield Write(a + 64 * j, [inc * j])
            yield End()
            yield Unlock(lock)

        for t, inc in enumerate((1, 10, 100)):
            m.spawn(lambda env, inc=inc: worker(env, inc))
        m._test_addr = a
        return m

    # crash early enough that some regions are uncommitted
    probe = build()
    total = probe.run().cycles
    found_partial = False
    for frac in (0.2, 0.35, 0.5, 0.65, 0.8):
        m = build()
        state = crash_machine(m, at_cycle=int(total * frac))
        image, report = recover(state)
        verdict = verify_recovery(m, image)
        assert verdict.ok, verdict.explain()
        if 0 < report.undone_count:
            found_partial = True
    assert found_partial, "no crash point caught uncommitted regions"


def test_recovery_report_counts():
    build = workload_machine("BN")
    total = build().run().cycles
    m = build()
    state = crash_machine(m, at_cycle=total // 2)
    image, report = recover(state)
    assert report.records_scanned > 0
    assert report.undone_count == len(state.dependence_entries)


def test_crash_state_contains_log_directory():
    build = workload_machine("BN")
    m = build()
    state = crash_machine(m, at_cycle=500)
    assert set(state.log_directory) == {0, 1, 2}
    assert state.entries_per_record == 7

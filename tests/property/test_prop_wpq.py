"""Property-based tests on the WPQ and engine-level accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.engine import Scheduler
from repro.mem.image import MemoryImage
from repro.mem.wpq import DPO, LPO, PersistOp, WritePendingQueue
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload

PM = 0x1000_0000_0000


@st.composite
def wpq_scripts(draw):
    """A schedule of submits and drops against one WPQ."""
    return draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("submit"),
                    st.integers(0, 15),  # line index
                    st.sampled_from([LPO, DPO]),
                    st.booleans(),  # attach a drain waiter?
                ),
                st.tuples(st.just("drop"), st.integers(0, 15)),
                st.tuples(st.just("advance"), st.integers(1, 500)),
            ),
            max_size=60,
        )
    )


@settings(max_examples=60, deadline=None)
@given(
    script=wpq_scripts(),
    capacity=st.integers(1, 8),
    watermark=st.integers(0, 8),
    lazy=st.integers(1, 16),
)
def test_wpq_invariants_under_random_schedules(script, capacity, watermark, lazy):
    s = Scheduler()
    img = MemoryImage("pm")
    q = WritePendingQueue(
        "q", s, capacity, lambda: 10, img,
        drain_watermark=watermark, lazy_drain_multiplier=lazy,
    )
    drained = []
    submitted = 0
    for step in script:
        if step[0] == "submit":
            _, idx, kind, waited = step
            line = PM + 64 * idx
            op = PersistOp(
                kind, line, line, {line: idx},
                on_drain=(lambda o: drained.append(o.op_id)) if waited else None,
            )
            q.submit(op)
            submitted += 1
        elif step[0] == "drop":
            q.drop_where(lambda o, i=step[1]: o.target_line == PM + 64 * i)
        else:
            s.run(until=s.now + step[1])
        # core invariants, checked continuously
        assert len(q) <= q.capacity
        assert q._flush_pending >= 0
        assert q.accepted <= submitted
        assert q.drained + q.dropped <= q.accepted
    s.run()
    # every submitted op eventually drains, is dropped (accepted or still
    # backpressured), or remains parked/queued
    assert (
        q.drained + q.dropped + q.dropped_pending + len(q._backpressure) + len(q)
        == submitted
    )
    assert len(q) == 0 or q.accepted < submitted  # queue empties unless parked


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 100),
    wpq_entries=st.sampled_from([2, 8, 16]),
)
def test_engine_accounting_invariants(seed, wpq_entries):
    """Cross-checks between engine stats and machine-level counters after
    a full workload run."""
    params = WorkloadParams(num_threads=2, ops_per_thread=8, setup_items=8, seed=seed)
    machine = Machine(SystemConfig.small(wpq_entries=wpq_entries), make_scheme("asap"))
    get_workload("HM", params).install(machine)
    res = machine.run()
    stats = machine.scheme.engine.stats
    assert stats.regions_begun == stats.regions_ended == stats.commits
    assert stats.commits == res.regions_completed
    assert stats.lpo_drops <= stats.lpos_initiated + stats.loghdr_writes
    assert stats.dpo_drops <= stats.dpos_initiated
    # everything initiated was accepted by some WPQ
    accepted = sum(ch.wpq.accepted for ch in machine.memory.channels)
    assert accepted >= stats.lpos_initiated + stats.dpos_initiated
    # drained + dropped accounts for every accepted entry once idle
    drained = sum(ch.wpq.drained for ch in machine.memory.channels)
    dropped = sum(ch.wpq.dropped for ch in machine.memory.channels)
    assert drained + dropped == accepted
    # no region left anywhere
    assert machine.scheme.engine.uncommitted_count() == 0
    for cl in machine.scheme.engine.cl_lists:
        assert len(cl) == 0

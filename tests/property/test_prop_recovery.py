"""Property-based crash-consistency testing.

Hypothesis generates random multi-threaded region programs and random
crash points; recovery must always reproduce the commit oracle's image.
This is the strongest single statement of ASAP's correctness contract:
atomic durability plus dependence-ordered commits, under any interleaving
of LPOs, DPOs, drops, evictions, and structural stalls.
"""

from hypothesis import example, given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write

NUM_LINES = 16


@st.composite
def programs(draw):
    """A list of per-thread region scripts over a small shared array."""
    num_threads = draw(st.integers(1, 3))
    threads = []
    for _ in range(num_threads):
        regions = draw(
            st.lists(
                st.lists(
                    st.tuples(
                        st.integers(0, NUM_LINES - 1),  # line index
                        st.booleans(),  # read first?
                        st.integers(0, 2**20),  # value
                    ),
                    min_size=1,
                    max_size=5,
                ),
                min_size=1,
                max_size=6,
            )
        )
        threads.append(regions)
    return threads


def build_machine(threads, wpq_entries):
    m = Machine(SystemConfig.small(wpq_entries=wpq_entries), make_scheme("asap"))
    base = m.heap.alloc(64 * NUM_LINES)
    lock = m.new_lock()

    def worker(env, regions):
        for region in regions:
            yield Lock(lock)
            yield Begin()
            for line_idx, read_first, value in region:
                addr = base + 64 * line_idx
                if read_first:
                    (v,) = yield Read(addr, 1)
                    yield Write(addr, [v ^ value])
                else:
                    yield Write(addr, [value])
            yield End()
            yield Unlock(lock)

    for regions in threads:
        m.spawn(lambda env, r=regions: worker(env, r))
    return m


@settings(max_examples=40, deadline=None)
@given(
    threads=programs(),
    crash_frac=st.floats(0.05, 0.98),
    wpq_entries=st.sampled_from([1, 4, 16]),
)
# The incomplete-undo-chain recovery bug fixed by per-line LPO ordering
# (pinned forever; see tests/property/corpus/
# undo-incomplete-line-chain-wpq1.json and docs/RECOVERY.md): on a
# 1-entry WPQ, a crashed chain of regions rewriting line 1 left the last
# writer's log entry durable while its predecessor's was backpressured
# and lost, so recovery installed an "old value" that never durably
# existed (0x0 over the committed 0x1).
@example(
    threads=[
        [
            [(0, False, 0), (1, False, 1), (2, False, 0), (4, False, 0)],
            [(0, False, 0), (1, False, 0)],
            [(1, False, 0)],
            [(0, False, 0)],
        ]
    ],
    crash_frac=0.96875,
    wpq_entries=1,
)
def test_recovery_consistent_at_any_crash_point(threads, crash_frac, wpq_entries):
    total = build_machine(threads, wpq_entries).run().cycles
    m = build_machine(threads, wpq_entries)
    state = crash_machine(m, at_cycle=max(1, int(total * crash_frac)))
    image, _report = recover(state)
    verdict = verify_recovery(m, image)
    assert verdict.ok, verdict.explain()


@settings(max_examples=15, deadline=None)
@given(threads=programs())
# The cross-thread RMW commit-ordering bug fixed in mem/wpq.py (pinned
# forever; see tests/property/corpus/undo-cross-thread-rmw-wpq4.json):
# a backpressured stale DPO escaped DPO dropping, was overtaken by the
# committed value's DPO, and drained last - PM lost the committed 1.
@example(
    threads=[
        [
            [(0, False, 0)],
            [(1, False, 0), (3, False, 0)],
            [(0, False, 0), (1, False, 0), (4, False, 0)],
        ],
        [[(0, False, 0), (2, False, 0)], [(6, False, 0)], [(4, True, 1)]],
    ]
)
def test_no_crash_run_commits_everything(threads):
    m = build_machine(threads, wpq_entries=4)
    m.run()
    assert m.oracle.uncommitted_rids() == []
    assert m.oracle.mismatches(m.pm_image) == []

"""Property-based crash consistency for the asap_redo extension.

Same contract as the undo fuzzer: any crash point, any interleaving,
recovery must equal the commit oracle's image. Redo recovery exercises a
completely different path (commit markers, replay-in-order, suppressed
in-place writebacks), so it gets its own fuzzer.
"""

from hypothesis import example, given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write

NUM_LINES = 12


@st.composite
def programs(draw):
    num_threads = draw(st.integers(1, 3))
    threads = []
    for _ in range(num_threads):
        regions = draw(
            st.lists(
                st.lists(
                    st.tuples(
                        st.integers(0, NUM_LINES - 1),
                        st.booleans(),
                        st.integers(0, 2**20),
                    ),
                    min_size=1,
                    max_size=4,
                ),
                min_size=1,
                max_size=5,
            )
        )
        threads.append(regions)
    return threads


def build_machine(threads, wpq_entries):
    m = Machine(SystemConfig.small(wpq_entries=wpq_entries), make_scheme("asap_redo"))
    base = m.heap.alloc(64 * NUM_LINES)
    lock = m.new_lock()

    def worker(env, regions):
        for region in regions:
            yield Lock(lock)
            yield Begin()
            for line_idx, read_first, value in region:
                addr = base + 64 * line_idx
                if read_first:
                    (v,) = yield Read(addr, 1)
                    yield Write(addr, [v ^ value])
                else:
                    yield Write(addr, [value])
            yield End()
            yield Unlock(lock)

    for regions in threads:
        m.spawn(lambda env, r=regions: worker(env, r))
    return m


@settings(max_examples=30, deadline=None)
@given(
    threads=programs(),
    crash_frac=st.floats(0.05, 0.98),
    wpq_entries=st.sampled_from([2, 8]),
)
def test_redo_recovery_consistent_at_any_crash_point(threads, crash_frac, wpq_entries):
    total = build_machine(threads, wpq_entries).run().cycles
    m = build_machine(threads, wpq_entries)
    state = crash_machine(m, at_cycle=max(1, int(total * crash_frac)))
    assert state.log_kind == "redo"
    image, _report = recover(state)
    verdict = verify_recovery(m, image)
    assert verdict.ok, verdict.explain()


@settings(max_examples=10, deadline=None)
@given(threads=programs())
# The redo analog of the cross-thread commit-ordering bug (pinned forever;
# see tests/property/corpus/redo-premature-dep-clear-wpq4.json): the
# Dependence List entry was removed at marker *issue* instead of marker
# *acceptance*, letting successors race their markers ahead of their
# dependencies' - fixed in persist/asap_redo.py.
@example(
    threads=[
        [
            [(0, False, 0)],
            [(0, False, 0)],
            [(0, False, 0)],
            [(0, False, 1), (1, False, 0), (3, False, 0), (5, False, 0)],
            [(0, False, 0)],
        ],
        [[(2, False, 0), (4, False, 0)]],
    ]
)
def test_redo_no_crash_run_is_durable(threads):
    m = build_machine(threads, wpq_entries=4)
    m.run()
    assert m.oracle.mismatches(m.pm_image) == []

"""Workload-level crash fuzzing: real data structures, random crash points.

Heavier than the synthetic-program fuzzers but closer to the paper's
actual usage: hypothesis picks a Table 3 workload, parameters, a scheme
(undo or redo ASAP), and a crash fraction; recovery must reproduce the
oracle image and the structure validators must accept the result.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload, workload_names


def build(workload, scheme, seed, threads):
    params = WorkloadParams(
        num_threads=threads, ops_per_thread=8, setup_items=12, seed=seed
    )
    machine = Machine(SystemConfig.small(), make_scheme(scheme))
    wl = get_workload(workload, params)
    wl.install(machine)
    return machine, wl


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(workload_names()),
    scheme=st.sampled_from(["asap", "asap_redo"]),
    seed=st.integers(0, 50),
    threads=st.integers(1, 3),
    crash_frac=st.floats(0.1, 0.95),
)
def test_workload_crash_recovery_fuzz(workload, scheme, seed, threads, crash_frac):
    total = build(workload, scheme, seed, threads)[0].run().cycles
    machine, wl = build(workload, scheme, seed, threads)
    state = crash_machine(machine, at_cycle=max(1, int(total * crash_frac)))
    image, _report = recover(state)
    verdict = verify_recovery(machine, image)
    assert verdict.ok, f"{workload}/{scheme}: {verdict.explain()}"
    errors = wl.validate_image(image)
    assert errors == [], (workload, scheme, errors)

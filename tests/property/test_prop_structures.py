"""Property-based tests on core data structures and their invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.address import line_base, split_words, words_of_line
from repro.core.bloom import BloomFilter
from repro.core.log import UndoLog
from repro.core.rid import pack_rid, unpack_rid
from repro.common.params import CacheParams
from repro.mem.cache import CacheArray
from repro.mem.image import MemoryImage

BASE = 0x1000_0000_0000


@given(st.integers(0, 2**30), st.integers(0, 2**31 - 1))
def test_rid_roundtrip(tid, local):
    assert unpack_rid(pack_rid(tid, local)) == (tid, local)


@given(st.integers(0, 2**30), st.integers(0, 2**31 - 1))
def test_rid_order_preserving_within_thread(tid, local):
    assert pack_rid(tid, local) < pack_rid(tid, local + 1)


@given(st.integers(0, 2**48))
def test_line_base_idempotent_and_containing(addr):
    base = line_base(addr)
    assert base % 64 == 0
    assert base <= addr < base + 64
    assert line_base(base) == base


@given(st.integers(0, 2**40), st.integers(1, 512))
def test_split_words_covers_every_byte(addr, nbytes):
    words = list(split_words(addr, nbytes))
    assert words == sorted(set(words))
    assert words[0] <= addr
    assert words[-1] + 8 >= addr + nbytes
    for a, b in zip(words, words[1:]):
        assert b - a == 8


@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=200))
def test_bloom_never_false_negative(keys):
    bf = BloomFilter(512, 3)
    lines = [k * 64 for k in keys]
    for line in lines:
        bf.insert(line)
    assert all(bf.maybe_contains(line) for line in lines)


@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 2**40)), min_size=1, max_size=100
    )
)
def test_image_last_write_wins(writes):
    img = MemoryImage()
    last = {}
    for word_idx, value in writes:
        addr = BASE + word_idx * 8
        img.write_word(addr, value)
        last[addr] = value
    for addr, value in last.items():
        assert img.read_word(addr) == value


@given(st.data())
def test_cache_occupancy_never_exceeds_capacity(data):
    params = CacheParams(size_bytes=8 * 64 * 2, assoc=2, latency=1)
    cache = CacheArray("c", params)
    lines = data.draw(
        st.lists(st.integers(0, 63).map(lambda i: i * 64), max_size=80)
    )
    for line in lines:
        cache.insert(line)
        assert cache.occupancy() <= params.assoc * params.num_sets
    # every line in the cache was inserted at some point
    assert set(cache.lines()) <= set(lines)


@settings(deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["append", "free"]), st.integers(1, 6)),
        max_size=120,
    )
)
def test_log_accounting_invariants(ops):
    log = UndoLog(0, BASE, num_records=64, entries_per_record=3)
    live_rids = set()
    for kind, rid in ops:
        if kind == "append" :
            if log.free_records > 0 or log.open_record(rid) is not None:
                before = log.live_records
                log.append(rid, BASE + 0x100000 + rid * 64)
                live_rids.add(rid)
                assert log.live_records >= before
        else:
            log.free(rid)
            live_rids.discard(rid)
        assert log.live_records + log.free_records == log.capacity_records
        assert log.live_records >= 0
    for rid in list(live_rids):
        log.free(rid)
    assert log.live_records == 0

"""Replay the fuzzer's regression corpus (tests/property/corpus/).

Every JSON file in the corpus is a once-failing schedule, shrunk and
committed when its bug was fixed. Each entry is replayed on the current
code twice over: as a timed run (the no-crash differential check plus a
small crash-point sweep must be clean) and as a static target for the
workload linter (the op streams themselves must be well-formed - a
corpus entry that trips ``ASAP-L...`` rules would be exercising a
programming error, not a scheme bug). Adding a file here is how a
fuzzer find becomes a permanent regression test (docs/FUZZING.md
describes the workflow).
"""

import glob
import os

import pytest

from repro.analysis.linter import LintMachine, lint_machine
from repro.common.params import SystemConfig
from repro.harness.fuzz import case_failures, install_case, load_corpus_entry

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_entry_replays_clean(path):
    case, meta = load_corpus_entry(path)
    # corpus entries always replay against the *current* (fixed) model,
    # even if saved from a legacy-mode campaign; pinned crash_fracs are
    # swept on top of the generic crash points (see case_failures)
    case.fifo_backpressure = True
    case.ordered_line_log_persists = True
    failures = case_failures(case, crash_points=3)
    assert failures == [], (
        f"{os.path.basename(path)} regressed: {failures}\n"
        f"description: {meta.get('description', '?')}"
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_entry_lints_clean(path):
    case, meta = load_corpus_entry(path)
    machine = LintMachine(SystemConfig.small(wpq_entries=case.wpq_entries))
    install_case(machine, case)
    result = lint_machine(machine, source=os.path.basename(path))
    assert result.ok and not result.violations, (
        f"{os.path.basename(path)} no longer lints clean: "
        f"{[v.to_dict() for v in result.violations]}\n"
        f"description: {meta.get('description', '?')}"
    )

"""Property tests for the open-loop service subsystem (docs/SERVICE.md).

The serve-bench determinism contract rests on three pure components:
Zipfian key sampling, Poisson arrival generation, and the fixed-bucket
latency histogram. Each is checked here in isolation - the end-to-end
byte-identity across job counts and cache states is pinned in
tests/integration/test_harness.py, and reference-vs-fast identity in
tests/integration/test_vectorized_diff.py.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.workloads.service import (
    LatencyHistogram,
    ServiceParams,
    ZipfSampler,
    bucket_index,
    bucket_upper,
    poisson_arrivals,
)

# -- bucket scheme -----------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(v=st.integers(0, 1 << 40))
def test_bucket_roundtrip_and_error_bound(v):
    b = bucket_index(v)
    upper = bucket_upper(b)
    # the reported value never understates the latency...
    assert upper >= v
    # ...and overstates it by at most 12.5% (exact below 16 cycles)
    if v < 16:
        assert upper == v
    else:
        assert upper <= v + v // 8


@settings(max_examples=100, deadline=None)
@given(a=st.integers(0, 1 << 30), b=st.integers(0, 1 << 30))
def test_bucket_index_monotone(a, b):
    lo, hi = sorted((a, b))
    assert bucket_index(lo) <= bucket_index(hi)


def test_bucket_uppers_are_bucket_fixed_points():
    # every bucket's upper bound maps back to that bucket, so percentile
    # values are stable under re-recording
    for b in range(400):
        assert bucket_index(bucket_upper(b)) == b


# -- histogram ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(latencies=st.lists(st.integers(0, 1 << 24), min_size=1, max_size=200))
def test_histogram_order_independent(latencies):
    fwd, rev = LatencyHistogram(), LatencyHistogram()
    for v in latencies:
        fwd.record(v)
    for v in reversed(latencies):
        rev.record(v)
    assert fwd.as_dict() == rev.as_dict()
    for pm in (500, 900, 990, 999):
        assert fwd.percentile(pm) == rev.percentile(pm)


@settings(max_examples=60, deadline=None)
@given(latencies=st.lists(st.integers(0, 1 << 24), min_size=1, max_size=200))
def test_histogram_percentiles_monotone_and_bounded(latencies):
    hist = LatencyHistogram()
    for v in latencies:
        hist.record(v)
    p50, p90, p99, p999 = (hist.percentile(pm) for pm in (500, 900, 990, 999))
    assert p50 <= p90 <= p99 <= p999
    assert p999 == bucket_upper(bucket_index(max(latencies)))
    assert p50 >= min(latencies)


def test_empty_histogram_reports_zero():
    assert LatencyHistogram().percentile(999) == 0


# -- Zipfian sampling --------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 200),
    theta=st.floats(0.0, 3.0, allow_nan=False),
    seed=st.integers(0, 2**20),
)
def test_zipf_in_range_and_seed_deterministic(n, theta, seed):
    zipf = ZipfSampler(n, theta)
    a = [zipf.sample(random.Random(seed)) for _ in range(1)]
    runs = [
        [zipf.sample(rng) for _ in range(50)]
        for rng in (random.Random(seed), random.Random(seed))
    ]
    assert runs[0] == runs[1]
    assert all(0 <= r < n for r in runs[0])
    assert a[0] == runs[0][0]


def test_zipf_cdf_shape():
    zipf = ZipfSampler(64, 0.99)
    assert zipf.cdf == sorted(zipf.cdf)
    assert zipf.cdf[-1] == 1.0
    # rank-0 weight is the largest single step under positive skew
    steps = [zipf.cdf[0]] + [
        b - a for a, b in zip(zipf.cdf, zipf.cdf[1:])
    ]
    assert steps[0] == max(steps)


def test_zipf_skew_concentrates_on_hot_ranks():
    rng = random.Random(7)
    skewed = ZipfSampler(100, 0.99)
    counts = [0] * 100
    for _ in range(4000):
        counts[skewed.sample(rng)] += 1
    # YCSB-style skew: the hottest decile absorbs well over half the mass
    assert sum(counts[:10]) > 2000 > counts[50]
    # theta=0 is uniform: no rank should get a Zipf-like share
    rng = random.Random(7)
    uniform = ZipfSampler(100, 0.0)
    counts = [0] * 100
    for _ in range(4000):
        counts[uniform.sample(rng)] += 1
    assert max(counts) < 100


def test_zipf_rejects_empty_population():
    with pytest.raises(ConfigError):
        ZipfSampler(0, 0.99)


# -- Poisson arrivals --------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    count=st.integers(0, 200),
    load=st.floats(0.1, 64.0, allow_nan=False),
    seed=st.integers(0, 2**20),
)
def test_arrivals_deterministic_and_ordered(count, load, seed):
    a = poisson_arrivals(count, load, random.Random(seed))
    b = poisson_arrivals(count, load, random.Random(seed))
    assert a == b
    assert len(a) == count
    assert a == sorted(a)
    assert all(t >= 0 for t in a)


def test_arrival_rate_matches_offered_load():
    # 4 req/kcycle over 4000 arrivals: the final timestamp estimates the
    # mean interarrival of 250 cycles to within a few percent
    arrivals = poisson_arrivals(4000, 4.0, random.Random(3))
    mean_gap = arrivals[-1] / 4000
    assert 230 < mean_gap < 270


# -- parameter validation ----------------------------------------------------


@pytest.mark.parametrize(
    "overrides",
    [
        dict(offered_load=0.0),
        dict(offered_load=-1.0),
        dict(skew=-0.1),
        dict(read_fraction=1.5),
        dict(read_fraction=-0.5),
        dict(requests=-1),
    ],
)
def test_service_params_validation(overrides):
    with pytest.raises(ConfigError):
        ServiceParams(**overrides)


def test_service_params_from_base_keeps_shared_fields():
    from repro.workloads import WorkloadParams

    base = WorkloadParams(num_threads=2, value_bytes=512, seed=9)
    upgraded = ServiceParams.from_base(base, offered_load=2.0)
    assert upgraded.num_threads == 2
    assert upgraded.value_bytes == 512
    assert upgraded.seed == 9
    assert upgraded.offered_load == 2.0


# -- the full precomputed schedule -------------------------------------------


def test_install_schedule_is_a_pure_function_of_params():
    """Two installs with equal params produce identical request schedules
    (arrival cycle, read/write mix, key rank) - the property that makes
    serve-bench rows independent of job count and cache state."""
    from repro.analysis.linter import LintMachine
    from repro.common.params import SystemConfig
    from repro.workloads import get_workload

    params = ServiceParams(num_threads=2, requests=64, setup_items=16)

    def schedule_of():
        machine = LintMachine(SystemConfig.small())
        wl = get_workload("SVC", params)
        wl.install(machine)
        zipf = ZipfSampler(len(wl.population), params.skew)
        sched_rng = random.Random(params.seed + 71)
        arrivals = poisson_arrivals(
            params.requests, params.offered_load, random.Random(params.seed + 72)
        )
        return [
            (arrivals[i], sched_rng.random() < params.read_fraction,
             zipf.sample(sched_rng))
            for i in range(params.requests)
        ]

    assert schedule_of() == schedule_of()

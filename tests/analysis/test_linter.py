"""Static workload linter: clean bundled workloads, seeded anti-patterns."""

import pytest

from repro.analysis import (
    LINT_RULES,
    LintMachine,
    lint_machine,
    lint_report,
    lint_threads,
    lint_workload,
)
from repro.common.errors import AnalysisError
from repro.sim.ops import Begin, Compute, End, Fence, Lock, Migrate, Read, Unlock, Write
from repro.workloads import WorkloadParams, workload_names

SMALL = WorkloadParams(num_threads=2, ops_per_thread=16, setup_items=16)


def rule_ids(result):
    return sorted({v.rule_id for v in result.violations})


def lint_one(gen_fn, machine=None):
    return lint_threads([gen_fn], machine=machine)


# -- bundled workloads are clean -------------------------------------------


@pytest.mark.parametrize("name", workload_names())
def test_bundled_workload_lints_clean(name):
    result = lint_workload(name, SMALL)
    assert result.violations == []
    assert result.ok
    assert result.ops_checked > 0
    assert result.threads == SMALL.num_threads


def test_lint_report_shape():
    results = {"Q": lint_workload("Q", SMALL)}
    report = lint_report(results)
    assert report["pass"] == "lint"
    assert report["summary"]["ok"] is True
    assert report["summary"]["targets"] == 1
    assert {r["id"] for r in report["rules"]} == set(LINT_RULES)


# -- seeded violations: each fires its intended rule ID --------------------


def test_pm_store_outside_region_fires_L001():
    machine = LintMachine()
    addr = machine.heap.alloc(64)

    def worker(env):
        yield Write(addr, [1])

    result = lint_one(worker, machine)
    assert rule_ids(result) == ["ASAP-L001"]
    assert result.violations[0].severity == "error"
    assert result.violations[0].op_index == 0


def test_volatile_store_outside_region_is_fine():
    machine = LintMachine()
    addr = machine.dram_heap.alloc(64)

    def worker(env):
        yield Write(addr, [1])

    assert lint_one(worker, machine).violations == []


def test_end_without_begin_fires_L002():
    def worker(env):
        yield End()

    assert rule_ids(lint_one(worker)) == ["ASAP-L002"]


def test_unterminated_region_fires_L002():
    machine = LintMachine()
    addr = machine.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Write(addr, [1])

    result = lint_one(worker, machine)
    assert rule_ids(result) == ["ASAP-L002"]


def test_balanced_nested_regions_are_clean():
    machine = LintMachine()
    addr = machine.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Begin()
        yield Write(addr, [1])
        yield End()
        yield End()

    assert lint_one(worker, machine).violations == []


def test_unlock_without_lock_fires_L003():
    machine = LintMachine()
    lock = machine.new_lock("l")

    def worker(env):
        yield Unlock(lock)

    assert rule_ids(lint_one(worker, machine)) == ["ASAP-L003"]


def test_exit_holding_lock_fires_L003():
    machine = LintMachine()
    lock = machine.new_lock("l")

    def worker(env):
        yield Lock(lock)

    assert rule_ids(lint_one(worker, machine)) == ["ASAP-L003"]


def test_reacquire_held_lock_fires_L003():
    machine = LintMachine()
    lock = machine.new_lock("l")

    def worker(env):
        yield Lock(lock)
        yield Lock(lock)
        yield Unlock(lock)

    assert rule_ids(lint_one(worker, machine)) == ["ASAP-L003"]


def test_fence_inside_region_fires_L004():
    def worker(env):
        yield Begin()
        yield Fence()
        yield End()

    assert rule_ids(lint_one(worker)) == ["ASAP-L004"]


def test_fence_between_regions_is_clean():
    def worker(env):
        yield Begin()
        yield End()
        yield Fence()

    assert lint_one(worker).violations == []


def test_cross_thread_uncommitted_read_fires_L005():
    machine = LintMachine()
    addr = machine.heap.alloc(64)

    def writer(env):
        yield Begin()
        yield Write(addr, [7])
        yield Compute(1)
        yield Compute(1)
        yield End()

    def reader(env):
        yield Compute(1)
        yield Compute(1)
        (value,) = yield Read(addr, 1)

    machine.spawn(writer)
    machine.spawn(reader)
    result = lint_machine(machine, source="seeded")
    assert rule_ids(result) == ["ASAP-L005"]
    (violation,) = result.violations
    assert violation.severity == "warning"
    assert violation.thread_id == 1


def test_read_after_region_commit_is_clean():
    machine = LintMachine()
    addr = machine.heap.alloc(64)

    def writer(env):
        yield Begin()
        yield Write(addr, [7])
        yield End()

    def reader(env):
        yield Compute(1)
        yield Compute(1)
        yield Compute(1)
        yield Read(addr, 1)

    machine.spawn(writer)
    machine.spawn(reader)
    assert lint_machine(machine).violations == []


def test_migrate_inside_region_fires_L006():
    def worker(env):
        yield Begin()
        yield Migrate(1)
        yield End()

    assert rule_ids(lint_one(worker)) == ["ASAP-L006"]


def test_lock_region_overlap_fires_L007():
    machine = LintMachine()
    lock = machine.new_lock("l")

    def worker(env):
        yield Lock(lock)
        yield Begin()
        yield Unlock(lock)  # released inside the region it wrapped
        yield End()

    assert rule_ids(lint_one(worker, machine)) == ["ASAP-L007"]


def test_properly_nested_lock_region_is_clean():
    machine = LintMachine()
    lock = machine.new_lock("l")
    addr = machine.heap.alloc(64)

    def worker(env):
        yield Lock(lock)
        yield Begin()
        yield Write(addr, [1])
        yield End()
        yield Unlock(lock)

    assert lint_one(worker, machine).violations == []


# -- functional execution semantics ----------------------------------------


def test_reads_return_written_values():
    machine = LintMachine()
    addr = machine.heap.alloc(64)
    seen = []

    def worker(env):
        yield Begin()
        yield Write(addr, [11, 22])
        values = yield Read(addr, 2)
        seen.extend(values)
        yield End()

    lint_one(worker, machine)
    assert seen == [11, 22]


def test_locks_serialize_threads():
    machine = LintMachine()
    lock = machine.new_lock("l")
    addr = machine.heap.alloc(64)

    def worker(env):
        for _ in range(5):
            yield Lock(lock)
            yield Begin()
            (v,) = yield Read(addr, 1)
            yield Write(addr, [v + 1])
            yield End()
            yield Unlock(lock)

    machine.spawn(worker)
    machine.spawn(worker)
    result = lint_machine(machine)
    assert result.violations == []
    assert machine.image.read_word(addr) == 10


def test_lint_deadlock_raises_analysis_error():
    machine = LintMachine()
    a = machine.new_lock("a")
    b = machine.new_lock("b")

    def worker_ab(env):
        yield Lock(a)
        yield Lock(b)
        yield Unlock(b)
        yield Unlock(a)

    def worker_ba(env):
        yield Lock(b)
        yield Lock(a)
        yield Unlock(a)
        yield Unlock(b)

    machine.spawn(worker_ab)
    machine.spawn(worker_ba)
    with pytest.raises(AnalysisError, match="deadlock"):
        lint_machine(machine)

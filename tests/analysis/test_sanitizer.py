"""Runtime invariant sanitizer: clean real runs, seeded protocol breaks."""

import pytest

from repro.analysis import Sanitizer, sanitize_report
from repro.common.errors import SanitizerError, SimulationError
from repro.core.engine import AsapEngine
from repro.harness.runner import default_config, default_params, run_once
from repro.mem.wpq import DPO, LPO

PM_LINE = 0x1000_0000_0000
LOG_LINE = 0x2000_0000_0000


# -- fakes for driving individual handlers ---------------------------------


class FakeSized:
    """Anything with an occupancy and a capacity (CL List, LH-WPQ, ...)."""

    def __init__(self, size, capacity, name="fake"):
        self._size = size
        self.max_entries = capacity  # CL/Dependence List spelling
        self.capacity = capacity  # WPQ/LH-WPQ spelling
        self.name = name
        self.channel_index = 0

    def __len__(self):
        return self._size


class FakeThread:
    core_id = 0


class FakeEngine:
    def __init__(self, cl=None, dep_entry=None):
        self.cl_lists = [cl or FakeSized(1, 8)]
        self.lh_wpqs = []
        self._dep_entry = dep_entry

    def dep_list_for(self, rid):
        return self

    def entry(self, rid):
        return self._dep_entry


class FakeOp:
    def __init__(self, kind, rid=None, target_line=None, data_line=None):
        self.kind = kind
        self.rid = rid
        self.target_line = target_line
        self.data_line = data_line


class FakeClEntry:
    def __init__(self, rid, slots, max_slots):
        self.rid = rid
        self.slots = dict.fromkeys(range(slots))
        self.max_slots = max_slots


class FakeDepEntry:
    def __init__(self, deps, max_deps):
        self.deps = set(range(deps))
        self.max_deps = max_deps


def collecting():
    return Sanitizer(raise_on_violation=False)


def begin(san, engine, rid):
    san.region_begun(engine, FakeThread(), rid)


# -- seeded violations, one rule at a time ---------------------------------


def test_dpo_before_log_durable_fires_S001():
    san = collecting()
    engine = FakeEngine()
    begin(san, engine, 0xA)
    san.wpq_accepted(FakeSized(1, 8), FakeOp(DPO, rid=0xA, target_line=PM_LINE))
    (v,) = san.violations
    assert v.rule_id == "ASAP-S001"
    assert v.details["line"] == PM_LINE


def test_dpo_after_log_durable_is_clean():
    san = collecting()
    engine = FakeEngine()
    begin(san, engine, 0xA)
    san.lpo_logged(engine, 0xA, PM_LINE)
    san.wpq_accepted(FakeSized(1, 8), FakeOp(DPO, rid=0xA, target_line=PM_LINE))
    assert san.violations == []


def test_locked_line_eviction_fires_S001():
    class Meta:
        line = PM_LINE
        lock_bit = True
        owner_rid = 0xA

    san = collecting()
    san.line_evicted(Meta(), wb_op=None)
    (v,) = san.violations
    assert v.rule_id == "ASAP-S001"
    assert v.source == "llc"


def test_commit_before_predecessor_fires_S002():
    san = collecting()
    engine = FakeEngine()
    begin(san, engine, 0xA)
    begin(san, engine, 0xB)
    san.dep_captured(engine, 0xB, 0xA)
    san.region_committed(engine, 0xB)  # 0xA still uncommitted
    (v,) = san.violations
    assert v.rule_id == "ASAP-S002"
    assert v.details["outstanding"] == [0xA]


def test_commit_after_predecessor_is_clean():
    san = collecting()
    engine = FakeEngine()
    begin(san, engine, 0xA)
    begin(san, engine, 0xB)
    san.dep_captured(engine, 0xB, 0xA)
    san.region_committed(engine, 0xA)
    san.region_committed(engine, 0xB)
    assert san.violations == []


@pytest.mark.parametrize(
    "fire",
    [
        lambda san: begin(san, FakeEngine(cl=FakeSized(9, 8)), 0xA),
        lambda san: san.dep_captured(
            FakeEngine(dep_entry=FakeDepEntry(deps=5, max_deps=4)), 0xA, 0xB
        ),
        lambda san: san.slot_opened(
            FakeEngine(), FakeClEntry(0xA, slots=5, max_slots=4), PM_LINE
        ),
        lambda san: san.dep_entry_opened(FakeSized(17, 16), object()),
        lambda san: san.wpq_accepted(FakeSized(17, 16), FakeOp(DPO)),
    ],
    ids=["cl-list", "dep-slots", "clptr-slots", "dep-list", "wpq"],
)
def test_capacity_overflow_fires_S003(fire):
    san = collecting()
    fire(san)
    assert [v.rule_id for v in san.violations] == ["ASAP-S003"]
    assert san.violations[0].details["occupancy"] > san.violations[0].details["capacity"]


def test_lh_wpq_overflow_fires_S003():
    san = collecting()
    engine = FakeEngine()
    engine.lh_wpqs = [FakeSized(5, 4, name="lh-wpq[0]")]
    san.lpo_initiated(engine, 0xA, PM_LINE, LOG_LINE)
    (v,) = san.violations
    assert v.rule_id == "ASAP-S003"
    assert v.source == "lh-wpq[0]"


def test_lpo_for_committed_region_fires_S004():
    san = collecting()
    engine = FakeEngine()
    begin(san, engine, 0xA)
    san.region_committed(engine, 0xA)
    san.lpo_initiated(engine, 0xA, PM_LINE, LOG_LINE)
    (v,) = san.violations
    assert v.rule_id == "ASAP-S004"


def test_lpo_accepted_after_log_free_fires_S004():
    san = collecting()
    engine = FakeEngine()
    begin(san, engine, 0xA)
    san.region_committed(engine, 0xA)
    san.wpq_accepted(
        FakeSized(1, 8), FakeOp(LPO, rid=0xA, target_line=LOG_LINE, data_line=PM_LINE)
    )
    (v,) = san.violations
    assert v.rule_id == "ASAP-S004"


class FakeHierarchy:
    def __init__(self, mshrs=None):
        self.llc_mshrs = mshrs


def test_duplicate_fetch_fires_S005():
    san = collecting()
    h = FakeHierarchy(FakeSized(1, 16, name="MSHR-LLC"))
    san.mshr_allocated(h, PM_LINE, 0)
    assert san.ok
    san.mshr_allocated(h, PM_LINE, 1)  # second fetch must merge instead
    (v,) = san.violations
    assert v.rule_id == "ASAP-S005"


def test_merge_without_inflight_fetch_fires_S005():
    san = collecting()
    san.mshr_merged(FakeHierarchy(), PM_LINE, 0)
    (v,) = san.violations
    assert v.rule_id == "ASAP-S005"


def test_fill_lifecycle_is_clean_and_zero_waiter_fill_fires_S005():
    san = collecting()
    h = FakeHierarchy(FakeSized(1, 16, name="MSHR-LLC"))
    san.mshr_allocated(h, PM_LINE, 0)
    san.mshr_merged(h, PM_LINE, 1)
    san.mshr_stalled(h, PM_LINE + 64, 2)
    san.mshr_filled(h, PM_LINE, waiters=2)
    assert san.ok
    # a line can be fetched again after its fill completed
    san.mshr_allocated(h, PM_LINE, 0)
    san.mshr_filled(h, PM_LINE, waiters=0)  # but never with no requester
    (v,) = san.violations
    assert v.rule_id == "ASAP-S005"


def test_mshr_capacity_bypass_fires_S003():
    san = collecting()
    h = FakeHierarchy(FakeSized(3, 2, name="MSHR-LLC"))  # 3 entries, cap 2
    san.mshr_allocated(h, PM_LINE, 0)
    assert any(v.rule_id == "ASAP-S003" for v in san.violations)


def test_raise_mode_carries_violation():
    san = Sanitizer()  # raise_on_violation defaults to True
    engine = FakeEngine()
    begin(san, engine, 0xA)
    with pytest.raises(SanitizerError) as exc:
        san.wpq_accepted(FakeSized(1, 8), FakeOp(DPO, rid=0xA, target_line=PM_LINE))
    assert exc.value.violation.rule_id == "ASAP-S001"
    assert isinstance(exc.value, SimulationError)
    assert "ASAP-S001" in str(exc.value)


# -- full-machine integration ----------------------------------------------


def small_run(sanitize):
    from repro.workloads import WorkloadParams

    params = WorkloadParams(num_threads=2, ops_per_thread=10, setup_items=16)
    return run_once("Q", "asap", default_config(), params, sanitize=sanitize)


def test_asap_run_is_sanitizer_clean():
    san = collecting()
    result = small_run(san)
    assert result.cycles > 0
    assert san.ok
    assert san.violations == []
    assert san.events_checked > 0


def test_sanitize_true_attaches_fresh_raising_sanitizer():
    # A healthy run must complete without the raising sanitizer firing.
    result = small_run(True)
    assert result.cycles > 0


@pytest.mark.parametrize("mshrs", [1, 16])
def test_mshr_modes_run_sanitizer_clean(mshrs):
    # The non-blocking hierarchy's live events (allocate/merge/fill/stall)
    # must satisfy ASAP-S005 under both exhaustion-heavy (1 MSHR) and
    # default capacities.
    from dataclasses import replace as dc_replace

    from repro.workloads import WorkloadParams

    san = collecting()
    config = default_config()
    config = dc_replace(config, memory=dc_replace(config.memory, mshrs_per_cache=mshrs))
    params = WorkloadParams(num_threads=2, ops_per_thread=10, setup_items=16)
    result = run_once("HM", "asap", config, params, sanitize=san)
    assert result.cycles > 0
    assert san.ok
    assert san.events_checked > 0


def test_baseline_scheme_gets_scheme_agnostic_hooks_only():
    san = collecting()
    params_result = run_once(
        "Q",
        "np",
        sanitize=san,
    )
    assert params_result.cycles > 0
    assert san.violations == []


def test_skipped_lpo_is_caught_end_to_end(monkeypatch):
    # Break the WAL contract for real: never issue the LPO, so the first
    # DPO of every region reaches a WPQ with no durable log entry.
    monkeypatch.setattr(
        AsapEngine,
        "_initiate_lpo",
        lambda self, thread, rid, meta, old_snapshot, then: then(),
    )
    with pytest.raises(SanitizerError) as exc:
        small_run(True)
    assert exc.value.violation.rule_id == "ASAP-S001"


def test_sanitize_report_shape():
    san = collecting()
    result = small_run(san)
    report = sanitize_report(
        [
            {
                "workload": "Q",
                "scheme": "asap",
                "cycles": result.cycles,
                "violations": san.violations,
                "events_checked": san.events_checked,
            }
        ]
    )
    assert report["pass"] == "sanitize"
    assert report["summary"]["ok"] is True
    assert report["summary"]["events_checked"] == san.events_checked
    assert {r["id"] for r in report["rules"]} == {
        "ASAP-S001",
        "ASAP-S002",
        "ASAP-S003",
        "ASAP-S004",
        "ASAP-S005",
    }

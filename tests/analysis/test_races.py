"""Persist-ordering race detector (repro.analysis.races).

The acceptance bar, straight from the detector's design goals:

* both pinned regression bugs (the PR 3 cross-thread commit-ordering
  race and the PR 5 same-line undo-chain loss) are reported as
  ``CONFIRMED`` findings when their legacy config flag is flipped back,
* zero findings under the default (fixed) configuration - on the same
  corpus cases and across every bundled workload, and
* the fuzzer's directed mode verifies every witness in far fewer
  simulation runs than the undirected CI smoke budget (200+ runs).
"""

import glob
import os
from dataclasses import replace as dc_replace

import pytest

from repro.analysis.races import (
    CONFIRMED,
    detect_in_case,
    detect_in_workload,
    verify_finding,
)
from repro.common.params import SystemConfig
from repro.harness.fuzz import load_corpus_entry, run_directed
from repro.harness.runner import default_config, default_params
from repro.persist import make_scheme, scheme_names
from repro.workloads import workload_names

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "property", "corpus"
)
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

CROSS_THREAD = os.path.join(CORPUS_DIR, "undo-cross-thread-rmw-wpq4.json")
LINE_CHAIN = os.path.join(CORPUS_DIR, "undo-incomplete-line-chain-wpq1.json")

#: the undirected fuzz smoke budget in CI; directed mode must beat it
UNDIRECTED_CI_BUDGET = 200


# -- per-scheme ordering-edge declarations ---------------------------------


def test_every_scheme_declares_ordering_edges():
    from repro.persist.base import EDGE_KINDS

    for name in scheme_names():
        scheme = make_scheme(name)
        assert scheme.ORDERING_EDGES <= EDGE_KINDS, name


def test_np_guarantees_nothing():
    assert make_scheme("np").ORDERING_EDGES == frozenset()


def test_asap_declares_all_four_hardware_edges():
    assert make_scheme("asap").ORDERING_EDGES == frozenset(
        {"wpq-fifo", "line-chain", "lockbit-gate", "dep-commit-gate"}
    )
    assert make_scheme("asap_redo").ORDERING_EDGES == frozenset(
        {"wpq-fifo", "marker-gate", "dep-commit-gate"}
    )


def test_legacy_flags_drop_the_matching_edge():
    scheme = make_scheme("asap")
    fixed = SystemConfig.small()
    assert scheme.ordering_edges(fixed) == scheme.ORDERING_EDGES

    no_fifo = dc_replace(
        fixed, memory=dc_replace(fixed.memory, wpq_fifo_backpressure=False)
    )
    assert "wpq-fifo" not in scheme.ordering_edges(no_fifo)
    assert "line-chain" in scheme.ordering_edges(no_fifo)

    no_chain = SystemConfig.small(ordered_line_log_persists=False)
    assert "line-chain" not in scheme.ordering_edges(no_chain)
    assert "wpq-fifo" in scheme.ordering_edges(no_chain)


# -- the two pinned bugs must be rediscovered ------------------------------


def _legacy_case(path, **flags):
    case, _meta = load_corpus_entry(path)
    return dc_replace(case, **flags)


def test_detector_confirms_cross_thread_commit_race():
    # PR 3's bug: without WPQ FIFO backpressure a later thread's commit
    # can become durable before an earlier thread's data persist.
    case = _legacy_case(CROSS_THREAD, fifo_backpressure=False)
    result = detect_in_case(case, source="cross-thread")
    rules = {f.rule_id for f in result.findings}
    assert "ASAP-R001" in rules
    finding = next(f for f in result.findings if f.rule_id == "ASAP-R001")
    assert finding.status == CONFIRMED
    assert finding.site_a["line"] == finding.site_b["line"]
    assert finding.site_a["thread"] != finding.site_b["thread"]
    assert finding.window, "finding must carry a crash window"
    assert finding.crash_fracs, "finding must carry fuzzer crash fractions"


def test_detector_confirms_same_line_undo_chain_loss():
    # PR 5's bug: without ordered same-line log persists the second LPO
    # of an undo chain can be accepted before the first.
    case = _legacy_case(LINE_CHAIN, ordered_line_log_persists=False)
    result = detect_in_case(case, source="line-chain")
    rules = {f.rule_id for f in result.findings}
    assert "ASAP-R002" in rules
    finding = next(f for f in result.findings if f.rule_id == "ASAP-R002")
    assert finding.status == CONFIRMED


def test_confirmed_findings_need_no_extra_runs():
    # an in-trace acceptance inversion is its own proof: verification
    # must short-circuit without any directed replays
    case = _legacy_case(CROSS_THREAD, fifo_backpressure=False)
    result = detect_in_case(case)
    finding = next(f for f in result.findings if f.rule_id == "ASAP-R001")
    outcome = verify_finding(case, finding)
    assert outcome.status == CONFIRMED
    assert outcome.runs_used == 0


# -- zero false positives on the fixed model -------------------------------


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_cases_clean_under_default_config(path):
    case, _meta = load_corpus_entry(path)
    case = dc_replace(
        case, fifo_backpressure=True, ordered_line_log_persists=True
    )
    result = detect_in_case(case, source=os.path.basename(path))
    assert result.ok, [f.to_dict() for f in result.findings]
    assert result.nodes > 0, "tracer saw no persist ops - attach regressed?"


def test_tracer_records_miss_windows():
    # The MSHR hooks feed the tracer allocate-to-fill windows - evidence
    # of the recovered memory-level parallelism (docs/MEMORY.md) and the
    # tool the miss-in-flight corpus entry used to pin its crash_fracs.
    from repro.analysis.races import RaceTracer
    from repro.harness.fuzz import build_machine

    case, _meta = load_corpus_entry(
        os.path.join(CORPUS_DIR, "undo-miss-in-flight-mshr1.json")
    )
    machine = build_machine(case)
    tracer = RaceTracer()
    tracer.attach(machine)
    total = machine.run().cycles
    assert tracer.miss_windows, "no MSHR fetch windows recorded"
    for line, start, end, waiters in tracer.miss_windows:
        assert 0 <= start < end <= total
        assert waiters >= 1
    # the pinned crash fractions land strictly inside fetch windows
    for frac in case.crash_fracs:
        cycle = max(1, int(total * frac))
        assert any(s < cycle < e for _l, s, e, _w in tracer.miss_windows), frac


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize("scheme", ["asap", "asap_redo"])
def test_workloads_clean_under_default_config(workload, scheme):
    result = detect_in_workload(
        workload,
        scheme,
        config=default_config(quick=True),
        params=default_params(quick=True),
    )
    assert result.ok, [f.to_dict() for f in result.findings]
    assert result.nodes > 0


# -- directed fuzzing beats the undirected budget --------------------------


def test_directed_mode_confirms_both_bugs_under_budget():
    cases = [
        (
            "cross-thread",
            _legacy_case(CROSS_THREAD, fifo_backpressure=False),
        ),
        (
            "line-chain",
            _legacy_case(LINE_CHAIN, ordered_line_log_persists=False),
        ),
    ]
    report = run_directed(cases)
    assert report.confirmed >= 2
    assert not report.ok
    assert report.runs < UNDIRECTED_CI_BUDGET
    rules = {o["rule_id"] for o in report.outcomes}
    assert {"ASAP-R001", "ASAP-R002"} <= rules


def test_directed_mode_clean_on_fixed_corpus():
    cases = []
    for path in CORPUS_FILES:
        case, _meta = load_corpus_entry(path)
        cases.append((os.path.basename(path), case))
    report = run_directed(cases)
    assert report.ok
    assert report.confirmed == 0
    assert report.runs == len(cases)  # one instrumented run each, no replays

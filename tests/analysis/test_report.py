"""Schema-versioned analysis reports (repro.analysis.report)."""

import pytest

from repro.analysis.linter import lint_workload
from repro.analysis.races import detect_in_workload
from repro.analysis.report import (
    ANALYSIS_SCHEMA_VERSION,
    lint_report,
    races_report,
    sanitize_report,
    validate_report,
)
from repro.workloads import WorkloadParams


@pytest.fixture(scope="module")
def reports():
    params = WorkloadParams(num_threads=2, ops_per_thread=12, setup_items=8)
    lint = lint_report({"Q": lint_workload("Q", params)})
    sanitize = sanitize_report(
        [
            {
                "source": "Q",
                "workload": "Q",
                "scheme": "asap",
                "cycles": 100,
                "events_checked": 5,
                "violations": [],
            }
        ]
    )
    races = races_report([detect_in_workload("Q")])
    return {"lint": lint, "sanitize": sanitize, "races": races}


@pytest.mark.parametrize("name", ["lint", "sanitize", "races"])
def test_reports_carry_schema_version(reports, name):
    report = reports[name]
    assert report["schema_version"] == ANALYSIS_SCHEMA_VERSION
    assert report["pass"] == name
    assert report["tool"] == "repro.analysis"


@pytest.mark.parametrize("name", ["lint", "sanitize", "races"])
def test_reports_validate(reports, name):
    assert validate_report(reports[name]) == []


def test_validator_rejects_missing_version(reports):
    bad = dict(reports["lint"])
    del bad["schema_version"]
    assert any("schema_version" in p for p in validate_report(bad))


def test_validator_rejects_newer_version(reports):
    bad = {**reports["lint"], "schema_version": ANALYSIS_SCHEMA_VERSION + 1}
    assert any("newer than supported" in p for p in validate_report(bad))


def test_validator_rejects_unknown_pass(reports):
    bad = {**reports["lint"], "pass": "vibes"}
    assert any("vibes" in p for p in validate_report(bad))


def test_validator_rejects_malformed_targets(reports):
    bad = {**reports["lint"], "targets": [{"no_violations_here": True}]}
    assert any("violations" in p for p in validate_report(bad))


def test_validator_rejects_non_dict():
    assert validate_report([]) != []


def test_races_report_counts_confirmed(reports):
    summary = reports["races"]["summary"]
    assert summary["ok"] is True
    assert summary["confirmed"] == 0
    assert summary["nodes"] > 0

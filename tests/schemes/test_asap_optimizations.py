"""Tests for the Sec. 5.1 traffic optimizations and their ablations."""

from dataclasses import replace

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Read, Write


def run_with(ablation, regions=40, hot_lines=2, **small_kwargs):
    cfg = SystemConfig.small(**small_kwargs)
    cfg = cfg.with_asap(cfg.asap.ablation(ablation))
    m = Machine(cfg, make_scheme("asap"))
    a = m.heap.alloc(64 * hot_lines)

    def worker(env):
        for i in range(regions):
            yield Begin()
            for j in range(hot_lines):
                # several stores to the same line (coalescing fodder)
                yield Write(a + 64 * j, [i])
                yield Write(a + 64 * j + 8, [i + 1])
                yield Write(a + 64 * j + 16, [i + 2])
            yield End()

    m.spawn(worker)
    res = m.run()
    return m, res


def test_lpo_dropping_reduces_log_traffic():
    _, without = run_with("+C")
    _, with_lp = run_with("+C+LP")
    assert with_lp.pm_writes_by_kind["lpo"] < without.pm_writes_by_kind["lpo"]


def test_dpo_dropping_reduces_data_traffic_on_hot_lines():
    _, without = run_with("+C+LP")
    m, full = run_with("full")
    assert full.pm_writes_by_kind["dpo"] < without.pm_writes_by_kind["dpo"]
    assert m.scheme.engine.stats.dpo_drops > 0


def test_coalescing_reduces_dpo_initiations():
    m_no, res_no = run_with("no_opt")
    m_c, res_c = run_with("+C")
    assert (
        m_c.scheme.engine.stats.dpos_initiated
        < m_no.scheme.engine.stats.dpos_initiated
    )


def test_ablation_traffic_is_monotone():
    traffic = {}
    for ab in ("no_opt", "+C", "+C+LP", "full"):
        traffic[ab] = run_with(ab)[1].pm_writes
    assert traffic["no_opt"] >= traffic["+C"] >= traffic["+C+LP"] >= traffic["full"]
    assert traffic["no_opt"] > traffic["full"]


def test_optimizations_do_not_change_results():
    """Traffic optimizations must be semantically invisible."""
    finals = set()
    for ab in ("no_opt", "full"):
        m, _ = run_with(ab, regions=20)
        a = min(m.oracle.tracked_words)
        finals.add(tuple(sorted(m.oracle.committed._words.items())))
        assert len(m.oracle.committed_rids) == 20
    assert len(finals) == 1  # same committed image either way


def test_all_regions_commit_under_every_ablation():
    for ab in ("no_opt", "+C", "+C+LP", "full"):
        m, res = run_with(ab, regions=15)
        assert m.scheme.engine.stats.commits == 15, ab

"""Tests for the asap_redo extension (Fig. 2c: asynchronous-commit redo)."""

import pytest

from repro.common.params import SystemConfig
from repro.core.rid import pack_rid
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Fence, Lock, Read, Unlock, Write
from repro.workloads import WorkloadParams, get_workload, workload_names


def make(**kwargs):
    m = Machine(SystemConfig.small(**kwargs), make_scheme("asap_redo"))
    return m, m.heap.alloc(64 * 16)


def test_end_is_asynchronous():
    m, a = make()
    t = {}
    commits = []
    m.scheme.on_commit.append(commits.append)

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        t["commits_at_end"] = len(commits)

    m.spawn(worker)
    m.run()
    assert t["commits_at_end"] == 0
    assert len(commits) == 1


def test_commit_order_follows_control_dependence():
    m, a = make()
    commits = []
    m.scheme.on_commit.append(commits.append)

    def worker(env):
        for i in range(5):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()

    m.spawn(worker)
    m.run()
    assert commits == sorted(commits)


def test_data_dependence_across_threads():
    m, a = make(wpq_entries=1)
    lock = m.new_lock()
    commits = []
    m.scheme.on_commit.append(commits.append)

    def producer(env):
        yield Lock(lock)
        yield Begin()
        for j in range(1, 7):
            yield Write(a + 64 * j, [j])
        yield Write(a, [41])
        yield End()
        yield Unlock(lock)

    def consumer(env):
        yield Lock(lock)
        yield Begin()
        (x,) = yield Read(a, 1)
        yield Write(a, [x + 1])
        yield End()
        yield Unlock(lock)

    m.spawn(producer)
    m.spawn(consumer)
    m.run()
    assert m.volatile.read_word(a) == 42
    p, c = pack_rid(0, 1), pack_rid(1, 1)
    assert commits.index(p) < commits.index(c)


def test_in_place_updates_carry_logged_values_only():
    """Redo's no-force rule: a committed region's writeback installs the
    values it logged, even if a later uncommitted region has already
    modified the cache line."""
    m, a = make(wpq_entries=1)
    lock = m.new_lock()

    def t1(env):
        yield Lock(lock)
        yield Begin()
        yield Write(a, [100])
        yield End()
        yield Unlock(lock)

    def t2(env):
        yield Lock(lock)
        yield Begin()
        (v,) = yield Read(a, 1)
        yield Write(a, [v + 1])
        yield End()
        yield Unlock(lock)

    m.spawn(t1)
    m.spawn(t2)
    m.run()
    assert m.pm_image.read_word(a) == 101
    assert m.oracle.mismatches(m.pm_image) == []


def test_fence_blocks_until_marker_durable():
    m, a = make()
    commits = []
    m.scheme.on_commit.append(commits.append)
    t = {}

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        t["at_end"] = len(commits)
        yield Fence()
        t["at_fence"] = len(commits)

    m.spawn(worker)
    m.run()
    assert t["at_end"] == 0 and t["at_fence"] == 1


def test_rewritten_lines_relogged_with_final_values():
    m, a = make()

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield Write(a, [2])
        yield End()

    m.spawn(worker)
    res = m.run()
    assert res.pm_writes_by_kind["lpo"] >= 2  # initial + final-value re-log
    assert m.pm_image.read_word(a) == 2


def test_eviction_of_uncommitted_line_is_suppressed():
    """Uncommitted redo data must never reach its home address."""
    m, a = make(wpq_entries=1)
    filler = m.heap.alloc(64 * 4096)

    def writer(env):
        yield Begin()
        for j in range(8):
            yield Write(a + 64 * j, [j + 1])
        # stream the cache while the region is still open
        for i in range(3000):
            yield Read(filler + 64 * i, 1)
        yield End()

    m.spawn(writer)
    m.run()
    assert m.scheme.wbs_suppressed > 0
    assert m.oracle.mismatches(m.pm_image) == []


@pytest.mark.parametrize("workload", workload_names())
def test_workloads_run_and_recover(workload):
    params = WorkloadParams(num_threads=3, ops_per_thread=10, setup_items=16)

    def build():
        machine = Machine(SystemConfig.small(), make_scheme("asap_redo"))
        get_workload(workload, params).install(machine)
        return machine

    total = build().run().cycles
    machine = build()
    state = crash_machine(machine, at_cycle=total // 2)
    assert state.log_kind == "redo"
    image, _report = recover(state)
    verdict = verify_recovery(machine, image)
    assert verdict.ok, verdict.explain()


def test_redo_recovery_dense_crash_scan():
    params = WorkloadParams(num_threads=2, ops_per_thread=10, setup_items=8)

    def build():
        machine = Machine(SystemConfig.small(wpq_entries=2), make_scheme("asap_redo"))
        get_workload("Q", params).install(machine)
        return machine

    total = build().run().cycles
    for i in range(8):
        machine = build()
        state = crash_machine(machine, at_cycle=150 + (i * total) // 9)
        image, _ = recover(state)
        verdict = verify_recovery(machine, image)
        assert verdict.ok, verdict.explain()

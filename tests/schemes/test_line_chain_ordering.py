"""Directed tests for per-line log-persist chain ordering.

The scenario class behind the ROADMAP recovery bug: a dependence chain of
uncommitted regions rewrites one line, each appending an undo-log entry
for it at a *different* log address (different records, potentially
different channels), so nothing orders the entries' durability. On a
tiny WPQ a later region's entry can be accepted while an earlier one is
still backpressured - and lost at a crash - leaving the surviving log
claiming an "old value" that never durably existed. Recovery then
installs it over the committed value.

Covered here:

* the fix (``AsapParams.ordered_line_log_persists``): the pinned ROADMAP
  schedule recovers consistently at every swept crash point, and the
  deferral counters show the ordering actually engaged;
* the regression demo: the legacy flag plus ``defensive=False`` recovery
  reproduces the corruption bit-for-bit, and hardened recovery
  neutralizes it by skipping the broken chain;
* chain shapes: same-line chains of length 2-4, single- and
  cross-thread, on 1- and 2-entry WPQs;
* the HWUndo analogue (drain-granularity ordering, scheme-level stat).

The same schedule is pinned as ``@example`` on the property suite and as
``tests/property/corpus/undo-incomplete-line-chain-wpq1.json``; see
docs/RECOVERY.md for the full story.
"""

import pytest

from repro.common.params import SystemConfig
from repro.harness.fuzz import FuzzCase, build_machine, case_failures
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Write

#: the ROADMAP falsifying example: one thread, four regions; regions
#: 2..4 form an uncommitted chain rewriting line 1 near the crash point
ROADMAP_THREADS = [
    [
        [(0, False, 0), (1, False, 1), (2, False, 0), (4, False, 0)],
        [(0, False, 0), (1, False, 0)],
        [(1, False, 0)],
        [(0, False, 0)],
    ]
]
ROADMAP_CRASH_FRAC = 0.96875


def roadmap_case(**overrides):
    return FuzzCase(
        scheme="asap", threads=ROADMAP_THREADS, wpq_entries=1, **overrides
    )


def crash_and_recover(case, crash_frac, defensive=True):
    total = build_machine(case).run().cycles
    m = build_machine(case)
    state = crash_machine(m, at_cycle=max(1, int(total * crash_frac)))
    image, report = recover(state, defensive=defensive)
    return verify_recovery(m, image), report, state


# -- the fix -----------------------------------------------------------------


def test_pinned_repro_consistent_at_every_crash_point():
    """The ROADMAP schedule, crash-swept densely across the whole run."""
    case = roadmap_case()
    total = build_machine(case).run().cycles
    fracs = [cycle / total for cycle in range(1, total, 16)]
    fracs.append(ROADMAP_CRASH_FRAC)
    for frac in fracs:
        verdict, _report, _state = crash_and_recover(case, frac)
        assert verdict.ok, f"@frac={frac}: {verdict.explain()}"


def test_ordering_engages_on_pinned_repro():
    """The fix is live, not vacuous: the schedule actually defers an LPO."""
    m = build_machine(roadmap_case())
    m.run()
    assert m.scheme.engine.stats.lpo_order_delays > 0


def test_legacy_flag_disables_ordering():
    m = build_machine(roadmap_case(ordered_line_log_persists=False))
    m.run()
    assert m.scheme.engine.stats.lpo_order_delays == 0


def test_crash_state_records_ordering_mode():
    _v, _r, fixed_state = crash_and_recover(roadmap_case(), 0.5)
    assert fixed_state.ordered_line_log_persists is True
    _v, _r, legacy_state = crash_and_recover(
        roadmap_case(ordered_line_log_persists=False), 0.5
    )
    assert legacy_state.ordered_line_log_persists is False


# -- the regression demo -----------------------------------------------------


def test_legacy_model_corrupts_without_defensive_recovery():
    """Pre-fix model + pre-hardening recovery = the original bug: the
    committed 0x1 on line 1 is overwritten by a never-durable 0x0."""
    case = roadmap_case(ordered_line_log_persists=False)
    verdict, report, _state = crash_and_recover(
        case, ROADMAP_CRASH_FRAC, defensive=False
    )
    assert not verdict.ok
    assert report.skipped_restores == []
    (addr, expect, got) = verdict.mismatches[0]
    assert (expect, got) == (1, 0)


def test_hardened_recovery_neutralizes_legacy_corruption():
    """Same crash image, defensive recovery: the broken chain is skipped
    (diagnosed in the report) and the image stays consistent."""
    case = roadmap_case(ordered_line_log_persists=False)
    verdict, report, _state = crash_and_recover(case, ROADMAP_CRASH_FRAC)
    assert verdict.ok, verdict.explain()
    assert report.skipped_lines == 1
    assert "CHAIN_BIT" in report.skipped_restores[0]["reason"]


def test_corpus_entry_matches_pinned_schedule():
    import json
    import os

    path = os.path.join(
        os.path.dirname(__file__),
        "..",
        "property",
        "corpus",
        "undo-incomplete-line-chain-wpq1.json",
    )
    with open(path) as fh:
        data = json.load(fh)
    case = FuzzCase.from_json(data)
    assert case.threads == [
        [[tuple(op) for op in region] for region in thread]
        for thread in ROADMAP_THREADS
    ]
    assert case.wpq_entries == 1
    assert case.crash_fracs == [ROADMAP_CRASH_FRAC]


# -- chain shapes ------------------------------------------------------------


def chain_case(length, num_threads, wpq_entries):
    """``length`` regions all rewriting line 0 (plus per-region filler so
    log traffic keeps the WPQ busy), dealt round-robin over
    ``num_threads`` lock-serialised threads."""
    threads = [[] for _ in range(num_threads)]
    for i in range(length):
        threads[i % num_threads].append(
            [(0, False, i + 1), (1 + (i % 3), False, 0)]
        )
    return FuzzCase(
        scheme="asap",
        threads=[t for t in threads if t],
        wpq_entries=wpq_entries,
    )


@pytest.mark.parametrize("length", [2, 3, 4])
@pytest.mark.parametrize("num_threads", [1, 2, 3])
@pytest.mark.parametrize("wpq_entries", [1, 2])
def test_same_line_chains_recover_consistently(length, num_threads, wpq_entries):
    if num_threads > length:
        pytest.skip("fewer regions than threads")
    case = chain_case(length, num_threads, wpq_entries)
    assert case_failures(case, crash_points=4) == []


# -- the HWUndo analogue -----------------------------------------------------


def hwundo_machine(ordered):
    m = Machine(
        SystemConfig.small(wpq_entries=4, ordered_line_log_persists=ordered),
        make_scheme("hwundo"),
    )
    m.heap.alloc(512)
    return m


def submit_pair(m, issued):
    """Push two same-line LPOs through the scheme's ordering gate.

    End-to-end, HWUndo's gate almost never engages on the small config:
    cross-core accesses to one line serialise through memory by a full PM
    fetch, which exceeds the LPO drain window, and synchronous commit
    rules out same-thread overlap. The gate is the scheme's defence for
    the configurations where that does not hold (deep queues, multi-
    channel log placement), so it is exercised mechanically here.
    """
    from repro.mem.wpq import LPO, PersistOp

    scheme = m.scheme
    line = 0x1000_0000_0000
    ops = [
        PersistOp(
            kind=LPO,
            target_line=0x1000_1000_0000 + i * 0x1000,
            data_line=line,
            payload={0x1000_1000_0000 + i * 0x1000: i + 1},
            rid=i + 1,
            on_drain=lambda _op, line=line: scheme._lpo_chain_advance(line),
        )
        for i in range(2)
    ]
    orig = m.memory.issue_persist
    m.memory.issue_persist = lambda op: (issued.append(op.rid), orig(op))
    scheme._submit_lpo_ordered(ops[0], line)
    scheme._submit_lpo_ordered(ops[1], line)
    return line


def test_hwundo_holds_second_same_line_lpo_until_drain():
    m = hwundo_machine(ordered=True)
    issued = []
    submit_pair(m, issued)
    assert issued == [1]  # op 2 held at the controller
    assert m.scheme.lpo_order_delays == 1
    m.run()  # drains op 1; its on_drain advances the chain
    assert issued == [1, 2]


def test_hwundo_legacy_flag_disables_gate():
    m = hwundo_machine(ordered=False)
    issued = []
    submit_pair(m, issued)
    assert issued == [1, 2]  # both in flight at once: the pre-fix model
    assert m.scheme.lpo_order_delays == 0


def test_hwundo_concurrent_same_line_regions_still_commit():
    """No-deadlock end-to-end check: unlocked same-line regions on two
    threads run to commit with the gate armed."""
    m = Machine(
        SystemConfig.small(wpq_entries=1, ordered_line_log_persists=True),
        make_scheme("hwundo"),
    )
    a = m.heap.alloc(512)

    def body(env, value):
        yield Begin()
        yield Write(a, [value])
        yield Write(a + 64 * (1 + value), [0])
        yield End()

    m.spawn(lambda env: body(env, 1))
    m.spawn(lambda env: body(env, 2))
    m.run()
    assert len(m.oracle.committed_rids) == 2

"""ASAP engine tests: the Fig. 4 state machine, dependence tracking,
asynchronous commit, and structural stalls."""

import pytest

from repro.common.params import SystemConfig
from repro.core.rid import pack_rid
from repro.core.states import RegionState
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Fence, Lock, Read, Unlock, Write


def make(scheme_kwargs=None, **small_kwargs):
    m = Machine(SystemConfig.small(**small_kwargs), make_scheme("asap"))
    return m, m.scheme.engine


def test_end_retires_before_commit():
    """The asynchronous-commit headline: execution proceeds past asap_end
    while persist operations are outstanding."""
    m, eng = make()
    a = m.heap.alloc(64)
    t = {}

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        t["end_retired"] = m.scheduler.now
        t["commits_at_end"] = eng.stats.commits

    m.spawn(worker)
    m.run()
    assert t["commits_at_end"] == 0  # not yet committed when End retired
    assert eng.stats.commits == 1  # but committed by quiescence


def test_control_dependence_orders_same_thread_commits():
    m, eng = make()
    a = m.heap.alloc(256)
    commit_order = []
    eng.on_commit.append(lambda rid: commit_order.append(rid))

    def worker(env):
        for i in range(5):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()

    m.spawn(worker)
    m.run()
    assert commit_order == sorted(commit_order)
    assert len(commit_order) == 5


def test_data_dependence_across_threads():
    """Fig. 2(ii): a consumer region must not commit before its producer.

    A one-entry WPQ keeps the producer's persist operations outstanding
    long enough for the consumer to read the line while the producer is
    still uncommitted - the exact scenario dependence tracking exists for.
    """
    m, eng = make(wpq_entries=1)
    a = m.heap.alloc(64 * 8)
    lock = m.new_lock()
    commit_order = []
    eng.on_commit.append(lambda rid: commit_order.append(rid))

    def producer(env):
        yield Lock(lock)
        yield Begin()
        for j in range(1, 7):  # extra lines keep the WPQ saturated
            yield Write(a + 64 * j, [j])
        yield Write(a, [41])
        yield End()
        yield Unlock(lock)

    def consumer(env):
        yield Lock(lock)
        yield Begin()
        (x,) = yield Read(a, 1)
        yield Write(a, [x + 1])
        yield End()
        yield Unlock(lock)

    m.spawn(producer)
    m.spawn(consumer)
    m.run()
    assert m.volatile.read_word(a) == 42
    # whichever region consumed must commit after the producer
    producer_rid, consumer_rid = pack_rid(0, 1), pack_rid(1, 1)
    if commit_order.index(consumer_rid) < commit_order.index(producer_rid):
        pytest.fail(f"consumer committed before producer: {commit_order}")
    assert eng.stats.dep_captures >= 1


def test_read_only_region_commits():
    m, eng = make()
    a = m.heap.alloc(64)
    m.bootstrap_write(a, [5])

    def worker(env):
        yield Begin()
        yield Read(a, 1)
        yield End()

    m.spawn(worker)
    m.run()
    assert eng.stats.commits == 1
    assert eng.stats.lpos_initiated == 0


def test_nested_regions_flatten():
    m, eng = make()
    a = m.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield Write(a + 8, [2])
        yield End()

    m.spawn(worker)
    m.run()
    assert eng.stats.regions_begun == 1
    assert eng.stats.commits == 1


def test_first_write_initiates_exactly_one_lpo_per_line():
    m, eng = make()
    a = m.heap.alloc(128)

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield Write(a, [2])  # same line: no second LPO
        yield Write(a + 64, [3])  # new line: second LPO
        yield End()

    m.spawn(worker)
    m.run()
    assert eng.stats.lpos_initiated == 2


def test_cl_list_full_stalls_begin():
    # 1 CL entry/core: the second region cannot begin until the first's
    # DPOs complete and the entry clears.
    m, eng = make(cl_list_entries=1)
    a = m.heap.alloc(256)

    def worker(env):
        for i in range(4):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()

    m.spawn(worker)
    m.run()
    assert eng.stats.commits == 4
    assert eng.cl_lists[0].entry_stalls >= 1


def test_dep_slots_stall_then_resolve():
    # 1 Dep slot: a region depending on two others stalls on the second
    # capture until the first dependency commits.
    m, eng = make(dep_slots=1)
    a = m.heap.alloc(192)
    lock = m.new_lock()

    def writer(env, off):
        yield Lock(lock)
        yield Begin()
        yield Write(a + off, [off])
        yield End()
        yield Unlock(lock)

    def reader(env):
        yield Lock(lock)
        yield Begin()
        yield Read(a, 1)
        yield Read(a + 64, 1)
        yield Write(a + 128, [1])
        yield End()
        yield Unlock(lock)

    m.spawn(lambda env: writer(env, 0), core_id=0)
    m.spawn(lambda env: writer(env, 64), core_id=1)
    m.spawn(reader, core_id=2)
    m.run()
    assert eng.stats.commits == 3


def test_fence_blocks_until_commit():
    m, eng = make()
    a = m.heap.alloc(64)
    t = {}

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        t["after_end"] = eng.stats.commits
        yield Fence()
        t["after_fence"] = eng.stats.commits

    m.spawn(worker)
    m.run()
    assert t["after_end"] == 0
    assert t["after_fence"] == 1
    assert eng.stats.fence_waits == 1


def test_fence_without_regions_is_noop():
    m, eng = make()

    def worker(env):
        yield Fence()

    m.spawn(worker)
    m.run()
    assert eng.stats.fence_waits == 0


def test_stale_owner_lookup_clears_tag():
    m, eng = make()
    a = m.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield Fence()  # region 1 fully committed
        yield Begin()
        yield Read(a, 1)  # owner tag stale: rid 1 already committed
        yield Write(a + 8, [2])
        yield End()

    m.spawn(worker)
    m.run()
    assert eng.stats.stale_owner_lookups >= 1
    assert eng.stats.commits == 2


def test_quiescence_callback():
    m, eng = make()
    a = m.heap.alloc(64)
    seen = []

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        eng.when_quiescent(lambda: seen.append(m.scheduler.now))

    m.spawn(worker)
    m.run()
    assert seen and eng.uncommitted_count() == 0


def test_log_freed_after_commit():
    m, eng = make()
    a = m.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield Fence()

    m.spawn(worker)
    m.run()
    thread = eng.threads[0]
    assert thread.log.live_records == 0

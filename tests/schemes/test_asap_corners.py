"""ASAP engine corner cases: structural limits, spills, overflow, misuse."""

from dataclasses import replace

import pytest

from repro.common.errors import SimulationError
from repro.common.params import CacheParams, SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Fence, Lock, Read, Unlock, Write


def make(**small_kwargs):
    m = Machine(SystemConfig.small(**small_kwargs), make_scheme("asap"))
    return m, m.scheme.engine


def test_log_overflow_grows_mid_run():
    """The Sec. 4.4 overflow exception: a tiny log grows transparently."""
    m, eng = make(initial_log_entries=4)
    a = m.heap.alloc(64 * 64)

    def worker(env):
        for i in range(20):
            yield Begin()
            for j in range(4):
                yield Write(a + 64 * ((4 * i + j) % 64), [i])
            yield End()

    m.spawn(worker)
    m.run()
    thread = eng.threads[0]
    assert thread.log.overflows >= 1
    assert len(thread.log.segments) >= 2
    assert eng.stats.commits == 20


def test_log_overflow_then_crash_recovers():
    def build():
        m = Machine(
            SystemConfig.small(initial_log_entries=4), make_scheme("asap")
        )
        a = m.heap.alloc(64 * 64)

        def worker(env):
            for i in range(20):
                yield Begin()
                for j in range(4):
                    yield Write(a + 64 * ((4 * i + j) % 64), [i * 10 + j])
                yield End()

        m.spawn(worker)
        return m

    total = build().run().cycles
    for frac in (0.4, 0.75):
        m = build()
        state = crash_machine(m, at_cycle=int(total * frac))
        image, _ = recover(state)
        assert verify_recovery(m, image).ok


def test_clptr_slot_exhaustion_stalls_and_resolves():
    m, eng = make(clptr_slots=2)
    a = m.heap.alloc(64 * 16)

    def worker(env):
        yield Begin()
        for j in range(10):  # 10 distinct lines through 2 CLPtr slots
            yield Write(a + 64 * j, [j])
        yield End()

    m.spawn(worker)
    m.run()
    assert eng.cl_lists[0].slot_stalls > 0
    assert eng.stats.commits == 1
    assert m.oracle.mismatches(m.pm_image) == []


def test_dependence_list_exhaustion_stalls_begin():
    # warm lines -> ~40-cycle regions; a small backpressured WPQ makes
    # commits lag far behind, exhausting the 2-entry Dependence Lists
    m, eng = make(dependence_list_entries=2, wpq_entries=4)
    a = m.heap.alloc(64 * 4)
    m.bootstrap_write(a, [0])

    def worker(env):
        for i in range(40):
            yield Begin()
            yield Write(a + 64 * (i % 4), [i])
            yield End()

    m.spawn(worker)
    m.run()
    assert sum(dl.entry_stalls for dl in eng.dep_lists) > 0
    assert eng.stats.commits == 40


def test_lh_wpq_exhaustion_stalls_first_lpo():
    m, eng = make(lh_wpq_entries=1, wpq_entries=4)
    a = m.heap.alloc(64 * 40)

    def worker(env):
        for i in range(30):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()

    m.spawn(worker)
    m.run()
    assert sum(lh.stalls for lh in eng.lh_wpqs) > 0
    assert eng.stats.commits == 30


def test_owner_spill_and_reload_detects_dependence():
    """Sec. 5.3 end-to-end: evict an owned line, reload it from another
    thread, and still capture the data dependence."""
    cfg = SystemConfig.small(num_cores=2, wpq_entries=1)
    cfg = replace(cfg, l3=CacheParams(4 * 1024, 4, 42))
    m = Machine(cfg, make_scheme("asap"))
    eng = m.scheme.engine
    a = m.heap.alloc(64 * 8)
    filler = m.heap.alloc(64 * 2048)
    lock = m.new_lock()

    def owner_thread(env):
        yield Lock(lock)
        yield Begin()
        for j in range(8):
            yield Write(a + 64 * j, [j + 1])
        # churn the tiny LLC so the owned lines get evicted while the
        # region is still uncommitted (WPQ=1 keeps it pending)
        for i in range(1200):
            yield Read(filler + 64 * i, 1)
        yield End()
        yield Unlock(lock)

    def reader_thread(env):
        yield Lock(lock)
        yield Begin()
        (v,) = yield Read(a, 1)
        yield Write(a + 64 * 7, [v])
        yield End()
        yield Unlock(lock)

    m.spawn(owner_thread, core_id=0)
    m.spawn(reader_thread, core_id=1)
    m.run()
    assert eng.spill.spills > 0
    assert eng.spill.hits + eng.spill.false_positives >= 0
    assert eng.stats.commits == 2
    assert m.oracle.mismatches(m.pm_image) == []


def test_writes_outside_regions_are_unlogged():
    m, eng = make()
    a = m.heap.alloc(64)

    def worker(env):
        yield Write(a, [9])  # plain PM store, no region

    m.spawn(worker)
    res = m.run()
    assert eng.stats.lpos_initiated == 0
    assert eng.stats.regions_begun == 0
    assert m.volatile.read_word(a) == 9


def test_fence_waits_for_whole_prior_chain():
    m, eng = make(wpq_entries=1)
    a = m.heap.alloc(64 * 16)
    t = {}

    def worker(env):
        for i in range(6):
            yield Begin()
            yield Write(a + 64 * i, [i])
            yield End()
        yield Fence()
        t["commits_at_fence"] = eng.stats.commits

    m.spawn(worker)
    m.run()
    # the fence waits on region 6, which (via control deps) implies 1..5
    assert t["commits_at_fence"] == 6


def test_unbalanced_end_raises():
    m, eng = make()

    def worker(env):
        yield End()

    m.spawn(worker)
    with pytest.raises(SimulationError):
        m.run()


def test_duplicate_thread_registration_rejected():
    m, eng = make()
    eng.register_thread(77, 0)
    with pytest.raises(SimulationError):
        eng.register_thread(77, 1)


def test_read_only_pm_access_outside_region():
    m, eng = make()
    a = m.heap.alloc(64)
    m.bootstrap_write(a, [5])
    got = {}

    def worker(env):
        got["v"] = (yield Read(a, 1))[0]

    m.spawn(worker)
    m.run()
    assert got["v"] == 5
    assert eng.stats.dep_captures == 0

"""Scheme-specific behaviour of the SW / HWUndo / HWRedo baselines."""

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Read, Write


def run(scheme, body, **small_kwargs):
    m = Machine(SystemConfig.small(**small_kwargs), make_scheme(scheme))
    a = m.heap.alloc(512)
    m.spawn(lambda env: body(m, a))
    res = m.run()
    return m, res, a


def simple_regions(regions=10, lines=2):
    def body(m, a):
        for i in range(regions):
            yield Begin()
            for j in range(lines):
                yield Write(a + 64 * j, [i + j])
            yield End()

    return body


def test_sw_logs_once_per_line_per_region():
    m, res, a = run("sw", simple_regions(regions=5, lines=3))
    # one log write per line per region, fully drained (SW never drops)
    assert res.pm_writes_by_kind["lpo"] == 15


def test_sw_writes_commit_record_per_region():
    m, res, a = run("sw", simple_regions(regions=5))
    assert res.pm_writes_by_kind["loghdr"] == 5


def test_sw_dpo_only_has_no_log_traffic():
    m, res, a = run("sw_dpo_only", simple_regions(regions=5))
    assert res.pm_writes_by_kind["lpo"] == 0
    assert res.pm_writes_by_kind["dpo"] == 10


def test_sw_end_is_synchronous():
    """SW's End waits for the data flush fence: cycles/region must far
    exceed NP's."""
    _, sw, _ = run("sw", simple_regions(regions=20))
    _, np_res, _ = run("np", simple_regions(regions=20))
    assert sw.cycles_per_region > 2 * np_res.cycles_per_region


def test_hwundo_commit_is_synchronous_and_durable():
    m, res, a = run("hwundo", simple_regions(regions=8))
    # synchronous commit: by the time a region's End retires it is durable,
    # so at quiescence everything is committed and in PM
    assert len(m.oracle.committed_rids) == 8
    assert m.pm_image.read_word(a) == 7


def test_hwundo_overlaps_lpos_within_region():
    """HWUndo's writes do not stall (LPOs hardware-initiated); only End
    stalls. A many-line region should cost much less than the sum of
    synchronous per-write log waits (the SW behaviour)."""
    _, undo, _ = run("hwundo", simple_regions(regions=10, lines=6))
    _, sw, _ = run("sw", simple_regions(regions=10, lines=6))
    assert undo.cycles < sw.cycles


def test_hwundo_rewrites_persist_final_values():
    def body(m, a):
        yield Begin()
        yield Write(a, [1])
        yield Write(a, [2])  # rewrite after DPO may be in flight
        yield Write(a + 64, [3])
        yield Write(a, [4])
        yield End()

    m, res, a = run("hwundo", body)
    assert m.pm_image.read_word(a) == 4


def test_hwredo_relogs_rewritten_lines():
    def body(m, a):
        yield Begin()
        yield Write(a, [1])
        yield Write(a, [2])  # rewritten: needs a second (final-value) LPO
        yield End()

    m, res, a = run("hwredo", body)
    assert res.pm_writes_by_kind["lpo"] == 2


def test_hwredo_postcommit_dpos_offloaded():
    """HWRedo's End waits only for LPO drains; its DPOs land later."""
    m, res, a = run("hwredo", simple_regions(regions=5))
    assert len(m.oracle.committed_rids) == 5
    assert m.pm_image.read_word(a) == 4  # final value installed in place


def test_hwredo_dpo_filter_on_hot_lines():
    def body(m, a):
        for i in range(30):
            yield Begin()
            yield Write(a, [i])  # same line every region
            yield End()

    m, res, a = run("hwredo", body)
    assert m.scheme.dpos_filtered > 0
    assert res.pm_writes_by_kind["dpo"] < 30


def test_hwredo_read_redirect_penalty(monkeypatch):
    """Reads of already-logged lines pay the log-redirect indirection:
    the same trace runs measurably slower than with the penalty zeroed."""
    from repro.persist.hwredo import HardwareRedoLogging

    def with_reread(m, a):
        for i in range(20):
            yield Begin()
            yield Write(a, [i])
            # many redirected reads: enough that the indirection cost is
            # not hidden under the region's log-drain wait
            for _ in range(8):
                yield Read(a, 1)
            yield End()

    monkeypatch.setattr(HardwareRedoLogging, "READ_REDIRECT_PENALTY", 0)
    _, plain, _ = run("hwredo", with_reread)
    monkeypatch.setattr(HardwareRedoLogging, "READ_REDIRECT_PENALTY", 12)
    _, redirected, _ = run("hwredo", with_reread)
    assert redirected.cycles > plain.cycles


def test_pm_latency_sensitivity_ordering():
    """The Fig. 10 metric: throughput normalized to NP at the same PM
    latency. ASAP must stay closest to NP as PM slows down."""

    def normalized(scheme, mult):
        _, res, _ = run(scheme, simple_regions(regions=15), pm_latency_multiplier=mult)
        _, np_res, _ = run("np", simple_regions(regions=15), pm_latency_multiplier=mult)
        return res.throughput / np_res.throughput

    for mult in (4, 8):
        asap = normalized("asap", mult)
        undo = normalized("hwundo", mult)
        redo = normalized("hwredo", mult)
        assert asap > undo, (mult, asap, undo)
        assert asap > redo, (mult, asap, redo)

"""Tests for the idealized eADR baseline (Sec. 8 contrast)."""

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Read, Write
from repro.workloads import WorkloadParams, get_workload


def make():
    m = Machine(SystemConfig.small(), make_scheme("eadr"))
    return m, m.heap.alloc(64 * 8)


def test_eadr_matches_np_performance():
    def run(scheme):
        m = Machine(SystemConfig.small(), make_scheme(scheme))
        a = m.heap.alloc(64 * 4)

        def worker(env):
            for i in range(30):
                yield Begin()
                yield Write(a + 64 * (i % 4), [i])
                yield End()

        m.spawn(worker)
        return m.run()

    assert run("eadr").cycles == run("np").cycles


def test_eadr_generates_no_persist_ops():
    m, a = make()

    def worker(env):
        for i in range(10):
            yield Begin()
            yield Write(a + 64 * (i % 8), [i])
            yield End()

    m.spawn(worker)
    res = m.run()
    assert res.pm_writes_by_kind["lpo"] == 0
    assert res.pm_writes_by_kind["dpo"] == 0


def test_eadr_crash_is_durable_and_atomic():
    """The battery flush makes committed regions durable; the in-cache
    undo log rolls back the in-flight one."""
    m, a = make()
    m.bootstrap_write(a, [100])

    def worker(env):
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield Begin()  # this region will be in flight at the crash
        yield Write(a, [2])
        yield Write(a + 64, [3])
        # never ends: crash strikes first

    m.spawn(worker)
    m.run(until=2000)
    state = crash_machine(m)
    # battery flush: committed region 1's write is durable, region 2's
    # writes rolled back from the in-cache log
    assert m.pm_image.read_word(a) == 1
    assert m.pm_image.read_word(a + 64) == 0
    image, _ = recover(state)  # no dependence entries: recovery is a no-op
    assert verify_recovery(m, image).ok


def test_eadr_battery_requirement_quantified():
    m, _ = make()
    cfg = m.config
    expected = cfg.num_cores * (cfg.l1.size_bytes + cfg.l2.size_bytes) + cfg.l3.size_bytes
    assert m.scheme.battery_backed_bytes() == expected


def test_eadr_workload_run():
    params = WorkloadParams(num_threads=3, ops_per_thread=10, setup_items=16)
    m = Machine(SystemConfig.small(), make_scheme("eadr"))
    wl = get_workload("HM", params)
    wl.install(m)
    res = m.run()
    assert res.regions_completed == 30
    assert m.oracle.mismatches(m.volatile) == []

"""Nested-region flattening across every scheme (Sec. 4.2/4.5)."""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Read, Write

SCHEMES = ["np", "sw", "hwundo", "hwredo", "asap", "asap_redo"]


def run_nested(scheme, depth=3):
    m = Machine(SystemConfig.small(), make_scheme(scheme))
    a = m.heap.alloc(64 * depth)

    def worker(env):
        for _ in range(depth):
            yield Begin()
        for j in range(depth):
            yield Write(a + 64 * j, [j + 1])
        for _ in range(depth):
            yield End()

    m.spawn(worker)
    res = m.run()
    return m, res, a


@pytest.mark.parametrize("scheme", SCHEMES)
def test_nested_regions_flatten_to_one(scheme):
    m, res, a = run_nested(scheme)
    assert res.regions_completed == 1
    assert len(m.oracle.committed_rids) == 1


@pytest.mark.parametrize("scheme", SCHEMES)
def test_nested_region_is_atomic_as_a_whole(scheme):
    """All writes of the flattened region belong to one atomic unit."""
    m, res, a = run_nested(scheme)
    rid = next(iter(m.oracle.committed_rids))
    writes = m.oracle.region_write_set(rid)
    assert len(writes) == 3  # one word per depth level


@pytest.mark.parametrize("scheme", ["asap", "asap_redo"])
def test_inner_end_does_not_trigger_commit(scheme):
    m = Machine(SystemConfig.small(), make_scheme(scheme))
    a = m.heap.alloc(128)
    seen = {}
    commits = []
    m.scheme.on_commit.append(commits.append)

    def worker(env):
        yield Begin()
        yield Begin()
        yield Write(a, [1])
        yield End()  # inner end: no commit machinery
        seen["after_inner"] = len(commits)
        yield Write(a + 64, [2])
        yield End()

    m.spawn(worker)
    m.run()
    assert seen["after_inner"] == 0
    assert len(commits) == 1


def test_deeply_nested_regions():
    m, res, a = run_nested("asap", depth=6)
    assert res.regions_completed == 1
    assert m.oracle.mismatches(m.pm_image) == []

"""Directed cross-thread commit-ordering tests under tiny WPQs.

The scenario class behind the ROADMAP bug: thread A commits a value to a
line, thread B read-modify-writes that line, and the WPQ is small enough
that DPO drop/coalesce decisions happen while persist ops sit
backpressured. The committed value must always reach PM - whichever
thread's region commits last, and whatever got dropped, coalesced, or
overtaken on the way.
"""

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.harness.fuzz import FuzzCase, check_no_crash
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, Compute, End, Lock, Read, Unlock, Write

NUM_LINES = 12


def run_rmw_pair(scheme, wpq_entries, filler_lines=4, jitter=0):
    """Thread A fills the WPQ then writes the victim line; thread B RMWs
    the victim. Returns (machine, victim address)."""
    m = Machine(SystemConfig.small(wpq_entries=wpq_entries), make_scheme(scheme))
    base = m.heap.alloc(64 * NUM_LINES)
    victim = base + 64 * 4
    lock = m.new_lock()

    def writer(env):
        # one region per line keeps LPO/DPO traffic flowing while regions
        # commit - the condition for drop/coalesce to fire under pressure
        for i in range(filler_lines):
            yield Lock(lock)
            yield Begin()
            yield Write(base + 64 * i, [0])
            yield End()
            yield Unlock(lock)
        yield Lock(lock)
        yield Begin()
        yield Write(victim, [0])
        yield End()
        yield Unlock(lock)

    def rmw(env):
        if jitter:
            yield Compute(jitter)
        yield Lock(lock)
        yield Begin()
        (v,) = yield Read(victim, 1)
        yield Write(victim, [v ^ 1])
        yield End()
        yield Unlock(lock)

    m.spawn(writer)
    m.spawn(rmw)
    m.run()
    return m, victim


@pytest.mark.parametrize("scheme", ["asap", "asap_redo"])
@pytest.mark.parametrize("wpq_entries", [2, 3, 4])
def test_cross_thread_rmw_commits_survive_tiny_wpq(scheme, wpq_entries):
    m, victim = run_rmw_pair(scheme, wpq_entries)
    assert m.oracle.mismatches(m.pm_image) == []


@pytest.mark.parametrize("scheme", ["asap", "asap_redo"])
@pytest.mark.parametrize("jitter", [0, 17, 60, 240])
def test_cross_thread_rmw_across_interleavings(scheme, jitter):
    # jitter shifts which persist ops are in flight at the RMW - the axis
    # the fuzzer sweeps; a handful of points is pinned here directly
    m, victim = run_rmw_pair(scheme, wpq_entries=3, jitter=jitter)
    assert m.oracle.mismatches(m.pm_image) == []


@pytest.mark.parametrize("wpq_entries", [2, 3, 4])
def test_dpo_drop_of_cross_thread_owned_line_is_safe(wpq_entries):
    # Rewriting the same line in consecutive regions of both threads makes
    # a later region's LPO carry bytes whose queued/pending DPO belongs to
    # the *other* thread's region - the exact DPO-dropping case whose
    # pending-op blindness lost committed values pre-fix.
    case = FuzzCase(
        scheme="asap",
        threads=[
            [[(4, False, 1)], [(4, False, 2)], [(4, True, 3)]],
            [[(4, True, 1)], [(4, False, 5)]],
        ],
        wpq_entries=wpq_entries,
    )
    assert check_no_crash(case) == []


@pytest.mark.parametrize("wpq_entries", [2, 4])
def test_dpo_coalesce_under_cross_thread_dependence(wpq_entries):
    # Repeated writes to one line inside a region arm distance-based DPO
    # coalescing; interleaved with another thread's RMW of the same line
    # the coalesced DPO must still carry the final committed value.
    case = FuzzCase(
        scheme="asap",
        threads=[
            [[(4, False, 1), (0, False, 0), (1, False, 0), (2, False, 0),
              (3, False, 0), (4, False, 7)]],
            [[(4, True, 1)]],
        ],
        wpq_entries=wpq_entries,
    )
    assert check_no_crash(case) == []


def test_redo_commits_respect_dependence_order():
    # The redo pinned schedule, checked across the tiny-WPQ range: commit
    # markers must persist in dependence order so no committed value is
    # shadowed by a dependence-earlier region's replay.
    threads = [
        [[(0, False, 0)], [(0, False, 0)], [(0, False, 0)],
         [(0, False, 1), (1, False, 0), (3, False, 0), (5, False, 0)],
         [(0, False, 0)]],
        [[(2, False, 0), (4, False, 0)]],
    ]
    for wpq_entries in (2, 3, 4):
        case = FuzzCase(scheme="asap_redo", threads=threads,
                        wpq_entries=wpq_entries)
        assert check_no_crash(case) == [], f"wpq_entries={wpq_entries}"


def test_legacy_backpressure_reproduces_the_fixed_bug():
    # Regression tripwire in the other direction: the pre-fix WPQ model
    # (kept behind MemoryParams.wpq_fifo_backpressure=False for shrinker
    # demos) must still lose the committed value on the original schedule.
    # If this starts passing, the legacy flag no longer models the old
    # hazard and the fuzzer's shrinker self-test loses its known failure.
    case = FuzzCase(
        scheme="asap",
        threads=[
            [[(0, False, 0)], [(1, False, 0), (3, False, 0)],
             [(0, False, 0), (1, False, 0), (4, False, 0)]],
            [[(0, False, 0), (2, False, 0)], [(6, False, 0)], [(4, True, 1)]],
        ],
        wpq_entries=4,
        fifo_backpressure=False,
    )
    failures = check_no_crash(case)
    assert failures, "legacy mode no longer reproduces the pre-fix hazard"
    assert "committed values missing" in failures[0]


def test_fifo_flag_reaches_the_wpq():
    config = SystemConfig.small()
    config = dataclasses.replace(
        config, memory=dataclasses.replace(config.memory,
                                           wpq_fifo_backpressure=False))
    m = Machine(config, make_scheme("asap"))
    assert all(not ch.wpq._fifo_backpressure for ch in m.memory.channels)
    m2 = Machine(SystemConfig.small(), make_scheme("asap"))
    assert all(ch.wpq._fifo_backpressure for ch in m2.memory.channels)

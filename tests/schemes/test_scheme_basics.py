"""Behavioural tests shared across all five persistence schemes."""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme, scheme_names
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Fence, Read, Write

SCHEMES = ["np", "sw", "sw_dpo_only", "hwundo", "hwredo", "asap"]


def run_counter(scheme, regions=10, lines=2):
    m = Machine(SystemConfig.small(), make_scheme(scheme))
    a = m.heap.alloc(64 * lines)

    def worker(env):
        for i in range(regions):
            yield Begin()
            for j in range(lines):
                (v,) = yield Read(a + 64 * j, 1)
                yield Write(a + 64 * j, [v + 1])
            yield End()

    m.spawn(worker)
    return m, m.run(), a


@pytest.mark.parametrize("scheme", SCHEMES)
def test_functional_correctness(scheme):
    m, res, a = run_counter(scheme, regions=10, lines=2)
    assert m.volatile.read_word(a) == 10
    assert m.volatile.read_word(a + 64) == 10
    assert res.regions_completed == 10


@pytest.mark.parametrize("scheme", SCHEMES)
def test_all_regions_commit(scheme):
    m, res, a = run_counter(scheme)
    assert len(m.oracle.committed_rids) == 10
    assert m.oracle.uncommitted_rids() == []


@pytest.mark.parametrize("scheme", [s for s in SCHEMES if s not in ("np",)])
def test_committed_data_reaches_pm_eventually(scheme):
    m, res, a = run_counter(scheme)
    # after the event queue drains, all WAL schemes' data is in PM
    assert m.pm_image.read_word(a) == 10, scheme


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        make_scheme("nope")


def test_scheme_names_complete():
    assert set(SCHEMES) <= set(scheme_names())


def test_np_generates_no_persist_traffic():
    m, res, a = run_counter("np")
    assert res.pm_writes_by_kind["lpo"] == 0
    assert res.pm_writes_by_kind["dpo"] == 0


def test_sw_is_slowest_asap_close_to_np():
    results = {s: run_counter(s, regions=30)[1] for s in ("np", "sw", "hwundo", "asap")}
    assert results["sw"].cycles > results["hwundo"].cycles
    assert results["hwundo"].cycles > results["asap"].cycles
    # ASAP close to NP even on this write-dense microbenchmark (the only
    # ASAP overheads left are structural: CL-entry backpressure)
    assert results["asap"].cycles <= results["np"].cycles * 1.6


def test_region_latency_ordering_matches_fig8():
    results = {s: run_counter(s, regions=30)[1] for s in ("np", "sw", "hwundo", "asap")}
    cpr = {s: r.cycles_per_region for s, r in results.items()}
    assert cpr["sw"] > cpr["hwundo"] > cpr["asap"]
    assert cpr["asap"] <= cpr["np"] * 1.6


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fence_after_region_completes(scheme):
    m = Machine(SystemConfig.small(), make_scheme(scheme))
    a = m.heap.alloc(64)
    marks = {}

    def worker(env):
        yield Begin()
        yield Write(a, [7])
        yield End()
        yield Fence()
        marks["after_fence_pm"] = m.pm_image.read_word(a)

    m.spawn(worker)
    m.run()
    if scheme in ("sw", "hwundo", "asap"):
        # undo schemes: after the fence the data itself is durable (in the
        # persistence domain); for asap the WPQ may still hold it, so check
        # committed status instead of the raw image.
        assert len(m.oracle.committed_rids) == 1
    assert "after_fence_pm" in marks

"""Unit tests for address arithmetic and the address map."""

from repro.common.address import (
    AddressSpace,
    line_base,
    line_index,
    line_offset,
    page_base,
    split_words,
    words_of_line,
)


def test_line_base_and_offset():
    assert line_base(0x1000) == 0x1000
    assert line_base(0x103F) == 0x1000
    assert line_base(0x1040) == 0x1040
    assert line_offset(0x103F) == 0x3F
    assert line_offset(0x1040) == 0


def test_line_index_monotone():
    assert line_index(0) == 0
    assert line_index(63) == 0
    assert line_index(64) == 1


def test_page_base():
    assert page_base(0x1FFF) == 0x1000
    assert page_base(0x2000) == 0x2000


def test_words_of_line_yields_eight():
    words = list(words_of_line(0x1008))
    assert len(words) == 8
    assert words[0] == 0x1000
    assert words[-1] == 0x1038


def test_split_words_covers_range():
    assert list(split_words(0x1000, 16)) == [0x1000, 0x1008]
    # partially-overlapping range touches every overlapped word
    assert list(split_words(0x1004, 8)) == [0x1000, 0x1008]
    assert list(split_words(0x1000, 0)) == []


def test_address_space_classification():
    space = AddressSpace()
    assert space.is_dram(0x1000)
    assert not space.is_pm(0x1000)
    assert space.is_pm(space.pm_base)
    assert space.is_pm(space.pm_base + space.pm_size - 1)
    assert not space.is_pm(space.pm_base + space.pm_size)
    assert space.contains(space.pm_base)

"""Unit tests for the cache hierarchy (fills, evictions, hooks, timing)."""

import pytest

from repro.common.params import SystemConfig
from repro.engine import Scheduler
from repro.mem.controller import MemorySystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.image import MemoryImage


def build(num_lines_pm=True):
    cfg = SystemConfig.small(num_cores=2)
    s = Scheduler()
    pm = MemoryImage("pm")
    vol = MemoryImage("vol")
    mem = MemorySystem(cfg, s, pm)
    persistent = set()
    h = CacheHierarchy(cfg, s, mem, vol, lambda a: (a in persistent) or num_lines_pm)
    return cfg, s, vol, pm, mem, h


PM_BASE = 0x1000_0000_0000


def access(h, s, core, addr, is_write):
    """Synchronous wrapper: run until the access completes."""
    out = {}

    def done(meta):
        out["meta"] = meta
        out["time"] = s.now

    start = s.now
    h.access(core, addr, is_write, done)
    s.run()
    return out["meta"], out["time"] - start


def test_miss_then_hit_latencies():
    cfg, s, vol, pm, mem, h = build()
    _, t_miss = access(h, s, 0, PM_BASE, False)
    _, t_hit = access(h, s, 0, PM_BASE, False)
    assert t_miss == mem.timing.memory_read_latency(True)
    assert t_hit == cfg.l1.latency


def test_write_sets_dirty_and_bumps_version():
    _, s, vol, pm, mem, h = build()
    meta, _ = access(h, s, 0, PM_BASE, True)
    assert meta.dirty
    assert meta.version == 1
    meta2, _ = access(h, s, 0, PM_BASE, True)
    assert meta2.version == 2


def test_pbit_set_from_page_table():
    _, s, vol, pm, mem, h = build()
    meta, _ = access(h, s, 0, PM_BASE, False)
    assert meta.pbit


def test_remote_core_hit_costs_llc_latency():
    cfg, s, vol, pm, mem, h = build()
    access(h, s, 0, PM_BASE, False)
    _, t = access(h, s, 1, PM_BASE, False)
    assert t == mem.timing.llc_latency()


def test_llc_eviction_writes_back_dirty_persistent_line():
    cfg, s, vol, pm, mem, h = build()
    vol.write_word(PM_BASE, 99)
    access(h, s, 0, PM_BASE, True)
    # stream enough conflicting lines through the LLC to evict the victim
    llc_lines = cfg.l3.size_bytes // 64
    for i in range(1, 4 * llc_lines):
        access(h, s, 0, PM_BASE + i * 64, False)
    s.run()
    assert pm.read_word(PM_BASE) == 99
    kinds = mem.pm_writes_by_kind()
    assert kinds["wb"] >= 1


def test_evict_hook_sees_meta_and_wb_op():
    cfg, s, vol, pm, mem, h = build()
    seen = []
    h.evict_hook = lambda meta, wb: seen.append((meta.line, wb is not None))
    access(h, s, 0, PM_BASE, True)
    llc_lines = cfg.l3.size_bytes // 64
    for i in range(1, 4 * llc_lines):
        access(h, s, 0, PM_BASE + i * 64, False)
    assert (PM_BASE, True) in seen


def test_reload_hook_reattaches_owner():
    cfg, s, vol, pm, mem, h = build()
    h.reload_hook = lambda line: (555, 30) if line == PM_BASE else (None, 0)
    meta, t = access(h, s, 0, PM_BASE, False)
    assert meta.owner_rid == 555
    assert t == mem.timing.memory_read_latency(True) + 30


def test_inclusive_invalidation_on_llc_eviction():
    cfg, s, vol, pm, mem, h = build()
    access(h, s, 0, PM_BASE, False)
    h.drop_line(PM_BASE)
    assert not h.l1[0].contains(PM_BASE)
    assert not h.llc.contains(PM_BASE)
    assert h.tags.get(PM_BASE) is None


def test_writeback_line_cleans_and_issues_persist():
    cfg, s, vol, pm, mem, h = build()
    vol.write_word(PM_BASE, 5)
    meta, _ = access(h, s, 0, PM_BASE, True)
    op = h.writeback_line(PM_BASE)
    assert op is not None
    assert not meta.dirty
    s.run()
    assert pm.read_word(PM_BASE) == 5
    # clean line: no-op
    assert h.writeback_line(PM_BASE) is None

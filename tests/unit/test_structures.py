"""Unit tests for CL List, Dependence List, LH-WPQ, RIDs, registers."""

import pytest

from repro.common.errors import SimulationError
from repro.core.cl_list import CLList
from repro.core.dependence import DependenceList
from repro.core.lh_wpq import LogHeaderWPQ
from repro.core.log import LogRecord
from repro.core.rid import RID, local_rid_of, pack_rid, previous_rid, thread_id_of, unpack_rid
from repro.core.states import RegionState
from repro.core.thread_state import ThreadStateRegisters
from repro.engine import Scheduler
from repro.mem.image import MemoryImage


# -- RIDs --------------------------------------------------------------------


def test_rid_pack_unpack_roundtrip():
    packed = pack_rid(3, 1000)
    assert unpack_rid(packed) == RID(3, 1000)
    assert thread_id_of(packed) == 3
    assert local_rid_of(packed) == 1000


def test_rid_ordering_within_thread():
    assert pack_rid(1, 5) < pack_rid(1, 6)
    assert previous_rid(pack_rid(1, 6)) == pack_rid(1, 5)
    assert previous_rid(pack_rid(1, 0)) is None


def test_rid_validation():
    with pytest.raises(ValueError):
        pack_rid(-1, 0)
    with pytest.raises(ValueError):
        pack_rid(0, 1 << 33)
    with pytest.raises(ValueError):
        unpack_rid(-5)


def test_rid_str():
    assert str(RID(2, 7)) == "R2.7"


# -- Thread state registers ---------------------------------------------------


def test_thread_state_save_restore():
    regs = ThreadStateRegisters(thread_id=4, log_address=100, log_size=200,
                                cur_local_rid=9, nest_depth=1)
    restored = ThreadStateRegisters.restore(regs.save())
    assert restored == regs


# -- CL List -------------------------------------------------------------------


def test_cl_list_entry_lifecycle():
    s = Scheduler()
    cl = CLList(0, s, entries=2, slots=2)
    e1 = cl.open_entry(11)
    assert e1.state is RegionState.IN_PROGRESS
    cl.open_entry(12)
    assert cl.full
    with pytest.raises(SimulationError):
        cl.open_entry(13)
    cl.remove_entry(11)
    assert not cl.full
    assert cl.entry(11) is None


def test_cl_entry_slot_limits():
    s = Scheduler()
    cl = CLList(0, s, entries=1, slots=2)
    e = cl.open_entry(1)
    e.add_slot(0x100)
    e.add_slot(0x200)
    assert e.slots_full
    with pytest.raises(SimulationError):
        e.add_slot(0x300)
    e.clear_slot(0x100)
    assert not e.slots_full
    assert e.slot_for(0x200) is not None
    assert e.slot_for(0x100) is None


def test_cl_remove_wakes_entry_waiter():
    s = Scheduler()
    cl = CLList(0, s, entries=1, slots=1)
    cl.open_entry(1)
    seen = []
    cl.entry_waiters.park(lambda: seen.append("woken"))
    cl.remove_entry(1)
    s.run()
    assert seen == ["woken"]


def test_duplicate_cl_entry_rejected():
    s = Scheduler()
    cl = CLList(0, s, entries=4, slots=1)
    cl.open_entry(1)
    with pytest.raises(SimulationError):
        cl.open_entry(1)


# -- Dependence List -------------------------------------------------------------


def test_dependence_entry_commit_protocol():
    s = Scheduler()
    dl = DependenceList(0, s, entries=4, dep_slots=2)
    e = dl.open_entry(5)
    e.deps.add(4)
    assert not e.committable
    e.state = RegionState.DONE
    assert not e.committable  # dep outstanding
    ready = dl.clear_dependency(4)
    assert [x.rid for x in ready] == [5]
    assert e.committable


def test_dependence_clear_wakes_dep_waiters():
    s = Scheduler()
    dl = DependenceList(0, s, entries=4, dep_slots=1)
    e = dl.open_entry(5)
    e.deps.add(4)
    seen = []
    dl.dep_waiters.park(lambda: seen.append(1))
    dl.clear_dependency(4)
    s.run()
    assert seen == [1]


def test_dependence_capacity():
    s = Scheduler()
    dl = DependenceList(0, s, entries=1, dep_slots=1)
    dl.open_entry(1)
    assert dl.full
    with pytest.raises(SimulationError):
        dl.open_entry(2)
    dl.remove_entry(1)
    assert dl.empty


def test_dependence_snapshot_format():
    s = Scheduler()
    dl = DependenceList(0, s, entries=4, dep_slots=2)
    e = dl.open_entry(9)
    e.deps.update((3, 7))
    e.state = RegionState.DONE
    (snap,) = dl.snapshot()
    assert snap == {"rid": 9, "state": "Done", "deps": [3, 7]}


# -- LH-WPQ ------------------------------------------------------------------------


def test_lh_wpq_acquire_release_and_stall():
    s = Scheduler()
    lh = LogHeaderWPQ("lh", s, capacity=1)
    r1 = LogRecord(1, 0x1000, 7)
    r2 = LogRecord(2, 0x2000, 7)
    order = []
    lh.acquire(r1, lambda: order.append("r1"))
    lh.acquire(r2, lambda: order.append("r2"))
    s.run()
    assert order == ["r1"]
    assert lh.stalls == 1
    lh.release(0x1000)
    s.run()
    assert order == ["r1", "r2"]


def test_lh_wpq_release_region():
    s = Scheduler()
    lh = LogHeaderWPQ("lh", s, capacity=4)
    for i, addr in enumerate((0x1000, 0x2000, 0x3000)):
        lh.acquire(LogRecord(7 if i < 2 else 8, addr, 7), lambda: None)
    s.run()
    assert lh.release_region(7) == 2
    assert len(lh) == 1


def test_lh_wpq_flush_writes_headers():
    s = Scheduler()
    lh = LogHeaderWPQ("lh", s, capacity=4)
    record = LogRecord(42, 0x1000, 2)
    slot, _ = record.add_entry(0x9000)
    record.confirm(slot)
    lh.acquire(record, lambda: None)
    s.run()
    img = MemoryImage("pm")
    assert lh.flush_to_pm(img) == 1
    assert img.read_word(0x1000) == 42
    assert img.read_word(0x1008) == 0x9000
    assert len(lh) == 0

"""Unit tests for the NUMA channel-latency extension (Sec. 7.3)."""

from dataclasses import replace

from repro.common.params import MemoryParams, SystemConfig
from repro.mem.timing import TimingModel


def numa_config(remote=(1,), mult=4.0):
    cfg = SystemConfig.small()
    return replace(
        cfg,
        memory=replace(
            cfg.memory,
            numa_remote_channels=remote,
            numa_remote_multiplier=mult,
        ),
    )


def test_remote_channels_scale_hop_and_service():
    t = TimingModel(numa_config(remote=(1,), mult=4.0))
    assert t.mc_hop(0) == t.mem.mc_hop_latency
    assert t.mc_hop(1) == 4 * t.mem.mc_hop_latency
    assert t.pm_write_service(1) == 4 * t.pm_write_service(0)


def test_default_has_no_remote_channels():
    t = TimingModel(SystemConfig.small())
    assert t.channel_multiplier(0) == 1.0
    assert t.channel_multiplier(1) == 1.0


def test_numa_composes_with_pm_multiplier():
    cfg = numa_config(remote=(0,), mult=2.0).with_pm_multiplier(4)
    t = TimingModel(cfg)
    base = MemoryParams().pm_write_service
    assert t.pm_write_service(0) == base * 4 * 2
    assert t.pm_write_service(1) == base * 4


def test_remote_persist_takes_longer_end_to_end():
    from repro.engine import Scheduler
    from repro.mem.controller import MemorySystem
    from repro.mem.image import MemoryImage
    from repro.mem.wpq import DPO, PersistOp

    cfg = numa_config(remote=(1,), mult=4.0)
    s = Scheduler()
    mem = MemorySystem(cfg, s, MemoryImage("pm"))
    pm = cfg.address_space.pm_base
    # find one line per channel
    local_line = next(pm + i * 64 for i in range(8) if mem.channel_for_line(pm + i * 64).index == 0)
    remote_line = next(pm + i * 64 for i in range(8) if mem.channel_for_line(pm + i * 64).index == 1)
    times = {}
    s.at(0, lambda: mem.issue_persist(
        PersistOp(DPO, local_line, local_line, {local_line: 1},
                  on_complete=lambda o: times.__setitem__("local", s.now))))
    s.at(0, lambda: mem.issue_persist(
        PersistOp(DPO, remote_line, remote_line, {remote_line: 1},
                  on_complete=lambda o: times.__setitem__("remote", s.now))))
    s.run()
    assert times["remote"] == 4 * times["local"]

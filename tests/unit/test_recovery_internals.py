"""Unit tests for the recovery procedure's internals."""

import pytest

from repro.common.errors import RecoveryError
from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.core.log import encode_slot_word
from repro.mem.image import MemoryImage
from repro.recovery.crash import CrashState
from repro.recovery.recover import _scan_logs, _undo_order, recover, recover_redo
from repro.recovery.recover import RecoveryReport

PM = 0x1000_0000_0000
LOG = 0x1000_1000_0000


def entry(rid, state="Done", deps=()):
    return {"rid": rid, "state": state, "deps": list(deps)}


# -- _undo_order ---------------------------------------------------------------


def test_undo_order_reverses_dependence_chain():
    # 3 depends on 2 depends on 1: undo newest-first
    order = _undo_order([entry(1), entry(2, deps=[1]), entry(3, deps=[2])])
    assert order == [3, 2, 1]


def test_undo_order_handles_forks():
    # both 2 and 3 depend on 1; they must precede 1 in the undo order
    order = _undo_order([entry(1), entry(2, deps=[1]), entry(3, deps=[1])])
    assert order.index(2) < order.index(1)
    assert order.index(3) < order.index(1)


def test_undo_order_ignores_committed_deps():
    # dep on 99 which is not uncommitted (already committed): ignored
    order = _undo_order([entry(5, deps=[99])])
    assert order == [5]


def test_undo_order_detects_cycles():
    with pytest.raises(RecoveryError, match="cycle"):
        _undo_order([entry(1, deps=[2]), entry(2, deps=[1])])


def test_undo_order_independent_regions_any_order():
    order = _undo_order([entry(7), entry(3), entry(5)])
    assert sorted(order) == [3, 5, 7]


# -- _scan_logs ----------------------------------------------------------------


def make_state(pm, log_dir, deps=(), markers=None, ordered=True):
    return CrashState(
        pm_image=pm,
        dependence_entries=list(deps),
        log_directory=log_dir,
        entries_per_record=7,
        marker_directory=markers or {},
        log_kind="redo" if markers else "undo",
        ordered_line_log_persists=ordered,
    )


def write_record(pm, header, rid, entries):
    """Write a record header + entries directly into a PM image.

    Each entry is ``(data_line, values)`` or ``(data_line, values, chained)``.
    """
    pm.write_word(header, rid)
    for i, e in enumerate(entries):
        data_line, values = e[0], e[1]
        chained = e[2] if len(e) > 2 else False
        pm.write_word(
            header + (1 + i) * WORD_BYTES, encode_slot_word(data_line, chained)
        )
        entry_addr = header + (1 + i) * CACHE_LINE_BYTES
        for off, v in enumerate(values):
            pm.write_word(entry_addr + 8 * off, v)


def test_scan_logs_matches_only_uncommitted_rids():
    pm = MemoryImage()
    stride = 8 * 64
    write_record(pm, LOG, 11, [(PM, [1])])
    write_record(pm, LOG + stride, 22, [(PM + 64, [2])])
    state = make_state(pm, {0: [(LOG, 2, stride)]})
    report = RecoveryReport()
    found = _scan_logs(state, {11}, report)
    assert list(found) == [11]
    assert found[11][0][0] == PM
    assert report.records_scanned == 2
    assert report.records_matched == 1


def test_scan_logs_skips_holes():
    """A zero header word (unconfirmed LPO) is skipped, later slots kept."""
    pm = MemoryImage()
    pm.write_word(LOG, 11)
    pm.write_word(LOG + 8, 0)  # slot 0: unconfirmed
    pm.write_word(LOG + 16, PM + 128)  # slot 1: confirmed
    state = make_state(pm, {0: [(LOG, 1, 8 * 64)]})
    found = _scan_logs(state, {11}, RecoveryReport())
    assert found[11] == [(PM + 128, LOG + 2 * 64, False)]


def test_scan_logs_decodes_chain_bit():
    """The CHAIN_BIT rides in the slot word's low bits; the decoded line
    address stays 64-byte aligned."""
    pm = MemoryImage()
    write_record(pm, LOG, 11, [(PM, [1], True), (PM + 64, [2])])
    state = make_state(pm, {0: [(LOG, 1, 8 * 64)]})
    found = _scan_logs(state, {11}, RecoveryReport())
    assert found[11] == [(PM, LOG + 64, True), (PM + 64, LOG + 128, False)]


# -- recover (undo) ---------------------------------------------------------------


def test_recover_restores_full_line_exactly():
    pm = MemoryImage()
    # data line currently holds "new" garbage from an uncommitted region
    pm.write_range(PM, [9, 9, 9, 9, 9, 9, 9, 9])
    # log entry holds the old value: word0=5, rest zero
    write_record(pm, LOG, 11, [(PM, [5, 0, 0, 0, 0, 0, 0, 0])])
    state = make_state(pm, {0: [(LOG, 1, 8 * 64)]}, deps=[entry(11)])
    image, report = recover(state)
    assert image.read_word(PM) == 5
    for off in range(8, 64, 8):
        assert image.read_word(PM + off) == 0
    assert report.undone_rids == [11]
    assert report.restored_lines == 1
    # input image untouched
    assert pm.read_word(PM) == 9


def test_recover_chain_unwinds_to_oldest_value():
    pm = MemoryImage()
    pm.write_word(PM, 300)  # current (from region 13)
    write_record(pm, LOG, 12, [(PM, [100, 0, 0, 0, 0, 0, 0, 0])])  # old=100
    write_record(pm, LOG + 512, 13, [(PM, [200, 0, 0, 0, 0, 0, 0, 0])])  # old=200
    state = make_state(
        pm,
        {0: [(LOG, 2, 512)]},
        deps=[entry(12), entry(13, deps=[12])],
    )
    image, report = recover(state)
    # undo 13 first (restores 200), then 12 (restores 100)
    assert report.undone_rids == [13, 12]
    assert image.read_word(PM) == 100


def test_recover_no_uncommitted_is_identity():
    pm = MemoryImage()
    pm.write_word(PM, 42)
    state = make_state(pm, {})
    image, report = recover(state)
    assert image.read_word(PM) == 42
    assert report.undone_count == 0


# -- defensive chain validation (legacy images) ---------------------------------


def _broken_chain_state(ordered):
    """rid 13 (chained to uncommitted rid 12) has the only durable entry
    for line PM; rid 12's entry for PM was lost at the crash - the broken
    undo chain of docs/RECOVERY.md."""
    pm = MemoryImage()
    pm.write_word(PM, 300)  # current (from region 13)
    write_record(pm, LOG, 12, [])  # header durable, entry for PM lost
    write_record(pm, LOG + 512, 13, [(PM, [200, 0, 0, 0, 0, 0, 0, 0], True)])
    return pm, make_state(
        pm,
        {0: [(LOG, 2, 512)]},
        deps=[entry(12), entry(13, deps=[12])],
        ordered=ordered,
    )


def test_defensive_skips_broken_chain_on_legacy_image():
    pm, state = _broken_chain_state(ordered=False)
    image, report = recover(state)
    # rid 13's "old value" 200 never durably existed: leave PM alone
    assert image.read_word(PM) == 300
    assert report.restored_lines == 0
    assert report.skipped_lines == 1
    assert report.skipped_restores[0]["line"] == PM
    assert report.skipped_restores[0]["rid"] == 13
    assert "CHAIN_BIT" in report.skipped_restores[0]["reason"]


def test_defensive_false_reproduces_raw_corruption():
    pm, state = _broken_chain_state(ordered=False)
    image, report = recover(state, defensive=False)
    assert image.read_word(PM) == 200  # the never-durable value
    assert report.skipped_restores == []


def test_defensive_trusts_ordered_images():
    """Under the fixed scheme "earliest durable writer is chained" happens
    legitimately whenever the predecessor committed (its log is freed at
    commit), so the validation must not fire on ordered images."""
    pm, state = _broken_chain_state(ordered=True)
    image, report = recover(state)
    assert image.read_word(PM) == 200
    assert report.restored_lines == 1
    assert report.skipped_restores == []


def test_defensive_restores_when_chained_predecessor_committed():
    """Chained bit set but every dependency already committed: the logged
    old value is committed data, so the restore is sound even on a
    legacy image."""
    pm = MemoryImage()
    pm.write_word(PM, 300)
    # rid 12 (13's predecessor) committed before the crash: it is not in
    # the dependence list and its log record was freed
    write_record(pm, LOG, 13, [(PM, [200, 0, 0, 0, 0, 0, 0, 0], True)])
    state = make_state(
        pm, {0: [(LOG, 1, 512)]}, deps=[entry(13, deps=[12])], ordered=False
    )
    image, report = recover(state)
    assert image.read_word(PM) == 200
    assert report.skipped_restores == []


def test_defensive_skip_covers_whole_line():
    """A broken chain skips *every* restore of that line, not just the
    earliest writer's - partial unwinding would mix chain generations."""
    pm = MemoryImage()
    pm.write_word(PM, 300)
    write_record(pm, LOG, 12, [])  # entry for PM lost
    write_record(pm, LOG + 512, 13, [(PM, [200, 0, 0, 0, 0, 0, 0, 0], True)])
    write_record(pm, LOG + 1024, 14, [(PM, [250, 0, 0, 0, 0, 0, 0, 0], True)])
    state = make_state(
        pm,
        {0: [(LOG, 3, 512)]},
        deps=[entry(12), entry(13, deps=[12]), entry(14, deps=[13])],
        ordered=False,
    )
    image, report = recover(state)
    assert image.read_word(PM) == 300
    assert report.restored_lines == 0
    assert {d["rid"] for d in report.skipped_restores} == {13, 14}
    assert report.skipped_lines == 1


# -- recover_redo ---------------------------------------------------------------------


MARK = 0x1000_2000_0000


def test_recover_redo_replays_marked_regions_in_order():
    pm = MemoryImage()
    # two committed regions wrote the same line; seq order 1 then 2
    write_record(pm, LOG, 11, [(PM, [111, 0, 0, 0, 0, 0, 0, 0])])
    write_record(pm, LOG + 512, 12, [(PM, [222, 0, 0, 0, 0, 0, 0, 0])])
    pm.write_word(MARK, 12)
    pm.write_word(MARK + 8, 2)
    pm.write_word(MARK + 64, 11)
    pm.write_word(MARK + 64 + 8, 1)
    state = make_state(
        pm,
        {0: [(LOG, 2, 512)]},
        markers={0: [(MARK, 2, 64)]},
    )
    image, report = recover(state)
    assert image.read_word(PM) == 222  # seq 2 replayed last
    assert report.restored_lines == 2


def test_recover_redo_ignores_unmarked_and_dep_listed():
    pm = MemoryImage()
    write_record(pm, LOG, 11, [(PM, [111, 0, 0, 0, 0, 0, 0, 0])])
    # marker exists but region is still in the dependence list: a marker
    # slot left over from an earlier reused rid must not resurrect it
    pm.write_word(MARK, 11)
    pm.write_word(MARK + 8, 7)
    state = make_state(
        pm,
        {0: [(LOG, 1, 512)]},
        deps=[entry(11, state="InProgress")],
        markers={0: [(MARK, 1, 64)]},
    )
    image, report = recover(state)
    assert image.read_word(PM) == 0  # never replayed
    assert report.restored_lines == 0


def test_recover_dispatches_on_log_kind():
    pm = MemoryImage()
    state = make_state(pm, {}, markers={0: [(MARK, 1, 64)]})
    assert state.log_kind == "redo"
    image, report = recover(state)  # must route to recover_redo
    assert report.restored_lines == 0


def test_recovery_cost_model():
    report = RecoveryReport(undone_rids=[1, 2], restored_lines=5, records_scanned=20)
    expected = 20 * RecoveryReport.HEADER_READ_COST + 5 * RecoveryReport.LINE_RESTORE_COST
    assert report.estimated_cycles == expected
    assert RecoveryReport().estimated_cycles == 0

"""Unit tests for the configuration dataclasses (Table 2)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    AsapParams,
    CacheParams,
    CoreParams,
    MemoryParams,
    SystemConfig,
)


def test_default_config_matches_table2():
    cfg = SystemConfig()
    assert cfg.num_cores == 18
    assert cfg.l1.size_bytes == 32 * 1024 and cfg.l1.assoc == 8
    assert cfg.l2.size_bytes == 1024 * 1024 and cfg.l2.assoc == 16
    assert cfg.l3.size_bytes == 8 * 1024 * 1024
    assert cfg.memory.num_controllers == 2
    assert cfg.memory.channels_per_controller == 2
    assert cfg.memory.wpq_entries == 128
    assert cfg.asap.cl_list_entries == 4
    assert cfg.asap.clptr_slots == 8
    assert cfg.asap.dependence_list_entries == 128
    assert cfg.asap.dep_slots == 4
    assert cfg.asap.lh_wpq_entries == 128
    assert cfg.asap.dpo_distance == 4


def test_cache_params_validation():
    with pytest.raises(ConfigError):
        CacheParams(0, 8, 4)
    with pytest.raises(ConfigError):
        CacheParams(1000, 8, 4)  # not divisible into 64B ways


def test_cache_num_sets():
    c = CacheParams(32 * 1024, 8, 4)
    assert c.num_sets == 64


def test_memory_params_validation():
    with pytest.raises(ConfigError):
        MemoryParams(num_controllers=0)
    with pytest.raises(ConfigError):
        MemoryParams(wpq_entries=0)
    with pytest.raises(ConfigError):
        MemoryParams(pm_latency_multiplier=0)


def test_effective_pm_latencies_scale():
    m = MemoryParams(pm_latency_multiplier=4)
    assert m.effective_pm_read_latency == 4 * MemoryParams().pm_read_latency
    assert m.effective_pm_write_service == 4 * MemoryParams().pm_write_service


def test_asap_ablation_flags():
    base = AsapParams()
    no_opt = base.ablation("no_opt")
    assert not (no_opt.lpo_dropping or no_opt.dpo_coalescing or no_opt.dpo_dropping)
    c = base.ablation("+C")
    assert c.dpo_coalescing and not c.lpo_dropping and not c.dpo_dropping
    clp = base.ablation("+C+LP")
    assert clp.dpo_coalescing and clp.lpo_dropping and not clp.dpo_dropping
    full = base.ablation("full")
    assert full.dpo_coalescing and full.lpo_dropping and full.dpo_dropping


def test_asap_ablation_unknown_name():
    with pytest.raises(ConfigError):
        AsapParams().ablation("bogus")


def test_with_pm_multiplier_returns_new_config():
    cfg = SystemConfig()
    fast = cfg.with_pm_multiplier(16)
    assert fast.memory.pm_latency_multiplier == 16
    assert cfg.memory.pm_latency_multiplier == 1.0


def test_small_config_overrides():
    cfg = SystemConfig.small(num_cores=2, wpq_entries=4, lh_wpq_entries=3)
    assert cfg.num_cores == 2
    assert cfg.memory.wpq_entries == 4
    assert cfg.asap.lh_wpq_entries == 3


def test_core_params_validation():
    with pytest.raises(ConfigError):
        CoreParams(base_op_cost=-1)


def test_invalid_asap_geometry():
    with pytest.raises(ConfigError):
        AsapParams(cl_list_entries=0)
    with pytest.raises(ConfigError):
        AsapParams(dpo_distance=0)
    with pytest.raises(ConfigError):
        AsapParams(log_data_entries_per_record=0)

"""Unit tests for the explainable-recovery layer (recovery/explain.py)."""

import json
import os

from repro.harness.fuzz import build_machine, load_corpus_entry
from repro.recovery import crash_machine, explain_recovery, validate_trace, verify_recovery
from repro.recovery.explain import SCHEMA_VERSION, render_narrative

CORPUS = os.path.join(
    os.path.dirname(__file__), "..", "property", "corpus",
    "undo-incomplete-line-chain-wpq1.json",
)


def crash_corpus_case(legacy=False):
    from dataclasses import replace as dc_replace

    case, _meta = load_corpus_entry(CORPUS)
    if legacy:
        case = dc_replace(case, ordered_line_log_persists=False)
    total = build_machine(case).run().cycles
    m = build_machine(case)
    state = crash_machine(m, at_cycle=int(total * case.crash_fracs[0]))
    return m, state


def test_trace_is_schema_valid():
    _m, state = crash_corpus_case()
    _image, _report, trace = explain_recovery(state)
    assert validate_trace(trace) == []
    assert trace["schema_version"] == SCHEMA_VERSION


def test_trace_is_deterministic_and_json_safe():
    _m, state = crash_corpus_case()
    _i1, _r1, trace1 = explain_recovery(state)
    _i2, _r2, trace2 = explain_recovery(state)
    assert json.dumps(trace1, sort_keys=True) == json.dumps(trace2, sort_keys=True)


def test_explain_matches_plain_recovery():
    """The observer must not perturb recovery's result."""
    from repro.recovery import recover

    _m, state = crash_corpus_case(legacy=True)
    plain_image, plain_report = recover(state)
    explained_image, report, trace = explain_recovery(state)
    assert sorted(plain_image.items()) == sorted(explained_image.items())
    assert plain_report.skipped_restores == report.skipped_restores
    assert trace["summary"]["skipped_lines"] == report.skipped_lines


def test_trace_records_skip_decisions_on_legacy_image():
    m, state = crash_corpus_case(legacy=True)
    image, _report, trace = explain_recovery(state)
    assert verify_recovery(m, image).ok
    assert trace["ordered_line_log_persists"] is False
    skips = [d for d in trace["decisions"] if d["action"] == "skip"]
    assert skips and all("CHAIN_BIT" in d["reason"] for d in skips)
    broken = [c for c in trace["chains"] if not c["complete"]]
    assert {c["line"] for c in broken} == {d["line"] for d in skips}


def test_narrative_renders_every_decision():
    _m, state = crash_corpus_case(legacy=True)
    _image, _report, trace = explain_recovery(state)
    text = render_narrative(trace)
    assert "LEGACY" in text
    assert "undo order" in text
    for d in trace["decisions"]:
        assert f"step {d['step']}" in text
    assert "defensively left untouched" in text


def test_validate_trace_flags_malformed_traces():
    assert validate_trace([]) != []
    assert any("missing" in p for p in validate_trace({}))
    _m, state = crash_corpus_case()
    _i, _r, trace = explain_recovery(state)
    trace["decisions"].append({"step": "x"})
    problems = validate_trace(trace)
    assert any("decisions" in p for p in problems)


def test_recover_cli_smoke(tmp_path, capsys):
    from repro.recovery.explain import main

    out = tmp_path / "trace.json"
    rc = main(["--case", CORPUS, "--explain", "--json", str(out)])
    assert rc == 0
    trace = json.loads(out.read_text())
    assert validate_trace(trace) == []
    assert trace["summary"]["consistent"] is True
    printed = capsys.readouterr().out
    assert "crash at cycle" in printed


def test_recover_cli_reports_legacy_corruption(capsys):
    from repro.recovery.explain import main

    rc = main(["--case", CORPUS, "--legacy-line-order", "--no-defensive"])
    assert rc == 1
    assert "INCONSISTENT" in capsys.readouterr().out

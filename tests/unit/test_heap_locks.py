"""Unit tests for the heaps, page table, and simulated locks."""

import pytest

from repro.common.address import AddressSpace
from repro.common.errors import SimulationError
from repro.engine import Scheduler
from repro.runtime.heap import PageTable, PersistentHeap, VolatileHeap
from repro.runtime.locks import SimLock


def test_persistent_alloc_marks_pages():
    pt = PageTable()
    heap = PersistentHeap(AddressSpace(), pt)
    addr = heap.alloc(100)
    assert pt.is_persistent(addr)
    assert pt.is_persistent(addr + 99)
    assert not pt.is_persistent(0x1000)


def test_alloc_line_aligned_by_default():
    heap = PersistentHeap(AddressSpace(), PageTable())
    for size in (1, 63, 64, 65, 200):
        assert heap.alloc(size) % 64 == 0


def test_allocations_never_share_lines():
    heap = PersistentHeap(AddressSpace(), PageTable())
    a = heap.alloc(8)
    b = heap.alloc(8)
    assert (a // 64) != (b // 64)


def test_free_and_reuse():
    heap = VolatileHeap(AddressSpace())
    a = heap.alloc(64)
    heap.free(a)
    b = heap.alloc(64)
    assert b == a  # size-class free list reuses


def test_double_free_rejected():
    heap = VolatileHeap(AddressSpace())
    a = heap.alloc(64)
    heap.free(a)
    with pytest.raises(SimulationError):
        heap.free(a)


def test_volatile_heap_never_returns_zero():
    heap = VolatileHeap(AddressSpace())
    assert heap.alloc(8) != 0


def test_lock_uncontended_acquire_release():
    s = Scheduler()
    lock = SimLock(s, "l")
    order = []
    s.at(0, lambda: lock.acquire(1, lambda: order.append("got")))
    s.run()
    assert order == ["got"]
    assert lock.holder == 1
    s.at(s.now, lambda: lock.release(1, lambda: order.append("rel")))
    s.run()
    assert lock.holder is None


def test_lock_fifo_handoff():
    s = Scheduler()
    lock = SimLock(s)
    order = []
    s.at(0, lambda: lock.acquire(1, lambda: order.append(1)))
    s.at(1, lambda: lock.acquire(2, lambda: order.append(2)))
    s.at(2, lambda: lock.acquire(3, lambda: order.append(3)))
    s.at(100, lambda: lock.release(1, lambda: None))
    s.run()
    assert order == [1, 2]
    assert lock.holder == 2
    assert lock.contended_acquisitions == 2


def test_lock_reacquire_and_bad_release_rejected():
    s = Scheduler()
    lock = SimLock(s)
    s.at(0, lambda: lock.acquire(1, lambda: None))
    s.run()
    with pytest.raises(SimulationError):
        lock.acquire(1, lambda: None)
    with pytest.raises(SimulationError):
        lock.release(2, lambda: None)

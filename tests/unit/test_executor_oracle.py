"""Unit tests for the executor (op dispatch, splitting, accounting) and
the commit oracle."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import SystemConfig
from repro.core.rid import pack_rid
from repro.mem.image import MemoryImage
from repro.persist import make_scheme
from repro.sim.executor import _split_by_line, _split_read_by_line
from repro.sim.machine import Machine
from repro.sim.ops import Begin, Compute, End, Fence, Lock, Read, Unlock, Write
from repro.sim.oracle import CommitOracle


def test_split_by_line_within_one_line():
    chunks = _split_by_line(0x1000, [1, 2, 3])
    assert chunks == [(0x1000, [1, 2, 3])]


def test_split_by_line_across_lines():
    chunks = _split_by_line(0x1000 + 48, [1, 2, 3, 4])
    assert chunks[0] == (0x1030, [1, 2])
    assert chunks[1] == (0x1040, [3, 4])


def test_split_read_by_line():
    chunks = _split_read_by_line(0x1030, 4)
    assert chunks == [(0x1030, 2), (0x1040, 2)]


def make_machine(scheme="np"):
    return Machine(SystemConfig.small(), make_scheme(scheme))


def test_compute_advances_clock():
    m = make_machine()

    def worker(env):
        yield Compute(500)

    m.spawn(worker)
    res = m.run()
    assert res.cycles >= 500


def test_read_returns_written_values_across_lines():
    m = make_machine()
    a = m.heap.alloc(256)
    seen = {}

    def worker(env):
        yield Write(a + 56, [11, 22])  # spans two lines
        seen["vals"] = (yield Read(a + 56, 2))

    m.spawn(worker)
    m.run()
    assert seen["vals"] == [11, 22]


def test_region_accounting():
    m = make_machine()
    a = m.heap.alloc(64)

    def worker(env):
        for _ in range(3):
            yield Begin()
            yield Write(a, [1])
            yield End()

    m.spawn(worker)
    res = m.run()
    assert res.regions_completed == 3
    assert res.cycles_per_region > 0


def test_nested_regions_count_once():
    m = make_machine()
    a = m.heap.alloc(64)

    def worker(env):
        yield Begin()
        yield Begin()
        yield Write(a, [1])
        yield End()
        yield End()

    m.spawn(worker)
    res = m.run()
    assert res.regions_completed == 1


def test_end_without_begin_raises():
    m = make_machine()

    def worker(env):
        yield End()

    m.spawn(worker)
    with pytest.raises(SimulationError):
        m.run()


def test_fence_is_dispatchable_on_all_schemes():
    for scheme in ("np", "sw", "hwundo", "hwredo", "asap"):
        m = make_machine(scheme)
        a = m.heap.alloc(64)

        def worker(env, a=a):
            yield Begin()
            yield Write(a, [1])
            yield End()
            yield Fence()

        m.spawn(worker)
        res = m.run()
        assert res.regions_completed == 1, scheme


def test_oracle_tracks_commit_order():
    oracle = CommitOracle()
    r1, r2 = pack_rid(0, 1), pack_rid(0, 2)
    oracle.record_write(r1, 0x1000, [10])
    oracle.record_write(r2, 0x1000, [20])
    oracle.on_commit(r1)
    assert oracle.committed.read_word(0x1000) == 10
    assert oracle.uncommitted_rids() == [r2]
    oracle.on_commit(r2)
    assert oracle.committed.read_word(0x1000) == 20


def test_oracle_mismatches():
    oracle = CommitOracle()
    r = pack_rid(0, 1)
    oracle.record_write(r, 0x1000, [5])
    oracle.on_commit(r)
    img = MemoryImage()
    diffs = oracle.mismatches(img)
    assert diffs == [(0x1000, 5, 0)]
    img.write_word(0x1000, 5)
    assert oracle.mismatches(img) == []


def test_deadlock_detection():
    m = make_machine()
    lock = m.new_lock()

    def worker(env):
        yield Lock(lock)
        yield Lock(m.new_lock())  # fine
        # never released; second thread will block forever

    def worker2(env):
        yield Lock(lock)

    m.spawn(worker)
    m.spawn(worker2)
    with pytest.raises(SimulationError, match="deadlock"):
        m.run()

"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.common.errors import SimulationError
from repro.engine import Scheduler


def test_events_run_in_time_order():
    s = Scheduler()
    seen = []
    s.at(30, lambda: seen.append(30))
    s.at(10, lambda: seen.append(10))
    s.at(20, lambda: seen.append(20))
    s.run()
    assert seen == [10, 20, 30]
    assert s.now == 30


def test_same_cycle_events_run_fifo():
    s = Scheduler()
    seen = []
    for i in range(5):
        s.at(7, lambda i=i: seen.append(i))
    s.run()
    assert seen == [0, 1, 2, 3, 4]


def test_after_is_relative_to_now():
    s = Scheduler()
    times = []

    def first():
        s.after(5, lambda: times.append(s.now))

    s.at(10, first)
    s.run()
    assert times == [15]


def test_cannot_schedule_in_the_past():
    s = Scheduler()
    s.at(5, lambda: None)
    s.run()
    with pytest.raises(SimulationError):
        s.at(3, lambda: None)


def test_negative_delay_rejected():
    s = Scheduler()
    with pytest.raises(SimulationError):
        s.after(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    s = Scheduler()
    seen = []
    ev = s.at(10, lambda: seen.append("cancelled"))
    s.at(10, lambda: seen.append("kept"))
    ev.cancel()
    s.run()
    assert seen == ["kept"]


def test_run_until_stops_before_later_events():
    s = Scheduler()
    seen = []
    s.at(10, lambda: seen.append(10))
    s.at(20, lambda: seen.append(20))
    executed = s.run(until=15)
    assert seen == [10]
    assert executed == 1
    # clock advances to the until bound when idle
    assert s.now == 15
    s.run()
    assert seen == [10, 20]


def test_events_scheduled_during_run_execute():
    s = Scheduler()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            s.after(1, lambda: chain(n + 1))

    s.at(0, lambda: chain(0))
    s.run()
    assert seen == [0, 1, 2, 3, 4]
    assert s.now == 4


def test_max_events_guard():
    s = Scheduler()

    def forever():
        s.after(1, forever)

    s.at(0, forever)
    with pytest.raises(SimulationError):
        s.run(max_events=100)


def test_peek_time_skips_cancelled():
    s = Scheduler()
    ev = s.at(5, lambda: None)
    s.at(9, lambda: None)
    ev.cancel()
    assert s.peek_time() == 9


def test_len_counts_live_events():
    s = Scheduler()
    ev = s.at(5, lambda: None)
    s.at(6, lambda: None)
    assert len(s) == 2
    ev.cancel()
    assert len(s) == 1

"""Unit tests for the per-thread circular undo log."""

import pytest

from repro.common.errors import LogOverflowError, SimulationError
from repro.core.log import LogRecord, UndoLog

BASE = 0x1000_0000_0000
DATA = 0x2000_0000_0000


def make_log(records=4, entries=7, grow=None):
    return UndoLog(0, BASE, records, entries, grow_fn=grow)


def test_record_stride_and_slot_addresses():
    log = make_log()
    assert log.record_stride == 8 * 64
    slot, addr, record, opened, sealed = log.append(1, DATA)
    assert opened and sealed is None
    assert slot == 0
    assert addr == record.header_addr + 64


def test_record_fills_then_seals():
    log = make_log(entries=2)
    _, _, r1, opened, _ = log.append(1, DATA)
    assert opened
    _, _, r1b, opened, sealed = log.append(1, DATA + 64)
    assert r1b is r1 and not opened and sealed is None
    assert r1.full
    _, _, r2, opened, sealed = log.append(1, DATA + 128)
    assert opened and sealed is r1 and r1.sealed
    assert r2 is not r1


def test_free_returns_slots_for_reuse():
    log = make_log(records=2, entries=1)
    log.append(1, DATA)
    log.append(1, DATA + 64)
    assert log.free_records == 0
    records = log.free(1)
    assert len(records) == 2
    assert log.free_records == 2
    # reuse works
    log.append(2, DATA)
    assert log.live_records == 1


def test_overflow_without_grow_raises():
    log = make_log(records=1, entries=1)
    log.append(1, DATA)
    with pytest.raises(LogOverflowError):
        log.append(1, DATA + 64)
    assert log.overflows == 1


def test_overflow_grows_via_handler():
    allocations = []

    def grow(nbytes):
        allocations.append(nbytes)
        return BASE + 0x10_0000

    log = make_log(records=1, entries=1, grow=grow)
    log.append(1, DATA)
    log.append(1, DATA + 64)  # triggers growth
    assert allocations
    assert log.capacity_records == 2
    assert len(log.segments) == 2


def test_header_payload_confirmed_only():
    log = make_log()
    slot0, _, record, _, _ = log.append(1, DATA)
    slot1, _, _, _, _ = log.append(1, DATA + 64)
    record.confirm(slot1)
    payload = record.header_payload()
    assert payload[record.header_addr] == 1  # rid
    assert payload[record.header_word_addr(slot0)] == 0  # unconfirmed
    assert payload[record.header_word_addr(slot1)] == DATA + 64
    # every slot word is explicit (scrubs stale reused slots)
    assert len(payload) == 1 + log.entries_per_record


def test_records_of_and_open_record():
    log = make_log(entries=1)
    log.append(1, DATA)
    log.append(1, DATA + 64)
    assert len(log.records_of(1)) == 2
    assert log.open_record(1) is log.records_of(1)[-1]
    assert log.open_record(99) is None


def test_all_slot_addrs_cover_segments():
    log = make_log(records=3)
    addrs = list(log.all_slot_addrs())
    assert len(addrs) == 3
    assert addrs[1] - addrs[0] == log.record_stride


def test_entries_per_record_bounds():
    with pytest.raises(SimulationError):
        UndoLog(0, BASE, 4, entries_per_record=8)
    with pytest.raises(SimulationError):
        UndoLog(0, BASE, 4, entries_per_record=0)


def test_append_to_full_record_rejected_directly():
    record = LogRecord(1, BASE, 1)
    record.add_entry(DATA)
    with pytest.raises(SimulationError):
        record.add_entry(DATA + 64)

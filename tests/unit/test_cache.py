"""Unit tests for the set-associative cache array."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import CacheParams
from repro.mem.cache import CacheArray


def small_cache(assoc=2, sets=4, locked=None):
    params = CacheParams(size_bytes=assoc * sets * 64, assoc=assoc, latency=4)
    return CacheArray("t", params, locked)


def line(i, sets=4):
    """i-th line mapping to set i % sets."""
    return i * 64


def test_miss_then_hit():
    c = small_cache()
    assert not c.lookup(line(0))
    c.insert(line(0))
    assert c.lookup(line(0))
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction_order():
    c = small_cache(assoc=2, sets=1)
    a, b, d = 0, 64, 128  # all map to the single set
    c.insert(a)
    c.insert(b)
    c.lookup(a)  # a becomes MRU
    victim = c.insert(d)
    assert victim == b


def test_insert_existing_refreshes_without_eviction():
    c = small_cache(assoc=2, sets=1)
    c.insert(0)
    c.insert(64)
    assert c.insert(0) is None  # refresh
    assert c.insert(128) == 64  # 0 was refreshed, so 64 is LRU


def test_locked_lines_skipped_as_victims():
    locked = set()
    c = small_cache(assoc=2, sets=1, locked=lambda l: l in locked)
    c.insert(0)
    c.insert(64)
    locked.add(0)  # 0 is LRU but locked
    victim = c.insert(128)
    assert victim == 64


def test_all_ways_locked_raises():
    locked = {0, 64}
    c = small_cache(assoc=2, sets=1, locked=lambda l: l in locked)
    c.insert(0)
    c.insert(64)
    with pytest.raises(SimulationError):
        c.insert(128)


def test_invalidate():
    c = small_cache()
    c.insert(0)
    assert c.invalidate(0)
    assert not c.invalidate(0)
    assert not c.contains(0)


def test_occupancy_and_lines():
    c = small_cache()
    for i in range(3):
        c.insert(line(i))
    assert c.occupancy() == 3
    assert sorted(c.lines()) == [0, 64, 128]


def test_sets_are_independent():
    c = small_cache(assoc=1, sets=4)
    # lines 0..3 map to distinct sets: no evictions
    for i in range(4):
        assert c.insert(i * 64) is None
    # line 4 maps to set 0: evicts line 0
    assert c.insert(4 * 64) == 0

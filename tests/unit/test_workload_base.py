"""Unit tests for the workload framework and experiment containers."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.experiment import ExperimentResult, geomean
from repro.workloads import WorkloadParams, get_workload, workload_names
from repro.workloads.base import Workload


def test_params_validation():
    with pytest.raises(ConfigError):
        WorkloadParams(num_threads=0)
    with pytest.raises(ConfigError):
        WorkloadParams(value_bytes=0)
    with pytest.raises(ConfigError):
        WorkloadParams(value_bytes=12)  # not a multiple of 8


def test_value_words():
    assert WorkloadParams(value_bytes=64).value_words == 8
    assert WorkloadParams(value_bytes=2048).value_words == 256


def test_derive_value_deterministic_and_distinct():
    v1 = Workload.derive_value(1, 100, 5)
    assert v1 == Workload.derive_value(1, 100, 5)
    assert v1 != Workload.derive_value(1, 100, 6)
    assert v1 != Workload.derive_value(2, 100, 5)
    assert v1 != Workload.derive_value(1, 101, 5)


def test_payload_words_length_and_content():
    wl = get_workload("SS", WorkloadParams(value_bytes=128))
    words = wl.payload_words(1000)
    assert len(words) == 16
    assert words[0] == 1000
    assert words[15] == 1015


def test_workload_names_paper_order():
    assert workload_names()[:3] == ["BN", "BT", "CT"]
    assert len(workload_names()) == 9


def test_get_workload_unknown():
    with pytest.raises(ConfigError):
        get_workload("ZZ")


def test_default_validate_image_is_empty():
    class Blank(Workload):
        name = "_blank"

        def install(self, machine):
            pass

    assert Blank(WorkloadParams()).validate_image(None) == []


# -- experiment containers ------------------------------------------------------


def test_experiment_geomean_row():
    r = ExperimentResult("X", "t", columns=["a"])
    r.add_row("w1", a=2.0)
    r.add_row("w2", a=8.0)
    gm = r.geomean_row()
    assert gm["a"] == pytest.approx(4.0)
    assert "GeoMean" in r.rows


def test_experiment_to_dict_roundtrips_to_json():
    import json

    r = ExperimentResult("X", "t", columns=["a"], paper={"row": {"a": 1.5}})
    r.add_row("w", a=2.0)
    blob = json.dumps(r.to_dict())
    parsed = json.loads(blob)
    assert parsed["rows"]["w"]["a"] == 2.0
    assert parsed["paper"]["row"]["a"] == 1.5


def test_experiment_to_csv_shape():
    r = ExperimentResult("X", "t", columns=["a", "b"])
    r.add_row("w", a=1.0, b=2.0)
    lines = r.to_csv().strip().splitlines()
    assert lines[0] == "label,a,b"
    assert lines[1] == "w,1,2"


def test_geomean_edge_cases():
    assert geomean([]) == 0.0
    assert geomean([0.0, 0.0]) == 0.0
    assert geomean([5.0]) == pytest.approx(5.0)

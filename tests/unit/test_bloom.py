"""Unit tests for the Bloom filter and OwnerRID spill buffer (Sec. 5.3)."""

from repro.core.bloom import BloomFilter, OwnerSpillBuffer


def test_bloom_no_false_negatives():
    bf = BloomFilter(1024, 4)
    lines = [i * 64 for i in range(100)]
    for line in lines:
        bf.insert(line)
    assert all(bf.maybe_contains(line) for line in lines)


def test_bloom_clear():
    bf = BloomFilter(1024, 4)
    bf.insert(640)
    bf.clear()
    assert not bf.maybe_contains(640)
    assert bf.clears == 1


def test_bloom_mostly_rejects_absent_lines():
    bf = BloomFilter(8 * 1024, 4)
    for i in range(50):
        bf.insert(i * 64)
    false_hits = sum(bf.maybe_contains((1000 + i) * 64) for i in range(500))
    assert false_hits < 50  # well under 10%


def test_spill_lookup_roundtrip():
    buf = OwnerSpillBuffer(2, 1024, 4)
    buf.spill(640, 77)
    owner, latency = buf.lookup(640)
    assert owner == 77
    assert latency == OwnerSpillBuffer.LOOKUP_PENALTY
    assert buf.hits == 1


def test_lookup_miss_is_free_when_filter_rejects():
    buf = OwnerSpillBuffer(2, 8 * 1024, 4)
    owner, latency = buf.lookup(12800)
    assert owner is None
    assert latency == 0


def test_discard_removes_entry():
    buf = OwnerSpillBuffer(1, 1024, 4)
    buf.spill(640, 5)
    buf.discard(640)
    owner, _ = buf.lookup(640)
    assert owner is None
    assert buf.false_positives >= 1  # filter still says maybe


def test_clear_channel_garbage_collects():
    buf = OwnerSpillBuffer(2, 1024, 4)
    # channel = (line >> 6) % 2
    buf.spill(0 * 64, 1)   # channel 0
    buf.spill(1 * 64, 2)   # channel 1
    buf.clear_channel(0)
    assert buf.lookup(0)[0] is None
    assert buf.lookup(64)[0] == 2
    assert buf.saved_count == 1

"""Unit tests for the tag store, op dataclasses, and error types."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    ConfigError,
    DeadlockError,
    LogOverflowError,
    RecoveryError,
    ReproError,
    SimulationError,
)
from repro.common.params import SystemConfig
from repro.mem.tagstore import LineMeta, TagStore
from repro.persist import make_scheme
from repro.sim import ops
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload, workload_names


# -- tag store ---------------------------------------------------------------


def test_ensure_creates_once():
    tags = TagStore()
    a = tags.ensure(0x1000, pbit=True)
    b = tags.ensure(0x1000, pbit=False)  # second call ignores pbit arg
    assert a is b
    assert a.pbit is True
    assert len(tags) == 1


def test_drop_returns_meta():
    tags = TagStore()
    tags.ensure(0x1000, True)
    meta = tags.drop(0x1000)
    assert meta is not None and meta.line == 0x1000
    assert tags.drop(0x1000) is None
    assert tags.get(0x1000) is None


def test_lock_bit_is_counted():
    meta = LineMeta(line=0x1000)
    assert not meta.lock_bit
    meta.lock_count += 1
    meta.lock_count += 1
    assert meta.lock_bit
    meta.lock_count -= 1
    assert meta.lock_bit  # still one LPO outstanding
    meta.lock_count -= 1
    assert not meta.lock_bit


def test_locked_and_owned_iterators():
    tags = TagStore()
    a = tags.ensure(0x1000, True)
    b = tags.ensure(0x2000, True)
    a.lock_count = 1
    b.owner_rid = 7
    assert [m.line for m in tags.locked_lines()] == [0x1000]
    assert [m.line for m in tags.owned_by(7)] == [0x2000]


# -- index <-> metadata consistency -------------------------------------------


def assert_indexes_match_metadata(tags: TagStore) -> None:
    """The locked/owner indexes must agree with a full metadata scan."""
    scan_locked = sorted(m.line for m in tags._meta.values() if m.lock_bit)
    assert [m.line for m in tags.locked_lines()] == scan_locked
    scan_owners = {}
    for m in tags._meta.values():
        if m.owner_rid is not None:
            scan_owners.setdefault(m.owner_rid, []).append(m.line)
    assert {rid: sorted(lines) for rid, lines in scan_owners.items()} == {
        rid: [m.line for m in tags.owned_by(rid)] for rid in tags._owners
    }
    for rid, lines in tags._owners.items():
        for line, meta in lines.items():
            assert tags._meta.get(line) is meta and meta.owner_rid == rid


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(["ensure", "lock", "unlock", "own", "disown", "drop"]),
            st.integers(0, 7),  # line selector
            st.integers(0, 3),  # rid selector
        ),
        max_size=80,
    )
)
def test_index_consistency_under_random_ops(steps):
    tags = TagStore()
    for op, line_sel, rid_sel in steps:
        line = 0x1000 + line_sel * 64
        meta = tags.get(line)
        if op == "ensure" or meta is None:
            meta = tags.ensure(line, pbit=bool(line_sel % 2))
        if op == "lock":
            meta.lock_count += 1
        elif op == "unlock" and meta.lock_count > 0:
            meta.lock_count -= 1
        elif op == "own":
            meta.owner_rid = rid_sel  # ownership hand-off
        elif op == "disown":
            meta.owner_rid = None
        elif op == "drop":
            tags.drop(line)
        assert_indexes_match_metadata(tags)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(workload_names()),
    scheme=st.sampled_from(["asap", "asap_redo", "hwundo"]),
    seed=st.integers(0, 20),
)
def test_index_consistency_under_workloads(workload, scheme, seed):
    """Indexes stay consistent throughout real simulations, not just at rest."""
    params = WorkloadParams(num_threads=2, ops_per_thread=8, setup_items=12, seed=seed)
    machine = Machine(SystemConfig.small(), make_scheme(scheme))
    get_workload(workload, params).install(machine)
    for executor in machine.executors:
        executor.start()
    events = 0
    while machine.scheduler.step():
        events += 1
        if events % 64 == 0:
            assert_indexes_match_metadata(machine.hierarchy.tags)
    assert_indexes_match_metadata(machine.hierarchy.tags)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    workload=st.sampled_from(workload_names()),
    scheme=st.sampled_from(["asap", "asap_redo", "hwundo"]),
    seed=st.integers(0, 20),
    mshrs=st.sampled_from([0, 1, 2, 16]),
)
def test_cache_accounting_under_workloads(workload, scheme, seed, mshrs):
    """Per-level hit/miss counters stay closed under merged secondary misses.

    Every logical access probes exactly one L1; each L1 miss probes that
    core's L2; each L2 miss probes the shared LLC - once, whether the LLC
    miss turns into a primary fetch, merges into an in-flight one, or
    parks on MSHR exhaustion. ``llc_misses`` (fetches actually sent to
    memory) plus ``mshr_merges`` can only fall short of ``llc.misses``
    when a parked access later finds its line resident (a late hit).
    """
    from dataclasses import replace as dc_replace

    params = WorkloadParams(num_threads=2, ops_per_thread=8, setup_items=12, seed=seed)
    config = SystemConfig.small()
    config = dc_replace(config, memory=dc_replace(config.memory, mshrs_per_cache=mshrs))
    machine = Machine(config, make_scheme(scheme))
    get_workload(workload, params).install(machine)
    machine.run()
    h = machine.hierarchy
    l1_probes = sum(c.hits + c.misses for c in h.l1)
    l2_probes = sum(c.hits + c.misses for c in h.l2)
    assert l1_probes == h.accesses
    assert l2_probes == sum(c.misses for c in h.l1)
    assert h.llc.hits + h.llc.misses == sum(c.misses for c in h.l2)
    assert h.llc_misses + h.mshr_merges <= h.llc.misses
    if mshrs == 0:
        assert h.mshr_merges == 0
        assert h.llc_misses == h.llc.misses


# -- error hierarchy ------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    for exc in (ConfigError, SimulationError, RecoveryError, LogOverflowError):
        assert issubclass(exc, ReproError)
    assert issubclass(DeadlockError, SimulationError)


def test_log_overflow_carries_context():
    err = LogOverflowError(thread_id=3, capacity_entries=128)
    assert err.thread_id == 3
    assert err.capacity_entries == 128
    assert "thread 3" in str(err)


# -- op dataclasses ------------------------------------------------------------------


def test_ops_are_frozen():
    op = ops.Read(0x1000, 2)
    with pytest.raises(Exception):
        op.addr = 5


def test_write_holds_values():
    op = ops.Write(0x1000, [1, 2, 3])
    assert list(op.values) == [1, 2, 3]


def test_read_default_single_word():
    assert ops.Read(0x1000).nwords == 1


def test_migrate_target():
    assert ops.Migrate(3).core_id == 3

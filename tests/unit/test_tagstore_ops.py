"""Unit tests for the tag store, op dataclasses, and error types."""

import pytest

from repro.common.errors import (
    ConfigError,
    DeadlockError,
    LogOverflowError,
    RecoveryError,
    ReproError,
    SimulationError,
)
from repro.mem.tagstore import LineMeta, TagStore
from repro.sim import ops


# -- tag store ---------------------------------------------------------------


def test_ensure_creates_once():
    tags = TagStore()
    a = tags.ensure(0x1000, pbit=True)
    b = tags.ensure(0x1000, pbit=False)  # second call ignores pbit arg
    assert a is b
    assert a.pbit is True
    assert len(tags) == 1


def test_drop_returns_meta():
    tags = TagStore()
    tags.ensure(0x1000, True)
    meta = tags.drop(0x1000)
    assert meta is not None and meta.line == 0x1000
    assert tags.drop(0x1000) is None
    assert tags.get(0x1000) is None


def test_lock_bit_is_counted():
    meta = LineMeta(line=0x1000)
    assert not meta.lock_bit
    meta.lock_count += 1
    meta.lock_count += 1
    assert meta.lock_bit
    meta.lock_count -= 1
    assert meta.lock_bit  # still one LPO outstanding
    meta.lock_count -= 1
    assert not meta.lock_bit


def test_locked_and_owned_iterators():
    tags = TagStore()
    a = tags.ensure(0x1000, True)
    b = tags.ensure(0x2000, True)
    a.lock_count = 1
    b.owner_rid = 7
    assert [m.line for m in tags.locked_lines()] == [0x1000]
    assert [m.line for m in tags.owned_by(7)] == [0x2000]


# -- error hierarchy ------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    for exc in (ConfigError, SimulationError, RecoveryError, LogOverflowError):
        assert issubclass(exc, ReproError)
    assert issubclass(DeadlockError, SimulationError)


def test_log_overflow_carries_context():
    err = LogOverflowError(thread_id=3, capacity_entries=128)
    assert err.thread_id == 3
    assert err.capacity_entries == 128
    assert "thread 3" in str(err)


# -- op dataclasses ------------------------------------------------------------------


def test_ops_are_frozen():
    op = ops.Read(0x1000, 2)
    with pytest.raises(Exception):
        op.addr = 5


def test_write_holds_values():
    op = ops.Write(0x1000, [1, 2, 3])
    assert list(op.values) == [1, 2, 3]


def test_read_default_single_word():
    assert ops.Read(0x1000).nwords == 1


def test_migrate_target():
    assert ops.Migrate(3).core_id == 3

"""Unit tests for RunResult metrics, the harness runner, and scheme base."""

import pytest

from repro.harness.runner import default_config, default_params, run_once
from repro.persist.base import PersistenceScheme, SchemeThread
from repro.sim.stats import RunResult


def make_result(**overrides):
    base = dict(
        scheme="x",
        cycles=1_000_000,
        drain_cycles=1_100_000,
        regions_completed=500,
        region_cycles_total=100_000,
        ops_executed=5000,
        pm_writes=100,
        pm_writes_by_kind={"lpo": 40, "dpo": 50, "wb": 5, "loghdr": 5},
        pm_reads=10,
        dram_writes=3,
        llc_misses=7,
        cache_accesses=1000,
        mshr_merges=2,
        wpq_peak_occupancy=12,
    )
    base.update(overrides)
    return RunResult(**base)


def test_throughput_regions_per_mcycle():
    r = make_result()
    assert r.throughput == pytest.approx(500.0)


def test_cycles_per_region():
    r = make_result()
    assert r.cycles_per_region == pytest.approx(200.0)


def test_zero_guards():
    r = make_result(cycles=0, regions_completed=0, region_cycles_total=0)
    assert r.throughput == 0.0
    assert r.cycles_per_region == 0.0


def test_speedup_and_traffic_ratio():
    fast = make_result(cycles=500_000)
    slow = make_result()
    assert fast.speedup_over(slow) == pytest.approx(2.0)
    heavy = make_result(pm_writes=300)
    assert heavy.traffic_ratio_over(slow) == pytest.approx(3.0)


def test_traffic_ratio_zero_baseline():
    r = make_result(pm_writes=5)
    zero = make_result(pm_writes=0)
    assert r.traffic_ratio_over(zero) == float("inf")
    none = make_result(pm_writes=0)
    assert none.traffic_ratio_over(zero) == 1.0


def test_run_once_end_to_end():
    res = run_once("HM", "np", default_config(True), default_params(True))
    assert res.scheme == "np"
    assert res.regions_completed > 0
    assert res.drain_cycles >= res.cycles


def test_default_config_quick_vs_full():
    quick = default_config(True)
    full = default_config(False)
    assert quick.num_cores < full.num_cores
    assert full.memory.wpq_entries == 128
    mult = default_config(True, pm_latency_multiplier=4)
    assert mult.memory.pm_latency_multiplier == 4


def test_default_config_asap_overrides():
    cfg = default_config(True, lh_wpq_entries=3)
    assert cfg.asap.lh_wpq_entries == 3
    cfg_full = default_config(False, lh_wpq_entries=16)
    assert cfg_full.asap.lh_wpq_entries == 16


def test_default_params_sizes():
    assert default_params(True, value_bytes=2048).value_bytes == 2048
    assert default_params(False).ops_per_thread > default_params(True).ops_per_thread


def test_scheme_base_defaults():
    class Dummy(PersistenceScheme):
        name = "dummy"

        def register_thread(self, thread_id, core_id):
            return SchemeThread(thread_id, core_id)

        def begin(self, thread, done):
            done()

        def end(self, thread, done):
            done()

        def write(self, thread, addr, values, done):
            done()

        def read(self, thread, addr, nwords, done):
            done([0] * nwords)

    scheme = Dummy()
    calls = []
    thread = scheme.register_thread(0, 0)
    scheme.fence(thread, lambda: calls.append("fence"))
    scheme.migrate(thread, 3, lambda: calls.append("migrate"))
    scheme.when_quiescent(lambda: calls.append("quiescent"))
    scheme.crash_flush()  # default no-op
    assert calls == ["fence", "migrate", "quiescent"]
    assert thread.core_id == 3
    seen = []
    scheme.on_commit.append(seen.append)
    scheme._notify_commit(42)
    assert seen == [42]


def test_stall_breakdown_reported_for_asap():
    res = run_once("HM", "asap", default_config(True), default_params(True))
    assert set(res.stall_breakdown) >= {
        "locked_set", "cl_entry", "cl_slot", "dep_entry", "dep_slot", "lh_wpq"
    }
    assert all(v >= 0 for v in res.stall_breakdown.values())


def test_stall_breakdown_minimal_for_baselines():
    # Baselines have no ASAP structures; only the hierarchy's own
    # structural stalls (locked sets, MSHR exhaustion) are reported.
    res = run_once("HM", "np", default_config(True), default_params(True))
    assert set(res.stall_breakdown) == {"locked_set", "mshr"}

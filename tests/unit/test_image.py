"""Unit tests for the functional memory images."""

import pytest

from repro.common.errors import SimulationError
from repro.mem.image import MemoryImage, snapshot_line

BASE = 0x1000_0000_0000


def test_unwritten_words_read_zero():
    img = MemoryImage()
    assert img.read_word(BASE) == 0


def test_write_read_roundtrip():
    img = MemoryImage()
    img.write_word(BASE, 1234)
    assert img.read_word(BASE) == 1234


def test_unaligned_access_rejected():
    img = MemoryImage()
    with pytest.raises(SimulationError):
        img.read_word(BASE + 3)
    with pytest.raises(SimulationError):
        img.write_word(BASE + 4, 1)  # 4 is not 8-aligned


def test_write_range_consecutive_words():
    img = MemoryImage()
    img.write_range(BASE, [1, 2, 3])
    assert img.read_range(BASE, 24) == (1, 2, 3)


def test_read_line_snapshot_only_materialised():
    img = MemoryImage()
    img.write_word(BASE, 7)
    img.write_word(BASE + 56, 9)
    snap = img.read_line(BASE + 8)  # any addr in the line
    assert snap == {BASE: 7, BASE + 56: 9}


def test_snapshot_line_helper_matches_read_line():
    img = MemoryImage()
    img.write_word(BASE + 16, 5)
    assert snapshot_line(img, BASE + 63) == img.read_line(BASE)


def test_apply_payload():
    img = MemoryImage()
    img.apply({BASE: 1, BASE + 8: 2})
    assert img.read_word(BASE + 8) == 2


def test_apply_line_exact_clears_unmentioned_words():
    img = MemoryImage()
    img.write_range(BASE, [1, 2, 3, 4, 5, 6, 7, 8])
    img.apply_line_exact(BASE, {BASE: 42})
    assert img.read_word(BASE) == 42
    for off in range(8, 64, 8):
        assert img.read_word(BASE + off) == 0


def test_copy_is_independent():
    img = MemoryImage()
    img.write_word(BASE, 1)
    dup = img.copy()
    dup.write_word(BASE, 2)
    assert img.read_word(BASE) == 1
    assert dup.read_word(BASE) == 2


def test_equal_on():
    a, b = MemoryImage(), MemoryImage()
    a.write_word(BASE, 3)
    b.write_word(BASE, 3)
    assert a.equal_on(b, [BASE])
    b.write_word(BASE + 8, 9)
    assert not a.equal_on(b, [BASE, BASE + 8])

"""Unit tests for the area model (Sec. 6.2) and the timing model."""

from repro.area import estimate_area
from repro.common.params import SystemConfig
from repro.mem.timing import TimingModel


def test_area_overhead_under_three_percent():
    report = estimate_area(SystemConfig())
    assert 0 < report.total_overhead < 0.03  # the paper's headline "<3%"
    assert report.core_overhead < report.uncore_overhead  # 0.8% vs 1.7%


def test_cl_list_bytes_match_paper():
    # "The CL List in each core has 4 entries, and its size is 49B"
    report = estimate_area(SystemConfig())
    per_core = report.core_structures["CL List"] / SystemConfig().num_cores
    assert abs(per_core - 49) < 1


def test_lh_wpq_bytes_match_paper():
    # "The LH-WPQ has 70B/entry", 128 entries/channel, 4 channels
    report = estimate_area(SystemConfig())
    assert report.uncore_structures["LH-WPQ"] == 70 * 128 * 4


def test_bloom_filter_bytes():
    report = estimate_area(SystemConfig())
    assert report.uncore_structures["Bloom filter"] == 1024 * 4


def test_area_scales_with_structures():
    small = estimate_area(SystemConfig.small())
    big = estimate_area(SystemConfig())
    assert small.uncore_added_bytes < big.uncore_added_bytes


def test_timing_read_path_accumulates():
    t = TimingModel(SystemConfig())
    assert t.l1_latency() == 4
    assert t.l2_latency() == 4 + 14
    assert t.llc_latency() == 4 + 14 + 42
    assert t.memory_read_latency(is_pm=False) == t.llc_latency() + 150


def test_timing_pm_multiplier():
    cfg = SystemConfig().with_pm_multiplier(4)
    t = TimingModel(cfg)
    base = TimingModel(SystemConfig())
    assert t.memory_read_latency(True) > base.memory_read_latency(True)
    assert t.pm_write_service() == 4 * base.pm_write_service()
    # DRAM unaffected by the PM multiplier
    assert t.memory_read_latency(False) == base.memory_read_latency(False)

"""Unit tests for the Write Pending Queue."""

import pytest

from repro.common.errors import SimulationError
from repro.engine import Scheduler
from repro.mem.image import MemoryImage
from repro.mem.wpq import DPO, LPO, PersistOp, WritePendingQueue

PM = 0x1000_0000_0000


def make_wpq(capacity=4, service=10, watermark=0, lazy=1):
    s = Scheduler()
    img = MemoryImage("pm")
    q = WritePendingQueue(
        "q", s, capacity, lambda: service, img,
        drain_watermark=watermark, lazy_drain_multiplier=lazy,
    )
    return s, img, q


def op(line=PM, kind=DPO, payload=None, **kw):
    return PersistOp(kind=kind, target_line=line, data_line=line,
                     payload=payload or {line: 1}, **kw)


def test_accept_fires_on_complete_immediately():
    s, img, q = make_wpq()
    done = []
    s.at(0, lambda: q.submit(op(on_complete=lambda o: done.append(s.now))))
    s.run()
    assert done == [0]


def test_drain_applies_payload_to_pm():
    s, img, q = make_wpq(service=10)
    s.at(0, lambda: q.submit(op(payload={PM: 42})))
    s.run()
    assert img.read_word(PM) == 42
    assert q.drained == 1


def test_drain_rate_is_serialized():
    s, img, q = make_wpq(service=10)
    times = []
    for i in range(3):
        s.at(0, lambda i=i: q.submit(op(line=PM + 64 * i, on_drain=lambda o: times.append(s.now))))
    s.run()
    assert times == [10, 20, 30]


def test_backpressure_blocks_accept_until_drain():
    s, img, q = make_wpq(capacity=2, service=10)
    accepted = []
    for i in range(3):
        s.at(0, lambda i=i: q.submit(op(line=PM + 64 * i, on_complete=lambda o, i=i: accepted.append((i, s.now)))))
    s.run()
    assert accepted[0] == (0, 0)
    assert accepted[1] == (1, 0)
    assert accepted[2][1] == 10  # waited for the first drain


def test_full_flag_and_peak_occupancy():
    s, img, q = make_wpq(capacity=2, service=10)
    s.at(0, lambda: q.submit(op(line=PM)))
    s.at(0, lambda: q.submit(op(line=PM + 64)))
    s.run(until=1)
    assert q.peak_occupancy == 2


def test_drop_where_removes_and_counts():
    s, img, q = make_wpq(capacity=8, service=1000)
    s.at(0, lambda: q.submit(op(line=PM, kind=LPO, rid=7)))
    s.at(0, lambda: q.submit(op(line=PM + 64, kind=DPO, rid=8)))
    s.run(until=5)
    dropped = q.drop_where(lambda o: o.rid == 7)
    assert dropped == 1
    assert q.dropped == 1
    assert len(q) == 1
    # dropped entries never reach PM
    s.run()
    assert img.read_word(PM) == 0
    assert img.read_word(PM + 64) == 1


def test_drop_fires_on_drain_callback():
    s, img, q = make_wpq(capacity=8, service=1000)
    seen = []
    s.at(0, lambda: q.submit(op(kind=DPO, rid=1, on_drain=lambda o: seen.append("drained"))))
    s.run(until=2)
    q.drop_where(lambda o: o.rid == 1)
    assert seen == ["drained"]


def test_flush_to_pm_applies_everything_in_order():
    s, img, q = make_wpq(capacity=8, service=100000)
    s.at(0, lambda: q.submit(op(payload={PM: 1})))
    s.at(0, lambda: q.submit(op(payload={PM: 2})))
    s.run(until=5)
    flushed = q.flush_to_pm()
    assert flushed == 2
    assert img.read_word(PM) == 2  # FIFO order: the later write wins
    assert len(q) == 0


def test_lazy_drain_below_watermark():
    s, img, q = make_wpq(capacity=8, service=10, watermark=4, lazy=10)
    drained = []
    s.at(0, lambda: q.submit(op()))
    # no flush waiter, occupancy 1 < watermark 4 -> lazy interval 100
    s.run()
    assert q.drained == 1
    assert s.now == 100


def test_flush_waiter_expedites_lazy_drain():
    s, img, q = make_wpq(capacity=8, service=10, watermark=4, lazy=10)
    times = []
    s.at(0, lambda: q.submit(op(on_drain=lambda o: times.append(s.now))))
    s.run()
    assert times == [10]  # full-rate because someone waits


def test_flush_early_in_lazy_interval_expedites():
    # head queued at t=0 drains lazily at t=100; a flush at t=2 expedites
    # the head to t=2+10, then the flush op itself drains at t=22
    s, img, q = make_wpq(capacity=8, service=10, watermark=4, lazy=10)
    times = []
    s.at(0, lambda: q.submit(op(line=PM)))
    s.at(2, lambda: q.submit(op(line=PM + 64, on_drain=lambda o: times.append(s.now))))
    s.run()
    assert times == [22]


def test_flush_late_in_lazy_interval_never_delays():
    # The head's lazy drain is due at t=100. A flush arriving at t=95 must
    # not push the head out to t=95+10: it keeps the sooner deadline
    # (min(remaining, write_service)), so the head drains at t=100 and the
    # flush op at t=110 - not t=105/t=115.
    s, img, q = make_wpq(capacity=8, service=10, watermark=4, lazy=10)
    times = []
    s.at(0, lambda: q.submit(op(line=PM)))
    s.at(95, lambda: q.submit(op(line=PM + 64, on_drain=lambda o: times.append(s.now))))
    s.run()
    assert times == [110]


def test_drop_where_decrements_flush_pending():
    s, img, q = make_wpq(capacity=8, service=10, watermark=4, lazy=10)
    s.at(0, lambda: q.submit(op(line=PM, rid=1, on_drain=lambda o: None)))
    s.at(0, lambda: q.submit(op(line=PM + 64, rid=2)))
    s.run(until=1)
    assert q._flush_pending == 1
    assert q.drop_where(lambda o: o.rid == 1) == 1
    assert q._flush_pending == 0
    # the survivor still drains; nothing hangs on the retired flush waiter
    s.run()
    assert q.drained == 1
    assert img.read_word(PM + 64) == 1


def test_callable_payload_materialised_at_drain():
    s, img, q = make_wpq(service=10)
    box = {"v": 1}
    s.at(0, lambda: q.submit(op(payload=lambda: {PM: box["v"]})))
    s.at(5, lambda: box.update(v=99))
    s.run()
    assert img.read_word(PM) == 99


def test_zero_capacity_rejected():
    s = Scheduler()
    with pytest.raises(SimulationError):
        WritePendingQueue("q", s, 0, lambda: 1, MemoryImage())


# -- FIFO backpressure and pending-aware dropping (the ordering fix) --------


def test_backpressured_ops_admitted_in_arrival_order():
    # Five ops hit a 2-entry queue in one cycle; acceptances must follow
    # submission order exactly, never the wake-up race of the legacy path.
    s, img, q = make_wpq(capacity=2, service=10)
    accepted = []
    for i in range(5):
        s.at(0, lambda i=i: q.submit(
            op(line=PM + 64 * i, on_complete=lambda o, i=i: accepted.append(i))))
    s.run()
    assert accepted == [0, 1, 2, 3, 4]


def test_late_submission_cannot_overtake_pending():
    # An op submitted *after* the queue backed up must queue behind the
    # pending op, even though a slot is free by the time it arrives: the
    # same-line FIFO guarantee ASAP's commit ordering builds on.
    s, img, q = make_wpq(capacity=1, service=10)
    order = []
    s.at(0, lambda: q.submit(op(line=PM, payload={PM: 1})))
    s.at(0, lambda: q.submit(op(line=PM, payload={PM: 2},
                                on_complete=lambda o: order.append("old"))))
    s.at(5, lambda: q.submit(op(line=PM, payload={PM: 3},
                                on_complete=lambda o: order.append("new"))))
    s.run()
    assert order == ["old", "new"]
    assert img.read_word(PM) == 3  # the latest write lands last


def test_drop_where_covers_pending_ops():
    s, img, q = make_wpq(capacity=1, service=1000)
    completed = []
    s.at(0, lambda: q.submit(op(line=PM, rid=1)))
    s.at(0, lambda: q.submit(op(line=PM + 64, rid=2,
                                on_complete=lambda o: completed.append(2))))
    s.run(until=2)
    assert q.pending_count == 1
    assert not completed  # still backpressured, not in the ADR domain
    dropped = q.drop_where(lambda o: o.rid == 2)
    assert dropped == 1
    assert q.dropped_pending == 1
    assert q.pending_count == 0
    # the dropped pending op's obligation is discharged: on_complete fired
    assert completed == [2]
    s.run()
    assert img.read_word(PM + 64) == 0  # its bytes never reach PM


def test_drop_of_queued_entry_admits_pending():
    s, img, q = make_wpq(capacity=1, service=1000)
    accepted = []
    s.at(0, lambda: q.submit(op(line=PM, rid=1)))
    s.at(0, lambda: q.submit(op(line=PM + 64, rid=2,
                                on_complete=lambda o: accepted.append(s.now))))
    s.run(until=3)
    q.drop_where(lambda o: o.rid == 1)
    assert accepted == [3]  # admitted the moment the slot freed
    assert len(q) == 1


def test_pending_ops_not_flushed_on_crash():
    s, img, q = make_wpq(capacity=1, service=1000)
    s.at(0, lambda: q.submit(op(line=PM, payload={PM: 1})))
    s.at(0, lambda: q.submit(op(line=PM + 64, payload={PM + 64: 2})))
    s.run(until=2)
    assert q.flush_to_pm() == 1  # only the accepted entry is in ADR
    assert img.read_word(PM) == 1
    assert img.read_word(PM + 64) == 0


def test_legacy_backpressure_mode_still_available():
    # The pre-fix model is kept behind a flag for the fuzzer's shrinker
    # demos; it must park rather than queue, and hide pending ops.
    s = Scheduler()
    img = MemoryImage("pm")
    q = WritePendingQueue("q", s, 1, lambda: 1000, img,
                          fifo_backpressure=False)
    s.at(0, lambda: q.submit(op(line=PM, rid=1)))
    s.at(0, lambda: q.submit(op(line=PM + 64, rid=2)))
    s.run(until=2)
    assert q.pending_count == 0  # parked as a closure, invisible
    assert q.drop_where(lambda o: o.rid == 2) == 0  # ...and undroppable

"""Unit tests for the non-blocking hierarchy: MSHR allocate/merge/replay/
exhaustion, the legacy blocking model, the locked-set single-count fix,
and the serialized-drain arbiter."""

from dataclasses import replace as dc_replace

import pytest

from repro.common.errors import SimulationError
from repro.common.params import SystemConfig
from repro.engine import Scheduler
from repro.mem.cache import MSHRFile
from repro.mem.controller import MemorySystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.image import MemoryImage
from repro.mem.wpq import DrainArbiter

PM_BASE = 0x1000_0000_0000


def build(mshrs=None, overlapped=None, assoc1=False):
    cfg = SystemConfig.small(num_cores=2)
    overrides = {}
    if mshrs is not None:
        overrides["mshrs_per_cache"] = mshrs
    if overlapped is not None:
        overrides["overlapped_drains"] = overlapped
    if overrides:
        cfg = dc_replace(cfg, memory=dc_replace(cfg.memory, **overrides))
    if assoc1:
        cfg = dc_replace(
            cfg,
            l1=dc_replace(cfg.l1, assoc=1),
            l2=dc_replace(cfg.l2, assoc=1),
            l3=dc_replace(cfg.l3, assoc=1),
        )
    s = Scheduler()
    pm = MemoryImage("pm")
    vol = MemoryImage("vol")
    mem = MemorySystem(cfg, s, pm)
    h = CacheHierarchy(cfg, s, mem, vol, lambda a: True)
    return cfg, s, mem, h


def start_access(h, s, core, addr, is_write=False):
    """Issue an access and return a dict filled in at completion."""
    out = {}

    def done(meta):
        out["meta"] = meta
        out["time"] = s.now

    h.access(core, addr, is_write, done)
    return out


# -- MSHRFile mechanics ------------------------------------------------------


def test_mshr_file_allocate_merge_free():
    f = MSHRFile("mshr-test", 2)
    entry = f.allocate(0x40)
    assert f.get(0x40) is entry
    assert len(f) == 1 and not f.full
    # ensure on a tracked line merges (no new register)
    assert f.ensure(0x40) is entry
    assert f.merges == 1 and f.allocations == 1
    f.allocate(0x80)
    assert f.full and f.peak == 2
    assert f.free(0x40) is entry
    assert len(f) == 1
    assert f.free(0x40) is None  # double free is a no-op


def test_mshr_file_raises_on_oversubscription_and_duplicates():
    f = MSHRFile("mshr-test", 1)
    f.allocate(0x40)
    with pytest.raises(SimulationError):
        f.allocate(0x40)  # duplicate: must merge, not refetch
    with pytest.raises(SimulationError):
        f.allocate(0x80)  # full: caller must stall
    with pytest.raises(SimulationError):
        MSHRFile("empty", 0)


# -- merge: one fetch answers every requester --------------------------------


def test_same_line_misses_from_two_cores_produce_one_fill():
    cfg, s, mem, h = build()
    first = start_access(h, s, 0, PM_BASE)
    second = start_access(h, s, 1, PM_BASE)  # in flight: must merge
    assert h.llc_mshrs.get(PM_BASE) is not None
    s.run()
    t_mem = mem.timing.memory_read_latency(True)
    assert h.llc_misses == 1
    assert h.mshr_merges == 1
    assert mem.channel_for_line(PM_BASE).stats.pm_reads == 1
    # both requesters complete when the single fill lands
    assert first["time"] == second["time"] == t_mem
    assert h.l1[0].contains(PM_BASE) and h.l1[1].contains(PM_BASE)
    assert h.llc_mshrs.get(PM_BASE) is None  # registers released


def test_merged_write_applies_effects_at_classification():
    cfg, s, mem, h = build()
    start_access(h, s, 0, PM_BASE)
    merged = start_access(h, s, 1, PM_BASE, is_write=True)
    # write effects land when the access is classified, not at fill time
    assert h.tags.get(PM_BASE).dirty
    assert h.tags.get(PM_BASE).version == 1
    s.run()
    assert merged["meta"].dirty


def test_fill_replays_waiters_in_arrival_order():
    cfg, s, mem, h = build()
    order = []
    h.access(0, PM_BASE, False, lambda meta: order.append("a"))
    h.access(1, PM_BASE, False, lambda meta: order.append("b"))
    h.access(0, PM_BASE, False, lambda meta: order.append("c"))
    assert h.mshr_merges == 2
    s.run()
    assert order == ["a", "b", "c"]


# -- exhaustion: the blocking comparator -------------------------------------


def test_single_mshr_serializes_distinct_line_misses():
    cfg, s, mem, h = build(mshrs=1)
    first = start_access(h, s, 0, PM_BASE)
    second = start_access(h, s, 1, PM_BASE + 64)  # no free register: parks
    assert h.mshr_stalls == 1
    s.run()
    t_mem = mem.timing.memory_read_latency(True)
    assert first["time"] == t_mem
    # the parked miss re-probes when the first fill frees the register,
    # then pays its own full fetch: the classic blocking-cache timeline
    assert second["time"] == 2 * t_mem
    assert h.llc_misses == 2


def test_parked_miss_that_finds_line_resident_completes_as_hit():
    cfg, s, mem, h = build(mshrs=1)
    start_access(h, s, 0, PM_BASE)
    # same line from the other core while the register file is busy with
    # a *different* line would park; same line merges instead - force the
    # park with a distinct line, then let the fetched line satisfy it
    parked = start_access(h, s, 1, PM_BASE + 64)
    resident = start_access(h, s, 0, PM_BASE)  # merges into the fetch
    assert h.mshr_merges == 1 and h.mshr_stalls == 1
    s.run()
    assert parked["time"] > resident["time"]
    assert h.l1[1].contains(PM_BASE + 64)


# -- legacy immediate-fill model (mshrs_per_cache = 0) -----------------------


def test_legacy_blocking_model_fills_at_access_time():
    cfg, s, mem, h = build(mshrs=0)
    assert h.llc_mshrs is None
    first = start_access(h, s, 0, PM_BASE)
    # the line is already resident (installed at access time), so the
    # second core scores an instant LLC hit and completes *before* the
    # first requester's fetch latency elapses - the fidelity bug the
    # non-blocking hierarchy fixes, kept selectable for old demos
    second = start_access(h, s, 1, PM_BASE)
    s.run()
    assert h.llc_misses == 1
    assert h.mshr_merges == 0
    assert second["time"] == mem.timing.llc_latency()
    assert second["time"] < first["time"]


def test_nonblocking_default_makes_secondary_miss_wait_for_fill():
    cfg, s, mem, h = build()
    first = start_access(h, s, 0, PM_BASE)
    second = start_access(h, s, 1, PM_BASE)
    s.run()
    assert second["time"] == first["time"]


# -- locked-set stalls count the logical access once -------------------------


def _same_set_distinct_line(cfg, base):
    """A line that conflicts with ``base`` in every (direct-mapped) level."""
    sets = max(cfg.l1.num_sets, cfg.l2.num_sets, cfg.l3.num_sets)
    return base + sets * 64


@pytest.mark.parametrize("mshrs", [None, 0])
def test_locked_set_retry_counts_access_once(mshrs):
    cfg, s, mem, h = build(mshrs=mshrs, assoc1=True)
    victim_line = PM_BASE
    start_access(h, s, 0, victim_line)
    s.run()
    h.tags.get(victim_line).lock_count = 1
    conflicting = _same_set_distinct_line(cfg, victim_line)
    out = start_access(h, s, 0, conflicting)
    # keep the set locked well past the fill attempt (the non-blocking
    # model only tries to fill once the fetch lands, t_mem from now)
    hold = mem.timing.memory_read_latency(True) + 10 * 16 + 1
    s.after(hold, lambda: setattr(h.tags.get(victim_line), "lock_count", 0))
    s.run()
    assert out["meta"] is not None
    assert h.locked_set_stalls >= 1
    # one logical access per call, however many times the fill retried -
    # the pre-fix model re-entered access() and recounted on every retry
    assert h.accesses == 2
    assert h.l1[0].hits + h.l1[0].misses == h.accesses
    assert h.llc.misses == h.llc_misses == 2


# -- serialized drains (DrainArbiter) ----------------------------------------


def test_drain_arbiter_grants_fifo_and_hands_off():
    arb = DrainArbiter()
    order = []
    arb.acquire(lambda: order.append("a"))  # free: granted immediately
    assert order == ["a"] and arb.held
    arb.acquire(lambda: order.append("b"))
    arb.acquire(lambda: order.append("c"))
    assert order == ["a"]  # held: queued
    arb.release()
    assert order == ["a", "b"]  # handed to the oldest waiter
    arb.release()
    assert order == ["a", "b", "c"]
    arb.release()
    assert not arb.held


def test_memory_system_builds_arbiter_only_for_serialized_mode():
    _, _, mem_overlapped, _ = build(overlapped=True)
    assert mem_overlapped.drain_arbiter is None
    _, _, mem_serialized, _ = build(overlapped=False)
    assert isinstance(mem_serialized.drain_arbiter, DrainArbiter)


def test_serialized_drains_persist_everything_but_never_earlier():
    from repro.harness.runner import run_once

    results = {}
    for overlapped in (True, False):
        config = SystemConfig.small(num_cores=4, wpq_entries=8)
        config = dc_replace(
            config, memory=dc_replace(config.memory, overlapped_drains=overlapped)
        )
        results[overlapped] = run_once("HM", "asap", config)
    # serializing write service reorders nothing functionally: the same
    # lines reach PM, just later - the event queue drains no earlier
    assert results[False].pm_writes > 0
    assert results[False].drain_cycles >= results[True].drain_cycles

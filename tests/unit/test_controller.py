"""Unit tests for the memory system: channels, interleaving, traffic."""

from repro.common.params import SystemConfig
from repro.engine import Scheduler
from repro.mem.controller import MemorySystem
from repro.mem.image import MemoryImage
from repro.mem.wpq import DPO, LPO, PersistOp

PM = 0x1000_0000_0000


def build(channels=2):
    cfg = SystemConfig.small()
    s = Scheduler()
    pm = MemoryImage("pm")
    return cfg, s, pm, MemorySystem(cfg, s, pm)


def test_line_interleaving_covers_all_channels():
    cfg, s, pm, mem = build()
    seen = {mem.channel_for_line(PM + i * 64).index for i in range(8)}
    assert seen == set(range(len(mem.channels)))


def test_rid_channel_mapping_uses_local_lsbs():
    cfg, s, pm, mem = build()
    n = len(mem.channels)
    for local in range(8):
        assert mem.channel_for_rid(local).index == local % n


def test_issue_persist_charges_hop_latency():
    cfg, s, pm, mem = build()
    times = []
    op = PersistOp(DPO, PM, PM, {PM: 1}, on_complete=lambda o: times.append(s.now))
    s.at(0, lambda: mem.issue_persist(op))
    s.run()
    assert times == [mem.timing.mc_hop()]


def test_traffic_accounting_by_kind():
    cfg, s, pm, mem = build()
    s.at(0, lambda: mem.issue_persist(PersistOp(LPO, PM, PM + 64, {PM: 1})))
    s.at(0, lambda: mem.issue_persist(PersistOp(DPO, PM + 64, PM + 64, {PM + 64: 2})))
    s.run()
    kinds = mem.pm_writes_by_kind()
    assert kinds["lpo"] == 1 and kinds["dpo"] == 1
    assert mem.total_pm_writes() == 2


def test_queued_dpo_lookup_and_drop():
    cfg, s, pm, mem = build()
    dpo = PersistOp(DPO, PM, PM, {PM: 1})
    s.at(0, lambda: mem.issue_persist(dpo))
    s.run(until=mem.timing.mc_hop())
    assert mem.queued_dpo_for(PM) is dpo
    assert mem.queued_dpo_for(PM + 64) is None
    dropped = mem.drop_from_wpqs(lambda o: o.target_line == PM)
    assert dropped == 1
    assert mem.queued_dpo_for(PM) is None


def test_flush_persistence_domain():
    cfg, s, pm, mem = build()
    s.at(0, lambda: mem.issue_persist(PersistOp(DPO, PM, PM, {PM: 7})))
    s.run(until=mem.timing.mc_hop())
    flushed = mem.flush_persistence_domain()
    assert flushed == 1
    assert pm.read_word(PM) == 7
    assert sum(ch.stats.crash_flush_writes for ch in mem.channels) == 1


def test_dram_write_accounting():
    cfg, s, pm, mem = build()
    mem.issue_dram_write(0x1000)
    assert sum(ch.stats.dram_writes for ch in mem.channels) == 1

"""Unit tests for WaitQueue and Signal."""

from repro.engine import Scheduler, Signal, WaitQueue


def test_wait_queue_fifo_wake_order():
    s = Scheduler()
    q = WaitQueue(s)
    seen = []
    q.park(lambda: seen.append("a"))
    q.park(lambda: seen.append("b"))
    q.park(lambda: seen.append("c"))
    assert len(q) == 3
    q.wake_one()
    s.run()
    assert seen == ["a"]
    q.wake_all()
    s.run()
    assert seen == ["a", "b", "c"]
    assert len(q) == 0


def test_wake_one_on_empty_returns_false():
    s = Scheduler()
    q = WaitQueue(s)
    assert q.wake_one() is False
    assert q.wake_all() == 0


def test_signal_releases_current_waiters():
    s = Scheduler()
    sig = Signal(s)
    seen = []
    sig.wait(lambda: seen.append(1))
    sig.wait(lambda: seen.append(2))
    assert not seen
    sig.fire()
    s.run()
    assert sorted(seen) == [1, 2]


def test_signal_releases_future_waiters_immediately():
    s = Scheduler()
    sig = Signal(s)
    sig.fire()
    seen = []
    sig.wait(lambda: seen.append("late"))
    s.run()
    assert seen == ["late"]


def test_signal_fire_is_idempotent():
    s = Scheduler()
    sig = Signal(s)
    seen = []
    sig.wait(lambda: seen.append(1))
    sig.fire()
    sig.fire()
    s.run()
    assert seen == [1]

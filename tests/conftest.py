"""Shared fixtures: small machines, scheme factories, mini-workloads."""

import pytest

from repro.common.params import SystemConfig
from repro.persist import make_scheme, scheme_names
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write


@pytest.fixture
def small_config():
    return SystemConfig.small()


@pytest.fixture
def make_machine():
    """Factory: make_machine('asap', wpq_entries=8, ...) -> Machine."""

    def factory(scheme="asap", **config_kwargs):
        return Machine(SystemConfig.small(**config_kwargs), make_scheme(scheme))

    return factory


def counter_worker(machine, addr, iterations, lock=None, lines=1):
    """A canonical worker: regions incrementing words on ``lines`` lines."""

    def gen(env):
        for i in range(iterations):
            if lock is not None:
                yield Lock(lock)
            yield Begin()
            for j in range(lines):
                (v,) = yield Read(addr + 64 * j, 1)
                yield Write(addr + 64 * j, [v + 1])
            yield End()
            if lock is not None:
                yield Unlock(lock)

    return gen


ALL_SCHEMES = scheme_names()

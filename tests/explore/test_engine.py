"""The exploration engine end-to-end, and the lhwpq experiment's port.

Real quick-mode simulations on a deliberately tiny space (one axis, one
workload) - the determinism and cache contracts are the point, not the
numbers.
"""

import pytest

from repro.common.errors import ConfigError
from repro.explore.analysis import analyze
from repro.explore.drivers import GridDriver
from repro.explore.engine import (
    ExplorationResult,
    PointOutcome,
    explore,
    get_objective,
    point_specs,
)
from repro.explore.report import to_json
from repro.explore.space import SweepSpace
from repro.harness.experiments import lhwpq
from repro.harness.parallel import ResultCache, RunSpec, execute
from repro.harness.runner import default_config, default_params


def tiny_space():
    return SweepSpace.build(
        axes={"lh_wpq_entries": [16, 1]}, workloads=["HM"], scheme="asap"
    )


# -- objectives --------------------------------------------------------------


def test_objective_signs():
    assert get_objective("throughput").signed(3.0) == 3.0
    assert get_objective("cycles_per_region").signed(10.0) == -10.0
    with pytest.raises(ConfigError, match="unknown objective"):
        get_objective("ipc")


def test_best_respects_minimising_objectives():
    obj = get_objective("pm_writes")
    result = ExplorationResult(space=tiny_space(), driver="grid", objective=obj)
    few = PointOutcome((("asap.lh_wpq_entries", 16),), {}, 10.0, 1.0, 0.1)
    many = PointOutcome((("asap.lh_wpq_entries", 1),), {}, 90.0, 1.0, 0.1)
    result.outcomes = [many, few]
    assert result.best() is few
    assert result.evaluated[few.point] == -10.0
    with pytest.raises(ConfigError):
        ExplorationResult(space=tiny_space(), driver="grid", objective=obj).best()


# -- point_specs -------------------------------------------------------------


def test_point_specs_overlay_the_point_on_the_base_machine():
    space = tiny_space()
    config, params = default_config(True), default_params(True)
    specs = point_specs(space, space.grid(), config=config, params=params)
    assert [s.key for s in specs] == [(p, "HM") for p in space.grid()]
    by_point = {s.key[0]: s for s in specs}
    small = by_point[space.point(lh_wpq_entries=1)]
    assert small.config.asap.lh_wpq_entries == 1
    assert small.scheme == "asap" and small.workload == "HM"
    # only the axis field moved off the base machine
    assert small.config.memory == config.memory
    assert small.params == params


# -- explore -----------------------------------------------------------------


def test_explore_grid_covers_the_space_in_one_round(tmp_path):
    space = tiny_space()
    result = explore(space, GridDriver(), cache=ResultCache(str(tmp_path)))
    assert result.rounds == 1
    assert [o.point for o in result.outcomes] == space.grid()
    for o in result.outcomes:
        assert set(o.per_workload) == {"HM"}
        assert o.objective > 0 and o.area_bytes > 0
        assert o.round_index == 0 and o.cached_cells == 0
    assert result.best() in result.outcomes


def test_explore_is_deterministic_across_jobs_and_cache_state(tmp_path):
    space = tiny_space()
    serial = explore(space, GridDriver(), jobs=1)
    fanned = explore(
        space, GridDriver(), jobs=2, cache=ResultCache(str(tmp_path))
    )
    warm = explore(
        space, GridDriver(), jobs=1, cache=ResultCache(str(tmp_path))
    )
    # every cell of the warm run came from the cache the fanned run filled
    assert all(o.cached_cells == 1 for o in warm.outcomes)
    reports = [to_json(r, analyze(r)) for r in (serial, fanned, warm)]
    assert reports[0] == reports[1] == reports[2]


# -- the lhwpq experiment rides the sweep engine (satellite) -----------------


def historical_lhwpq_specs(workloads):
    """The spec list exactly as lhwpq.plan built it before the port."""
    config = default_config(True)
    params = default_params(True)
    small_config = default_config(True, lh_wpq_entries=lhwpq.SMALL_LH_WPQ)
    specs = []
    for name in workloads:
        specs.append(
            RunSpec(key=(name, "big"), workload=name, scheme="asap",
                    config=config, params=params)
        )
        specs.append(
            RunSpec(key=(name, "small"), workload=name, scheme="asap",
                    config=small_config, params=params)
        )
    for name in workloads:
        for scheme in ("hwundo", "hwredo"):
            specs.append(
                RunSpec(key=(name, scheme), workload=name, scheme=scheme,
                        config=config, params=params)
            )
    return specs


def test_lhwpq_port_preserves_cells_and_cache_tokens():
    plan = lhwpq.plan(quick=True, workloads=["HM", "Q"])
    old = historical_lhwpq_specs(["HM", "Q"])
    new_by_key = {s.key: s for s in plan.specs}
    assert set(new_by_key) == {s.key for s in old}
    for spec in old:
        # same content hash = the port shares every previously cached cell
        assert new_by_key[spec.key].cache_token() == spec.cache_token()


def test_lhwpq_table_output_unchanged(tmp_path):
    plan = lhwpq.plan(quick=True, workloads=["HM"])
    cells = execute(plan.specs, cache=ResultCache(str(tmp_path)))
    table = plan.assemble(cells)
    assert table.columns == ["ASAP16/ASAP128", "ASAP16/HWUndo", "ASAP16/HWRedo"]
    big = cells[("HM", "big")].result
    small = cells[("HM", "small")].result
    ratios = table.rows["HM"]
    assert ratios["ASAP16/ASAP128"] == pytest.approx(
        small.throughput / big.throughput
    )
    assert ratios["ASAP16/HWUndo"] == pytest.approx(
        small.throughput / cells[("HM", "hwundo")].result.throughput
    )
    # the geomean row still closes the table
    assert list(table.rows) == ["HM", "GeoMean"]

"""Axis resolution and sweep-space construction.

The contract under test: a typo - axis name or value - fails at space
construction, never after simulations have started.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.common.params import (
    AXIS_ALIASES,
    SystemConfig,
    apply_axis_values,
    resolve_axis,
    sweepable_axes,
)
from repro.explore.space import Axis, SweepSpace, point_label
from repro.workloads import WorkloadParams


# -- resolve_axis ------------------------------------------------------------


def test_canonical_bare_and_alias_names_resolve_to_the_same_target():
    canonical = resolve_axis("asap.lh_wpq_entries")
    assert canonical.group == "asap" and canonical.field == "lh_wpq_entries"
    assert resolve_axis("lh_wpq_entries") == canonical
    # the evaluation shorthand from the paper discussion
    assert resolve_axis("dep_list_entries").field == "dependence_list_entries"


def test_every_alias_points_at_a_real_axis():
    registry = sweepable_axes()
    for alias, canonical in AXIS_ALIASES.items():
        assert canonical in registry, alias


def test_unknown_axis_fails_fast_with_suggestion():
    with pytest.raises(ConfigError, match="lh_wpq_entries"):
        resolve_axis("lh_wqp_entries")  # transposed typo


def test_ambiguous_bare_name_is_rejected():
    # "seed" exists only on WorkloadParams, but a name appearing in two
    # groups must raise; craft one via the registry to stay honest
    registry = sweepable_axes()
    fields = {}
    ambiguous = None
    for target in registry.values():
        if target.field in fields and fields[target.field] != target.group:
            ambiguous = target.field
            break
        fields[target.field] = target.group
    if ambiguous is None:
        pytest.skip("no ambiguous bare field name in the current dataclasses")
    with pytest.raises(ConfigError, match="ambiguous"):
        resolve_axis(ambiguous)


def test_non_scalar_fields_are_not_sweepable():
    assert "memory.numa_remote_channels" not in sweepable_axes()
    with pytest.raises(ConfigError):
        resolve_axis("numa_remote_channels")


# -- apply_axis_values -------------------------------------------------------


def test_apply_axis_values_touches_exactly_the_named_fields():
    config, params = apply_axis_values(
        SystemConfig(),
        WorkloadParams(),
        {"lh_wpq_entries": 16, "wpq_entries": 64, "num_threads": 2},
    )
    assert config.asap.lh_wpq_entries == 16
    assert config.memory.wpq_entries == 64
    assert params.num_threads == 2
    # untouched fields keep their defaults
    assert config.asap.dependence_list_entries == 128
    assert config.num_cores == 18


def test_apply_axis_values_runs_dataclass_validation():
    with pytest.raises(ConfigError):
        apply_axis_values(SystemConfig(), WorkloadParams(), {"lh_wpq_entries": 0})


def test_apply_axis_values_rejects_wrong_types():
    with pytest.raises(ConfigError, match="expects int"):
        apply_axis_values(SystemConfig(), None, {"lh_wpq_entries": 2.5})
    with pytest.raises(ConfigError, match="expects"):
        apply_axis_values(SystemConfig(), None, {"lpo_dropping": 3})
    with pytest.raises(ConfigError, match="expects"):
        apply_axis_values(SystemConfig(), None, {"lh_wpq_entries": True})


def test_workload_axis_without_params_is_an_error():
    with pytest.raises(ConfigError, match="WorkloadParams"):
        apply_axis_values(SystemConfig(), None, {"num_threads": 2})


# -- Axis / SweepSpace -------------------------------------------------------


def test_axis_expands_linear_and_log2_ranges():
    lin = Axis.of("lh_wpq_entries", {"start": 2, "stop": 8, "num": 4})
    assert lin.values == (2, 4, 6, 8)
    log = Axis.of("lh_wpq_entries", {"start": 4, "stop": 32, "num": 4, "scale": "log2"})
    assert log.values == (4, 8, 16, 32)


def test_axis_rejects_empty_duplicate_and_bad_ranges():
    with pytest.raises(ConfigError):
        Axis.of("lh_wpq_entries", [])
    with pytest.raises(ConfigError):
        Axis.of("lh_wpq_entries", [4, 4])
    with pytest.raises(ConfigError):
        Axis.of("lh_wpq_entries", {"start": 1})
    with pytest.raises(ConfigError):
        Axis.of("lh_wpq_entries", {"start": 1, "stop": 8, "scale": "log3"})


def test_axis_midpoint_bisects_ints_and_stops_at_adjacent():
    axis = Axis.of("lh_wpq_entries", [2, 32])
    assert axis.midpoint(2, 32) == 17
    assert axis.midpoint(2, 3) is None


def test_space_build_validates_every_axis_value_up_front():
    with pytest.raises(ConfigError):
        SweepSpace.build(
            axes={"lh_wpq_entries": [8, 0]}, workloads=["HM"]
        )
    with pytest.raises(ConfigError, match="unknown workload"):
        SweepSpace.build(axes={"lh_wpq_entries": [8]}, workloads=["NOPE"])
    with pytest.raises(ConfigError, match="at least one axis"):
        SweepSpace.build(axes={}, workloads=["HM"])


def test_space_rejects_baseline_overlapping_an_axis():
    with pytest.raises(ConfigError, match="baseline"):
        SweepSpace.build(
            axes={"lh_wpq_entries": [4, 8]},
            workloads=["HM"],
            baseline={"asap.lh_wpq_entries": 16},
        )


def test_space_round_trips_through_dict():
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [4, 16], "dep_list_entries": [8, 32]},
        workloads=["HM", "Q"],
        scheme="asap",
        baseline={"wpq_entries": 16},
    )
    again = SweepSpace.from_dict(space.to_dict())
    assert again == space
    with pytest.raises(ConfigError, match="unknown sweep-space keys"):
        SweepSpace.from_dict({"axes": {}, "workloads": [], "driver": "grid"})


def test_grid_center_and_point():
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [2, 8, 32], "dep_list_entries": [4, 16]},
        workloads=["HM"],
    )
    grid = space.grid()
    assert len(grid) == 6
    assert grid[0] == (
        ("asap.lh_wpq_entries", 2),
        ("asap.dependence_list_entries", 4),
    )
    assert space.center_point() == (
        ("asap.lh_wpq_entries", 8),
        ("asap.dependence_list_entries", 4),
    )
    p = space.point(dep_list_entries=16)
    assert dict(p)["asap.dependence_list_entries"] == 16
    with pytest.raises(ConfigError, match="not axes"):
        space.point(wpq_entries=4)
    assert point_label(p) == "lh_wpq_entries=2,dependence_list_entries=16"


def test_materialize_applies_baseline_then_point():
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [4, 8]},
        workloads=["HM"],
        baseline={"wpq_entries": 16},
    )
    config, params = space.materialize(
        space.point(lh_wpq_entries=8), SystemConfig(), WorkloadParams()
    )
    assert config.asap.lh_wpq_entries == 8
    assert config.memory.wpq_entries == 16


# -- property: every mutation yields a valid config --------------------------

_INT_AXES = sorted(
    name
    for name, target in sweepable_axes().items()
    if target.kind is int and target.group in ("asap", "memory", "system")
)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(_INT_AXES),
    value=st.integers(1, 4096),
    data=st.data(),
)
def test_any_int_axis_mutation_yields_a_validated_config(name, value, data):
    """Axis application must produce a SystemConfig whose own
    ``__post_init__`` validation accepted the value - or raise ConfigError
    up front. It may never hand back a half-mutated config."""
    try:
        config, _ = apply_axis_values(SystemConfig(), None, {name: value})
    except ConfigError:
        return  # rejected fast - acceptable (e.g. watermark constraints)
    target = resolve_axis(name)
    group = config if target.group == "system" else getattr(config, target.group)
    assert getattr(group, target.field) == value
    # the returned object survives re-validation wholesale
    SystemConfig(**{
        f.name: getattr(config, f.name)
        for f in config.__dataclass_fields__.values()
    })
    # and a second mutation on a fresh axis composes with the first
    other = data.draw(st.sampled_from(_INT_AXES))
    if other != name:
        try:
            config2, _ = apply_axis_values(config, None, {other: 8})
        except ConfigError:
            return
        assert getattr(
            config2 if target.group == "system" else getattr(config2, target.group),
            target.field,
        ) == value

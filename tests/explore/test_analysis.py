"""The analysis layer: Pareto dominance/pruning and sensitivity deltas.

All synthetic - PointOutcomes are built by hand, no simulation runs.
"""

import pytest

from repro.explore.analysis import (
    AxisSensitivity,
    dominates,
    pareto_frontier,
    sensitivity,
)
from repro.explore.engine import PointOutcome
from repro.explore.space import SweepSpace


def outcome(obj, area, name="x"):
    return PointOutcome(
        point=(("asap.lh_wpq_entries", name),),
        per_workload={},
        objective=obj,
        area_bytes=area,
        area_overhead=area / 1e6,
    )


# -- dominance ---------------------------------------------------------------


def test_dominates_requires_both_axes_and_one_strict():
    better = outcome(10.0, 100.0)
    worse = outcome(5.0, 200.0)
    assert dominates(better, worse, maximize=True)
    assert not dominates(worse, better, maximize=True)
    # equal on both axes: neither dominates (ties survive together)
    twin_a, twin_b = outcome(10.0, 100.0), outcome(10.0, 100.0)
    assert not dominates(twin_a, twin_b, maximize=True)
    assert not dominates(twin_b, twin_a, maximize=True)
    # better on one axis, worse on the other: incomparable
    fast_big = outcome(10.0, 300.0)
    slow_small = outcome(5.0, 100.0)
    assert not dominates(fast_big, slow_small, maximize=True)
    assert not dominates(slow_small, fast_big, maximize=True)


def test_dominates_flips_with_minimising_objectives():
    low_cycles = outcome(100.0, 100.0)  # fewer cycles = better when minimising
    high_cycles = outcome(200.0, 100.0)
    assert dominates(low_cycles, high_cycles, maximize=False)
    assert not dominates(low_cycles, high_cycles, maximize=True)


# -- frontier ----------------------------------------------------------------


def test_frontier_single_point_is_trivially_pareto():
    only = outcome(1.0, 1.0)
    frontier, dominated = pareto_frontier([only])
    assert frontier == [only] and dominated == []
    assert pareto_frontier([]) == ([], [])


def test_frontier_prunes_everything_one_point_dominates():
    king = outcome(10.0, 50.0)
    peasants = [outcome(9.0, 60.0), outcome(5.0, 51.0), outcome(1.0, 500.0)]
    frontier, dominated = pareto_frontier([*peasants, king])
    assert frontier == [king]
    assert dominated == peasants  # evaluation order preserved


def test_frontier_keeps_exact_ties_together():
    a, b = outcome(10.0, 100.0, "a"), outcome(10.0, 100.0, "b")
    loser = outcome(9.0, 100.0)
    frontier, dominated = pareto_frontier([a, b, loser])
    assert a in frontier and b in frontier
    assert dominated == [loser]


def test_frontier_orders_by_area_and_keeps_tradeoffs():
    cheap_slow = outcome(2.0, 10.0)
    dear_fast = outcome(10.0, 100.0)
    mid = outcome(6.0, 50.0)
    dominated_pt = outcome(1.0, 120.0)
    frontier, dominated = pareto_frontier(
        [dear_fast, dominated_pt, cheap_slow, mid]
    )
    assert frontier == [cheap_slow, mid, dear_fast]  # ascending area
    assert dominated == [dominated_pt]


def test_frontier_with_minimising_objective():
    few_writes = outcome(100.0, 50.0)
    many_writes = outcome(900.0, 50.0)
    frontier, dominated = pareto_frontier(
        [many_writes, few_writes], maximize=False
    )
    assert frontier == [few_writes]
    assert dominated == [many_writes]


# -- sensitivity -------------------------------------------------------------


def space_2ax():
    return SweepSpace.build(
        axes={"lh_wpq_entries": [2, 8, 32], "dep_list_entries": [4, 16, 64]},
        workloads=["HM"],
    )


def synth(space, fn):
    """Evaluate fn(axis value dict) over the tornado set + full grid."""
    return {p: fn(dict(p)) for p in space.grid()}


def test_sensitivity_deltas_on_a_synthetic_objective():
    space = space_2ax()
    # objective = 3*dep - lh: dep swings positive, lh negative
    evaluated = synth(
        space,
        lambda v: 3.0 * v["asap.dependence_list_entries"]
        - v["asap.lh_wpq_entries"],
    )
    rows = sensitivity(space, evaluated)
    by_axis = {r.axis: r for r in rows}
    dep = by_axis["asap.dependence_list_entries"]
    lh = by_axis["asap.lh_wpq_entries"]
    # baseline = center (lh=8, dep=16): dep deltas 3*(4-16)=-36 / 3*(64-16)=+144
    assert dep.low == pytest.approx(-36.0) and dep.high == pytest.approx(144.0)
    assert dep.low_value == 4 and dep.high_value == 64
    # lh deltas: -(2-8)=+6 at 2, -(32-8)=-24 at 32
    assert lh.low == pytest.approx(-24.0) and lh.high == pytest.approx(6.0)
    assert lh.low_value == 32 and lh.high_value == 2
    # most sensitive axis first
    assert rows[0] is dep
    assert dep.swing == pytest.approx(180.0)


def test_sensitivity_ignores_multi_axis_moves():
    space = space_2ax()
    center = space.center_point()
    corner = space.point(lh_wpq_entries=32, dep_list_entries=64)
    rows = sensitivity(space, {center: 1.0, corner: 99.0})
    assert all(r.low == 0.0 and r.high == 0.0 for r in rows)


def test_sensitivity_without_baseline_reports_zeroes():
    space = space_2ax()
    rows = sensitivity(space, {space.grid()[0]: 42.0})
    assert [r.axis for r in rows]  # one row per axis, stable
    assert all(r.swing == 0.0 for r in rows)


def test_sensitivity_custom_baseline():
    space = space_2ax()
    base = space.point(lh_wpq_entries=2, dep_list_entries=4)
    probe = space.point(lh_wpq_entries=32, dep_list_entries=4)
    rows = sensitivity(space, {base: 10.0, probe: 4.0}, baseline=base)
    lh = next(r for r in rows if r.axis == "asap.lh_wpq_entries")
    assert lh.low == pytest.approx(-6.0) and lh.low_value == 32


def test_axis_sensitivity_swing():
    s = AxisSensitivity("a", low=-2.0, high=3.0, low_value=1, high_value=9)
    assert s.swing == 5.0

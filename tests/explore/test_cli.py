"""``asap-repro explore`` - flag parsing, artifacts, determinism, exits."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.explore.cli import (
    _parse_axis_flags,
    _parse_baseline_flags,
    _parse_value,
    main,
)
from repro.harness.cli import main as harness_main


# -- flag parsing ------------------------------------------------------------


def test_parse_value_types():
    assert _parse_value("4") == 4 and isinstance(_parse_value("4"), int)
    assert _parse_value("2.5") == 2.5
    assert _parse_value("true") is True and _parse_value("False") is False
    with pytest.raises(ConfigError):
        _parse_value("sixteen")


def test_parse_axis_and_baseline_flags():
    axes = _parse_axis_flags(["lh_wpq_entries=4,16", "dep_list_entries=8"])
    assert axes == {"lh_wpq_entries": [4, 16], "dep_list_entries": [8]}
    assert _parse_baseline_flags(["wpq_entries=32"]) == {"wpq_entries": 32}
    with pytest.raises(ConfigError, match="--axis"):
        _parse_axis_flags(["lh_wpq_entries"])
    with pytest.raises(ConfigError, match="--baseline"):
        _parse_baseline_flags(["wpq_entries"])


# -- informational / error paths (no simulation) ----------------------------


def test_list_axes(capsys):
    assert main(["--list-axes"]) == 0
    out = capsys.readouterr().out
    assert "asap.lh_wpq_entries" in out
    assert "dep_list_entries" in out  # the alias table


def test_missing_axes_or_workloads_is_a_usage_error(capsys):
    with pytest.raises(SystemExit):
        main(["--workloads", "HM"])
    with pytest.raises(SystemExit):
        main(["--axis", "lh_wpq_entries=4,16"])


def test_bad_axis_name_exits_2(capsys):
    rc = main(
        ["--axis", "lh_wqp_entries=4,16", "--workloads", "HM", "--no-cache"]
    )
    assert rc == 2
    assert "lh_wpq_entries" in capsys.readouterr().err  # the suggestion


# -- end-to-end: grid sweep, artifacts, cache contract -----------------------


def run_cli(tmp_path, *extra):
    argv = [
        "--axis", "lh_wpq_entries=16,1",
        "--workloads", "HM",
        "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--no-progress",
        *extra,
    ]
    return main(argv)


def test_grid_run_writes_identical_json_cold_and_warm(tmp_path, capsys):
    cold, warm = tmp_path / "cold.json", tmp_path / "warm.json"
    csv_path = tmp_path / "out.csv"
    assert run_cli(tmp_path, "--json", str(cold), "--csv", str(csv_path)) == 0
    md = capsys.readouterr().out
    assert "Pareto" in md and "lh_wpq_entries" in md
    # warm re-run: every cell cached, report byte-identical
    assert (
        run_cli(tmp_path, "--json", str(warm), "--require-cache-rate", "1.0")
        == 0
    )
    assert cold.read_bytes() == warm.read_bytes()

    report = json.loads(cold.read_text())
    assert report["driver"] == "grid"
    assert report["objective"] == {"name": "throughput", "maximize": True}
    assert len(report["points"]) == 2
    assert {"point", "objective", "area_bytes", "pareto"} <= set(
        report["points"][0]
    )
    header = csv_path.read_text().splitlines()[0]
    assert "lh_wpq_entries" in header and "throughput" in header


def test_require_cache_rate_fails_a_cold_run(tmp_path, capsys):
    rc = run_cli(tmp_path / "fresh", "--require-cache-rate", "1.0")
    assert rc == 1
    assert "cache rate" in capsys.readouterr().err


def test_space_file_merges_with_flag_overrides(tmp_path, capsys):
    spec = {
        "axes": {"lh_wpq_entries": [16, 1]},
        "workloads": ["HM", "Q"],
        "scheme": "asap",
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(spec))
    rc = main(
        [
            "--space", str(path),
            "--workloads", "HM",  # flag narrows the file's workload list
            "--cache-dir", str(tmp_path / "cache"),
            "--no-progress",
            "--json", str(tmp_path / "out.json"),
        ]
    )
    assert rc == 0
    report = json.loads((tmp_path / "out.json").read_text())
    assert report["space"]["workloads"] == ["HM"]


def test_harness_cli_routes_the_explore_subcommand(capsys):
    assert harness_main(["explore", "--list-axes"]) == 0
    assert "sweepable axes" in capsys.readouterr().out

"""Search drivers: proposals, determinism, and refinement behaviour.

Drivers are pure strategy - no simulator involved - so these tests feed
them synthetic objective values and check which points they ask for.
"""

import pytest

from repro.common.errors import ConfigError
from repro.explore.drivers import (
    GridDriver,
    RandomDriver,
    RefineDriver,
    axis_sensitivities,
    make_driver,
)
from repro.explore.space import SweepSpace


def space_2x3():
    return SweepSpace.build(
        axes={"lh_wpq_entries": [2, 8, 32], "dep_list_entries": [4, 16]},
        workloads=["HM"],
    )


def evaluate(points, objective):
    """Synthetic evaluation: objective(dict of axis values) -> float."""
    return {p: objective(dict(p)) for p in points}


# -- grid --------------------------------------------------------------------


def test_grid_proposes_every_point_once_then_stops():
    space = space_2x3()
    driver = GridDriver()
    batch = driver.propose(space, {})
    assert batch == space.grid()
    done = evaluate(batch, lambda v: 0.0)
    assert driver.propose(space, done) == []


# -- random ------------------------------------------------------------------


def test_random_is_seeded_distinct_and_within_the_grid():
    space = space_2x3()
    a = RandomDriver(samples=4, seed=9).propose(space, {})
    b = RandomDriver(samples=4, seed=9).propose(space, {})
    assert a == b  # same seed, same draw
    assert len(a) == len(set(a)) == 4
    grid = set(space.grid())
    assert all(p in grid for p in a)
    c = RandomDriver(samples=4, seed=10).propose(space, {})
    assert set(c) != set(a) or c == a  # different seed may differ; never invalid
    assert all(p in grid for p in c)


def test_random_caps_at_grid_size_and_preserves_grid_order():
    space = space_2x3()
    batch = RandomDriver(samples=99, seed=0).propose(space, {})
    assert batch == space.grid()
    with pytest.raises(ConfigError):
        RandomDriver(samples=0)


def test_random_second_round_proposes_nothing_new():
    space = space_2x3()
    driver = RandomDriver(samples=3, seed=1)
    batch = driver.propose(space, {})
    assert driver.propose(space, evaluate(batch, lambda v: 1.0)) == []


# -- sensitivity helper ------------------------------------------------------


def test_axis_sensitivities_reads_one_factor_deltas():
    space = space_2x3()
    driver = RefineDriver(rounds=0)
    tornado = driver.propose(space, {})
    # objective responds 10x more to the dep list than to the LH-WPQ
    done = evaluate(
        tornado,
        lambda v: v["asap.dependence_list_entries"] * 10.0
        + v["asap.lh_wpq_entries"],
    )
    sens = axis_sensitivities(space, done)
    assert sens["asap.dependence_list_entries"] > sens["asap.lh_wpq_entries"] > 0


def test_axis_sensitivities_without_baseline_point_is_zero():
    space = space_2x3()
    some = evaluate([space.grid()[0]], lambda v: 5.0)
    center = space.center_point()
    assert center not in some
    sens = axis_sensitivities(space, some)
    assert all(v == 0.0 for v in sens.values())


# -- refine ------------------------------------------------------------------


def test_refine_round0_is_the_tornado_set():
    space = space_2x3()
    batch = RefineDriver().propose(space, {})
    center = space.center_point()
    assert batch[0] == center
    # center + (min,max) per axis, deduplicated; center has dep=4 = min
    assert len(batch) == 4
    assert all(len(p) == 2 for p in batch)


def test_refine_bisects_the_most_sensitive_axis_around_the_best_point():
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [2, 64], "dep_list_entries": [2, 32]},
        workloads=["HM"],
    )
    driver = RefineDriver(rounds=2)
    tornado = driver.propose(space, {})
    # dep list dominates the objective; best point has dep=32
    done = evaluate(tornado, lambda v: v["asap.dependence_list_entries"] * 100.0)
    batch = driver.propose(space, done)
    assert batch, "refiner should bisect"
    for p in batch:
        values = dict(p)
        assert values["asap.dependence_list_entries"] == 17  # mid(2, 32)
    done.update(evaluate(batch, lambda v: v["asap.dependence_list_entries"] * 100.0))
    batch2 = driver.propose(space, done)
    # next bisection narrows toward 32: mid(17, 32) = 24 (or falls back)
    assert all(dict(p)["asap.dependence_list_entries"] == 24 for p in batch2)


def test_refine_respects_round_budget_and_unsplittable_gaps():
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [2, 3]}, workloads=["HM"]
    )
    driver = RefineDriver(rounds=5)
    tornado = driver.propose(space, {})
    done = evaluate(tornado, lambda v: float(v["asap.lh_wpq_entries"]))
    # adjacent integers cannot be bisected: the driver must stop cleanly
    assert driver.propose(space, done) == []
    with pytest.raises(ConfigError):
        RefineDriver(rounds=-1)


def test_refine_never_reproposes_an_evaluated_point():
    space = space_2x3()
    driver = RefineDriver(rounds=10)
    evaluated = {}
    seen = set()
    for _ in range(12):
        batch = driver.propose(space, evaluated)
        if not batch:
            break
        for p in batch:
            assert p not in seen
            seen.add(p)
        evaluated.update(
            evaluate(batch, lambda v: float(v["asap.lh_wpq_entries"]))
        )
    else:
        pytest.fail("refiner never terminated")


# -- registry ----------------------------------------------------------------


def test_make_driver_dispatch_and_unknown_name():
    assert isinstance(make_driver("grid"), GridDriver)
    assert isinstance(make_driver("random", samples=2, seed=1), RandomDriver)
    assert isinstance(make_driver("refine", rounds=1), RefineDriver)
    with pytest.raises(ConfigError, match="unknown driver"):
        make_driver("anneal")

"""Figure 7: speedup over SW at 64B and 2KB regions.

Paper geomeans: HWRedo 1.49x, HWUndo 1.60x, ASAP 2.25x, NP 2.34x.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import fig7


def test_fig7(benchmark, workloads, quick):
    result = run_figure(benchmark, fig7.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    # every hardware scheme beats SW; ASAP beats both sync-commit schemes;
    # NP bounds ASAP from above (within measurement slack)
    assert gm["HWRedo"] > 1.0 and gm["HWUndo"] > 1.0
    assert gm["ASAP"] > gm["HWRedo"]
    assert gm["ASAP"] > gm["HWUndo"]
    assert gm["NP"] >= gm["ASAP"] * 0.95

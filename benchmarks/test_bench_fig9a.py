"""Figure 9a: incremental benefit of ASAP's traffic optimizations.

Paper: +C saves ~8%, +LP a further ~33%, +DP a further ~31%.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import fig9a


def test_fig9a(benchmark, workloads, quick):
    result = run_figure(benchmark, fig9a.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    assert gm["ASAP-No-Opt"] > gm["ASAP+C"] > gm["ASAP+C+LP"] >= gm["ASAP"]
    # Q gains the most from DPO dropping (Sec. 7.2's callout)
    if "Q" in result.rows:
        q_gain = result.rows["Q"]["ASAP+C+LP"] / result.rows["Q"]["ASAP"]
        assert q_gain > 1.3

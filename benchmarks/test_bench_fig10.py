"""Figure 10: throughput sensitivity to PM latency (1x..16x).

Paper shape: ASAP tracks NP across the sweep; both synchronous-commit
schemes degrade; HWUndo is the most latency-sensitive.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import fig10


def test_fig10(benchmark, workloads, quick):
    result = run_figure(benchmark, fig10.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    for m in (1, 2, 4, 16):
        assert gm[f"ASAP@{m}x"] > gm[f"HWUndo@{m}x"], m
        assert gm[f"ASAP@{m}x"] > gm[f"HWRedo@{m}x"], m
    # ASAP robust: loses little of its NP-relative standing from 1x to 16x
    assert gm["ASAP@16x"] > 0.5 * gm["ASAP@1x"]
    # the sync schemes fall away from NP as PM slows
    assert gm["HWUndo@16x"] < gm["HWUndo@1x"]

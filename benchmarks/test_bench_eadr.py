"""Ext. 4: ASAP vs idealized eADR - performance parity without the
battery (the paper's Sec. 8 argument)."""

from benchmarks.conftest import run_figure
from repro.harness.experiments import eadr_cmp


def test_eadr(benchmark, workloads, quick):
    result = run_figure(benchmark, eadr_cmp.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    # ASAP achieves eADR's (= near-NP) performance...
    assert gm["ASAP/eADR throughput"] > 0.9
    # ...without battery-backing the whole cache hierarchy
    assert "x less" in result.notes

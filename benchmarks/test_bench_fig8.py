"""Figure 8: cycles per atomic region normalized to NP.

Paper geomeans: HWRedo 1.69x, HWUndo 1.61x, ASAP 1.08x.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import fig8


def test_fig8(benchmark, workloads, quick):
    result = run_figure(benchmark, fig8.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    assert gm["SW"] > gm["HWUndo"]
    assert gm["SW"] > gm["HWRedo"]
    assert gm["HWUndo"] > gm["ASAP"]
    assert gm["HWRedo"] > gm["ASAP"]
    # asynchronous commit keeps region latency near NP's
    assert gm["ASAP"] < 1.7

"""Section 7.4: sensitivity to LH-WPQ size.

Paper: a 16-entry LH-WPQ runs ASAP at 0.78x of the 128-entry config, yet
still outperforms HWUndo (1.10x) and HWRedo (1.18x).
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import lhwpq


def test_lhwpq(benchmark, workloads, quick):
    result = run_figure(benchmark, lhwpq.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    # shrinking the LH-WPQ costs something but not everything...
    assert 0.3 < gm["ASAP16/ASAP128"] < 1.02
    # ...and small-ASAP still beats the full-size sync baselines
    assert gm["ASAP16/HWUndo"] > 1.0
    assert gm["ASAP16/HWRedo"] > 1.0

"""Section 6.2: hardware area overhead (Table 2 machine).

Paper: ~2.5% total (<3%), split 0.8% core / 1.7% uncore by McPAT.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import area


def test_area(benchmark):
    result = run_figure(benchmark, area.run)
    cells = result.rows["measured"]
    assert cells["total %"] < 3.0

"""Design-choice ablations (DESIGN.md's extension index): DPO distance,
WPQ capacity, and the Sec. 5.3 Bloom-filter/spill path."""

from benchmarks.conftest import run_figure
from repro.harness.experiments import ablations


def test_dpo_distance(benchmark):
    result = run_figure(benchmark, ablations.run_dpo_distance)
    dpos = result.rows["DPOs initiated"]
    # d=1 issues many more DPOs; beyond 2 the curve is flat (the paper's
    # "no benefit beyond four")
    assert dpos["d=1"] > 1.3
    assert abs(dpos["d=8"] - dpos["d=4"]) < 0.15


def test_wpq_capacity(benchmark):
    result = run_figure(benchmark, ablations.run_wpq_size)
    asap = result.rows["ASAP"]
    # ASAP sustains throughput with a 2-entry persistence-domain buffer
    assert asap["wpq=2"] > 0.95 * asap["wpq=32"]
    # and stays above the synchronous baselines at every size
    for col in asap:
        assert asap[col] > result.rows["HWUNDO"][col]
        assert asap[col] > result.rows["SW"][col]


def test_bloom_filter(benchmark):
    result = run_figure(benchmark, ablations.run_bloom)
    good = result.rows["1KB filter"]
    bad = result.rows["1-bit filter"]
    # the spill path fires and the buffer finds the owners
    assert good["spills"] > 0
    assert good["hits"] == bad["hits"]
    # the 1 KB filter screens reload probes; a degenerate one wastes many
    assert good["false positives"] < bad["false positives"]
    assert bad["false positives"] > 50


def test_fence_batching(benchmark):
    result = run_figure(benchmark, ablations.run_fence_batching)
    row = result.rows["throughput"]
    # per-region fencing forfeits most of the async-commit win; batching
    # recovers it (Sec. 5.2's guidance)
    assert row["every 1"] < 0.7
    assert row["every 4"] > row["every 1"]
    assert row["every 16"] > 0.9

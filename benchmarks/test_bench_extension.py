"""Extension: undo-ASAP vs the Fig. 2c redo-ASAP variant."""

from benchmarks.conftest import run_figure
from repro.harness.experiments import extension


def test_extension(benchmark, workloads, quick):
    result = run_figure(benchmark, extension.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    # the paper's Sec. 3 design rationale: with asynchronous commit, undo
    # logging is at least as fast and far cheaper in PM traffic
    assert gm["redo throughput"] <= 1.05
    assert gm["redo traffic"] > 1.5

"""Figure 1: overhead of LPOs and DPOs in a software approach.

Paper geomeans: DPO Only 0.58x, LPO & DPO 0.31x of NP throughput.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import fig1


def test_fig1(benchmark, workloads, quick):
    result = run_figure(benchmark, fig1.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    assert gm["DPO Only"] < 1.0
    assert gm["LPO & DPO"] < gm["DPO Only"]

"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures on the
scaled-down "quick" machine, prints the paper-vs-measured table, and
asserts the paper's qualitative shape (who wins, ordering, crossovers).

Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs:

* ``ASAP_BENCH_WORKLOADS`` - comma-separated Table 3 subset (default: all
  nine, exactly the paper's rows).
* ``ASAP_BENCH_FULL=1`` - use the full Table 2 machine (slow).
* ``ASAP_BENCH_JOBS=N`` - fan each figure's simulation cells out across N
  worker processes (default 1: serial). Rows are identical either way;
  only the wall time changes. The result cache is never used here - a
  benchmark that reads cached cells would time the cache, not the
  simulator.
"""

import os

import pytest

from repro.workloads import workload_names


def bench_workloads():
    env = os.environ.get("ASAP_BENCH_WORKLOADS")
    if env:
        return [w.strip() for w in env.split(",") if w.strip()]
    return workload_names()


def bench_quick() -> bool:
    return os.environ.get("ASAP_BENCH_FULL", "0") != "1"


def bench_jobs() -> int:
    return max(1, int(os.environ.get("ASAP_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def workloads():
    return bench_workloads()


@pytest.fixture(scope="session")
def quick():
    return bench_quick()


def run_figure(benchmark, run_fn, **kwargs):
    """Run a figure regeneration exactly once under the benchmark timer."""
    kwargs.setdefault("jobs", bench_jobs())
    result = benchmark.pedantic(lambda: run_fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_table())
    if "GeoMean" in result.rows:
        benchmark.extra_info.update(
            {f"geomean:{k}": round(v, 3) for k, v in result.rows["GeoMean"].items()}
        )
    return result

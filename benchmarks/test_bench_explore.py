"""Design-space exploration on the quick machine (docs/EXPLORE.md).

Times a small 2x2 grid - LH-WPQ depth x Dependence List capacity - and
asserts the qualitative shape: shrinking either structure costs
throughput but saves area, so the frontier keeps more than one point
unless one configuration strictly wins.
"""

from benchmarks.conftest import bench_jobs
from repro.explore import GridDriver, analyze, explore, SweepSpace


def test_explore_grid(benchmark, workloads, quick):
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [1, 16], "dep_list_entries": [8, 64]},
        workloads=workloads[:2] or ["HM"],
        scheme="asap",
    )
    result = benchmark.pedantic(
        lambda: explore(space, GridDriver(), quick=quick, jobs=bench_jobs()),
        rounds=1,
        iterations=1,
    )
    assert len(result.outcomes) == 4
    analysis = analyze(result)
    assert analysis.frontier, "frontier can never be empty"
    # area strictly grows with the structures, so the big-everything point
    # is on the frontier only if it also has the best throughput
    best = result.best()
    assert best in analysis.frontier
    benchmark.extra_info["frontier"] = len(analysis.frontier)
    benchmark.extra_info["dominated"] = len(analysis.dominated)

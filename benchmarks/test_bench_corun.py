"""The Sec. 1 co-run/lifetime claim: traffic optimizations pay off under
bandwidth contention (extension experiment)."""

from benchmarks.conftest import run_figure
from repro.harness.experiments import corun


def test_corun(benchmark, quick):
    result = run_figure(benchmark, corun.run, quick=quick)
    gm = result.rows["GeoMean"]
    # without the Sec. 5.1 optimizations, co-run throughput drops and PM
    # write volume (inverse lifetime) balloons
    assert gm["throughput"] < 0.98
    assert gm["PM writes"] > 1.5
    assert gm["lifetime proxy"] < 0.7
    # multi-tenant mix: the batch tenant's extra no-opt log traffic queues
    # ahead of the service tenant's persists, so the open-loop tenant pays
    # in tail latency too (docs/SERVICE.md)
    mix = result.rows["SVC+HM no-opt"]
    assert mix["throughput"] < 0.98
    assert mix["PM writes"] > 1.5
    assert mix["svc p99"] > 1.2

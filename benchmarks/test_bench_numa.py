"""Sec. 7.3's NUMA suitability claim, quantified (extension experiment)."""

from benchmarks.conftest import run_figure
from repro.harness.experiments import numa


def test_numa(benchmark, quick):
    result = run_figure(benchmark, numa.run, quick=quick)
    gm = result.rows["GeoMean"]
    # ASAP is markedly more robust to remote persist latency than the
    # synchronous-commit schemes at every remote multiplier...
    for m in (1, 4, 16):
        assert gm[f"ASAP@{m}x"] > 1.3 * gm[f"HWUndo@{m}x"], m
        assert gm[f"ASAP@{m}x"] > 1.3 * gm[f"HWRedo@{m}x"], m
    # ...and its advantage widens as the remote node slows down
    assert (gm["ASAP@4x"] / gm["HWUndo@4x"]) > (gm["ASAP@1x"] / gm["HWUndo@1x"])

"""Figure 9b: PM write traffic across schemes, normalized to ASAP.

Paper geomeans (normalized to ASAP): SW 2.56x, HWUndo 1.92x, HWRedo 1.61x.
"""

from benchmarks.conftest import run_figure
from repro.harness.experiments import fig9b


def test_fig9b(benchmark, workloads, quick):
    result = run_figure(benchmark, fig9b.run, quick=quick, workloads=workloads)
    gm = result.rows["GeoMean"]
    # ASAP generates the least PM write traffic; SW the most; redo beats
    # undo (its DRAM-filtered post-commit DPOs) - the paper's ordering
    assert gm["SW"] > gm["HWUndo"] > 1.0
    assert gm["SW"] > gm["HWRedo"] > 1.0

"""The event queue at the heart of the simulator.

Every timed activity in the machine is a callback scheduled at an absolute
cycle. Callbacks scheduled for the same cycle run in scheduling order
(FIFO), which keeps runs bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is assigned by the
    scheduler and guarantees FIFO order among same-cycle events.
    """

    time: int
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing; cheap (lazy deletion)."""
        self.cancelled = True


class Scheduler:
    """A deterministic discrete-event scheduler with an integer clock."""

    def __init__(self):
        self._queue: list[Event] = []
        self._seq = 0
        self.now: int = 0
        self._running = False

    def __len__(self) -> int:
        return sum(1 for ev in self._queue if not ev.cancelled)

    def at(self, time: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        ev = Event(int(time), self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn)

    def peek_time(self) -> Optional[int]:
        """Return the cycle of the next pending event, or None when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = ev.time
            ev.fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this cycle (events at
                exactly ``until`` still run).
            max_events: safety valve against runaway simulations.

        Returns:
            The number of events executed.
        """
        executed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible livelock"
                )
            self.step()
            executed += 1
        if until is not None and self.now < until:
            # Idle until the bound (the next event, if any, is beyond it).
            self.now = until
        return executed


class _FastEvent:
    """A scheduled callback, slimmed for the bucket queue.

    Buckets are FIFO lists keyed by cycle, so no ``seq`` is needed for
    ordering; ``time`` is kept because the WPQ's expedite logic reads the
    pending drain event's deadline. Duck-type compatible with
    :class:`Event` for every consumer in the tree (``cancel``/``time``).
    """

    __slots__ = ("time", "fn", "cancelled")

    def __init__(self, time: int, fn: Callable[[], Any]):
        self.time = time
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class FastScheduler(Scheduler):
    """A bucket-queue scheduler with the same ordering semantics.

    Same-cycle events dominate the event mix (a completed access wakes its
    dependents at the same cycle), so the reference heap pays an ``Event``
    comparison per push/pop for an ordering that is almost always "append".
    This variant keeps one FIFO list per distinct cycle and a heap of the
    distinct cycles only. Buckets drain via a cursor, so appends during
    drain (an event at ``now`` scheduling another event at ``now``) land
    behind the cursor exactly as a larger ``seq`` would in the heap - the
    (time, scheduling-order) execution order is identical to
    :class:`Scheduler`, which the differential-identity gate
    (``tests/integration/test_vectorized_diff.py``) checks end to end.

    The heap's top time is only popped once its bucket is exhausted:
    popping early would pin the head and let a later ``at(t')`` with
    ``now <= t' < head`` be mis-ordered behind it.
    """

    def __init__(self):
        super().__init__()
        self._buckets: dict[int, list[_FastEvent]] = {}
        self._cursors: dict[int, int] = {}
        self._times: list[int] = []

    def __len__(self) -> int:
        return sum(
            1
            for t, bucket in self._buckets.items()
            for ev in bucket[self._cursors.get(t, 0) :]
            if not ev.cancelled
        )

    def at(self, time: int, fn: Callable[[], Any]) -> _FastEvent:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        time = int(time)
        ev = _FastEvent(time, fn)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [ev]
            heapq.heappush(self._times, time)
        else:
            bucket.append(ev)
        return ev

    def after(self, delay: int, fn: Callable[[], Any]) -> _FastEvent:
        # Full body instead of delegating to at(): after() runs once per
        # event and the extra frame is measurable. delay >= 0 implies the
        # no-scheduling-in-the-past invariant.
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + int(delay)
        ev = _FastEvent(time, fn)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [ev]
            heapq.heappush(self._times, time)
        else:
            bucket.append(ev)
        return ev

    def peek_time(self) -> Optional[int]:
        while self._times:
            t = self._times[0]
            bucket = self._buckets[t]
            i = self._cursors.get(t, 0)
            n = len(bucket)
            while i < n and bucket[i].cancelled:
                i += 1
            if i < n:
                if i:
                    self._cursors[t] = i
                return t
            del self._buckets[t]
            self._cursors.pop(t, None)
            heapq.heappop(self._times)
        return None

    def step(self) -> bool:
        t = self.peek_time()
        if t is None:
            return False
        bucket = self._buckets[t]
        i = self._cursors.get(t, 0)
        ev = bucket[i]
        self._cursors[t] = i + 1
        self.now = t
        ev.fn()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Fused drain loop: one bucket at a time, no per-event peeking.

        Firing order is exactly :meth:`step` in a loop (the tie-break
        cursor semantics are shared); this override only removes the
        per-event ``peek_time``/dict-lookup overhead of the generic
        ``run``. Event callbacks may append to the current bucket (the
        length is re-read after every fire) and schedule arbitrary future
        cycles (the heap is consulted only between buckets).
        """
        executed = 0
        buckets = self._buckets
        cursors = self._cursors
        times = self._times
        while times:
            t = times[0]
            if until is not None and t > until:
                break
            bucket = buckets[t]
            i = cursors.get(t, 0)
            n = len(bucket)
            if i >= n:
                del buckets[t]
                cursors.pop(t, None)
                heapq.heappop(times)
                continue
            while i < n:
                ev = bucket[i]
                i += 1
                cursors[t] = i
                if ev.cancelled:
                    # now is NOT advanced for cancelled events (a cancelled
                    # drain tick can be the queue's last entry, and the
                    # final clock value is part of the RunResult).
                    continue
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                self.now = t
                ev.fn()
                executed += 1
                n = len(bucket)
        if until is not None and self.now < until:
            self.now = until
        return executed

"""The event queue at the heart of the simulator.

Every timed activity in the machine is a callback scheduled at an absolute
cycle. Callbacks scheduled for the same cycle run in scheduling order
(FIFO), which keeps runs bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)``; ``seq`` is assigned by the
    scheduler and guarantees FIFO order among same-cycle events.
    """

    time: int
    seq: int
    fn: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing; cheap (lazy deletion)."""
        self.cancelled = True


class Scheduler:
    """A deterministic discrete-event scheduler with an integer clock."""

    def __init__(self):
        self._queue: list[Event] = []
        self._seq = 0
        self.now: int = 0
        self._running = False

    def __len__(self) -> int:
        return sum(1 for ev in self._queue if not ev.cancelled)

    def at(self, time: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past (now={self.now}, time={time})"
            )
        ev = Event(int(time), self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay: int, fn: Callable[[], Any]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn)

    def peek_time(self) -> Optional[int]:
        """Return the cycle of the next pending event, or None when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = ev.time
            ev.fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Args:
            until: stop once the clock would pass this cycle (events at
                exactly ``until`` still run).
            max_events: safety valve against runaway simulations.

        Returns:
            The number of events executed.
        """
        executed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible livelock"
                )
            self.step()
            executed += 1
        if until is not None and self.now < until:
            # Idle until the bound (the next event, if any, is beyond it).
            self.now = until
        return executed

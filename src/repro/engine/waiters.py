"""Blocking primitives built on the scheduler.

Hardware structures in the model (WPQ, CL List slots, Dep slots, locks)
block their clients when full or busy; these helpers centralise the
wake-one / wake-all bookkeeping so each structure does not reinvent it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from repro.engine.scheduler import Scheduler


class WaitQueue:
    """FIFO of parked callbacks, woken one at a time.

    Used for finite resources: a client that finds the resource full parks a
    continuation here; whoever frees a unit wakes exactly one client.
    """

    def __init__(self, scheduler: Scheduler):
        self._scheduler = scheduler
        self._waiters: Deque[Callable[[], None]] = deque()

    def __len__(self) -> int:
        return len(self._waiters)

    def park(self, resume: Callable[[], None]) -> None:
        """Park ``resume`` until :meth:`wake_one` reaches it."""
        self._waiters.append(resume)

    def wake_one(self) -> bool:
        """Schedule the oldest parked continuation for this cycle.

        Returns True when a waiter existed.
        """
        if not self._waiters:
            return False
        resume = self._waiters.popleft()
        self._scheduler.after(0, resume)
        return True

    def wake_all(self) -> int:
        """Schedule every parked continuation; returns how many."""
        count = 0
        while self.wake_one():
            count += 1
        return count


class Signal:
    """A broadcast condition: waiters block until :meth:`fire` is called.

    Unlike :class:`WaitQueue`, firing releases everyone (used for "region X
    has committed" style notifications such as ``asap_fence``).
    """

    def __init__(self, scheduler: Scheduler):
        self._scheduler = scheduler
        self._waiters: list[Callable[[], None]] = []
        self.fired = False

    def wait(self, resume: Callable[[], None]) -> None:
        """Run ``resume`` when the signal fires (immediately if it has)."""
        if self.fired:
            self._scheduler.after(0, resume)
        else:
            self._waiters.append(resume)

    def fire(self) -> None:
        """Release all current and future waiters."""
        if self.fired:
            return
        self.fired = True
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            self._scheduler.after(0, resume)

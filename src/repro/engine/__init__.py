"""Discrete-event simulation kernel.

A single :class:`~repro.engine.scheduler.Scheduler` drives the whole machine:
cores, memory controllers, and the ASAP commit machinery all schedule
callbacks on it. Determinism is guaranteed by breaking time ties with a
monotonically increasing sequence number.
"""

from repro.engine.scheduler import FastScheduler, Scheduler, Event
from repro.engine.waiters import WaitQueue, Signal

__all__ = ["Scheduler", "FastScheduler", "Event", "WaitQueue", "Signal"]

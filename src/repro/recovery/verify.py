"""Verification of recovered state against the commit oracle.

The contract: after recovery, every persistent data word any atomic region
ever wrote must hold exactly the value the commit oracle's committed image
holds. This single comparison implies:

* **atomicity** - an uncommitted region's writes are fully rolled back,
* **durability** - a committed region's writes all survive,
* **ordering** - since schemes only report commits in dependence order,
  the surviving set is dependence-closed.

It also implies the recovery-side invariant of docs/RECOVERY.md:
recovery must never make a consistent image worse. A defensively
*skipped* restore (broken undo chain on a legacy image; see
``repro.recovery.recover``) passes this check precisely because PM still
holds the committed value on the affected line - the oracle comparison
would catch a skip that was merely cautious rather than correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.mem.image import MemoryImage
from repro.sim.machine import Machine


@dataclass
class VerificationResult:
    ok: bool
    mismatches: List[Tuple[int, int, int]] = field(default_factory=list)
    words_checked: int = 0

    def explain(self) -> str:
        if self.ok:
            return f"recovered image consistent on {self.words_checked} words"
        lines = [
            f"  word {addr:#x}: expected {expect:#x}, recovered {got:#x}"
            for addr, expect, got in self.mismatches
        ]
        return "recovered image INCONSISTENT:\n" + "\n".join(lines)


def verify_recovery(machine: Machine, recovered: MemoryImage) -> VerificationResult:
    """Compare a recovered PM image with the machine's commit oracle."""
    oracle = machine.oracle
    mismatches = []
    for word in sorted(oracle.tracked_words):
        expect = oracle.committed.read_word(word)
        got = recovered.read_word(word)
        if expect != got:
            mismatches.append((word, expect, got))
    return VerificationResult(
        ok=not mismatches,
        mismatches=mismatches[:25],
        words_checked=len(oracle.tracked_words),
    )

"""Explainable recovery: ``asap-repro recover --explain``.

Recovery is the one phase of the model with no execution trace to read -
it runs over a dead machine's PM image and either produces a consistent
image or it does not. This module makes its reasoning inspectable: an
:class:`ExplainObserver` (the recovery-side twin of the simulator's
``SimObserver`` hook idiom) records every decision point of
:func:`repro.recovery.recover.recover` - the scan, the derived undo
order, each line's chain validation, and every restore applied or
defensively skipped - into a structured, deterministic JSON trace, plus a
human narrative rendered from the same data.

The trace format is versioned (:data:`SCHEMA_VERSION`) and validated by
:func:`validate_trace` against :data:`TRACE_SCHEMA` (a small hand-rolled
checker; the repo deliberately has no jsonschema dependency). CI smokes
the whole path on the regression corpus. Worked example and field-by-
field description: docs/RECOVERY.md.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Set, Tuple

from repro.mem.image import MemoryImage
from repro.recovery.crash import CrashState
from repro.recovery.recover import RecoveryObserver, RecoveryReport, recover

SCHEMA_VERSION = 1

#: the trace's shape: field -> (type, required). "list[dict]" values are
#: checked per-element against the nested spec in :data:`_NESTED`.
TRACE_SCHEMA: Dict[str, Tuple[type, bool]] = {
    "schema_version": (int, True),
    "log_kind": (str, True),
    "crash_cycle": (int, True),
    "ordered_line_log_persists": (bool, True),
    "defensive": (bool, True),
    "uncommitted": (list, True),  # [rid, ...]
    "dependence_entries": (list, True),  # persisted Dependence List
    "order": (list, True),  # undo/replay order, [rid, ...]
    "records": (list, True),
    "chains": (list, True),
    "decisions": (list, True),
    "summary": (dict, True),
}

_NESTED: Dict[str, Dict[str, Tuple[type, bool]]] = {
    "records": {
        "rid": (int, True),
        "header_addr": (int, True),
        "entries": (list, True),  # [{line, entry_addr, chained}]
    },
    "chains": {
        "line": (int, True),
        "writers": (list, True),  # undo order (dependents first)
        "complete": (bool, True),
        "reason": (str, False),
    },
    "decisions": {
        "step": (int, True),
        "action": (str, True),  # "restore" | "skip"
        "rid": (int, True),
        "line": (int, True),
        "entry_addr": (int, True),
        "reason": (str, False),
    },
    "summary": {
        "undone_rids": (list, True),
        "restored_lines": (int, True),
        "skipped_lines": (int, True),
        "records_scanned": (int, True),
        "records_matched": (int, True),
        "estimated_cycles": (int, True),
        "consistent": (bool, False),  # present when verified against a run
    },
}


def validate_trace(trace: dict) -> List[str]:
    """Check a trace against :data:`TRACE_SCHEMA`; returns problem strings
    (empty means valid)."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace is {type(trace).__name__}, expected dict"]
    for key, (typ, required) in TRACE_SCHEMA.items():
        if key not in trace:
            if required:
                problems.append(f"missing field {key!r}")
            continue
        if not isinstance(trace[key], typ):
            problems.append(
                f"field {key!r} is {type(trace[key]).__name__}, "
                f"expected {typ.__name__}"
            )
    for key in ("records", "chains", "decisions"):
        spec = _NESTED[key]
        for i, item in enumerate(trace.get(key) or []):
            if not isinstance(item, dict):
                problems.append(f"{key}[{i}] is not an object")
                continue
            for fkey, (ftyp, frequired) in spec.items():
                if fkey not in item:
                    if frequired:
                        problems.append(f"{key}[{i}] missing {fkey!r}")
                elif not isinstance(item[fkey], ftyp):
                    problems.append(
                        f"{key}[{i}].{fkey} is {type(item[fkey]).__name__}, "
                        f"expected {ftyp.__name__}"
                    )
    summary = trace.get("summary")
    if isinstance(summary, dict):
        for fkey, (ftyp, frequired) in _NESTED["summary"].items():
            if fkey not in summary:
                if frequired:
                    problems.append(f"summary missing {fkey!r}")
            elif not isinstance(summary[fkey], ftyp):
                problems.append(
                    f"summary.{fkey} is {type(summary[fkey]).__name__}, "
                    f"expected {ftyp.__name__}"
                )
    if trace.get("schema_version") not in (None, SCHEMA_VERSION):
        problems.append(
            f"schema_version {trace['schema_version']} != {SCHEMA_VERSION}"
        )
    return problems


class ExplainObserver(RecoveryObserver):
    """Records every recovery decision point into a JSON-able trace."""

    def __init__(self):
        self.records: List[dict] = []
        self.chains: List[dict] = []
        self.decisions: List[dict] = []
        self.order: List[int] = []
        self.dependence_entries: List[dict] = []
        self.uncommitted: List[int] = []
        self.markers: List[dict] = []
        self._step = 0

    # -- RecoveryObserver events ------------------------------------------

    def scan_started(self, state: CrashState, uncommitted: Set[int]) -> None:
        self.uncommitted = sorted(uncommitted)

    def record_matched(self, rid: int, header_addr: int, entries) -> None:
        self.records.append(
            {
                "rid": rid,
                "header_addr": header_addr,
                "entries": [
                    {"line": line, "entry_addr": addr, "chained": chained}
                    for line, addr, chained in entries
                ],
            }
        )

    def order_computed(self, order: List[int], entries: List[dict]) -> None:
        self.order = list(order)
        self.dependence_entries = [
            {"rid": e["rid"], "deps": sorted(e["deps"])} for e in entries
        ]

    def chain_checked(self, line: int, writers: List[int], complete: bool,
                      reason: str) -> None:
        self.chains.append(
            {
                "line": line,
                "writers": list(writers),
                "complete": complete,
                "reason": reason,
            }
        )

    def restore_applied(self, rid: int, line: int, entry_addr: int) -> None:
        self._step += 1
        self.decisions.append(
            {
                "step": self._step,
                "action": "restore",
                "rid": rid,
                "line": line,
                "entry_addr": entry_addr,
            }
        )

    def restore_skipped(self, rid: int, line: int, entry_addr: int,
                        reason: str) -> None:
        self._step += 1
        self.decisions.append(
            {
                "step": self._step,
                "action": "skip",
                "rid": rid,
                "line": line,
                "entry_addr": entry_addr,
                "reason": reason,
            }
        )

    def marker_found(self, rid: int, seq: int) -> None:
        self.markers.append({"rid": rid, "seq": seq})

    # -- trace assembly ----------------------------------------------------

    def trace(self, state: CrashState, report: RecoveryReport,
              defensive: bool) -> dict:
        out = {
            "schema_version": SCHEMA_VERSION,
            "log_kind": state.log_kind,
            "crash_cycle": state.crash_cycle,
            "ordered_line_log_persists": state.ordered_line_log_persists,
            "defensive": defensive,
            "uncommitted": self.uncommitted
            or sorted(e["rid"] for e in state.dependence_entries),
            "dependence_entries": self.dependence_entries
            or [
                {"rid": e["rid"], "deps": sorted(e["deps"])}
                for e in state.dependence_entries
            ],
            "order": self.order,
            "records": self.records,
            "chains": self.chains,
            "decisions": self.decisions,
            "summary": {
                "undone_rids": list(report.undone_rids),
                "restored_lines": report.restored_lines,
                "skipped_lines": report.skipped_lines,
                "records_scanned": report.records_scanned,
                "records_matched": report.records_matched,
                "estimated_cycles": report.estimated_cycles,
            },
        }
        if self.markers:
            out["markers"] = self.markers
        return out


def explain_recovery(
    state: CrashState, defensive: bool = True
) -> Tuple[MemoryImage, RecoveryReport, dict]:
    """Run :func:`~repro.recovery.recover.recover` with an
    :class:`ExplainObserver` attached; returns the recovered image, the
    report, and the (schema-valid, deterministic) trace."""
    observer = ExplainObserver()
    image, report = recover(state, defensive=defensive, observer=observer)
    return image, report, observer.trace(state, report, defensive)


def render_narrative(trace: dict) -> str:
    """The trace as a step-by-step human-readable recovery story."""
    lines: List[str] = []
    kind = trace["log_kind"]
    lines.append(
        f"crash at cycle {trace['crash_cycle']} ({kind} log, "
        + (
            "ordered same-line log persists"
            if trace["ordered_line_log_persists"]
            else "LEGACY unordered same-line log persists"
        )
        + ")"
    )
    unc = trace["uncommitted"]
    lines.append(
        f"dependence list: {len(unc)} uncommitted region(s) "
        f"{[hex(r) for r in unc]}"
    )
    for e in trace["dependence_entries"]:
        deps = ", ".join(hex(d) for d in e["deps"]) or "none"
        lines.append(f"  region {e['rid']:#x}: outstanding deps {deps}")
    verb = "replay (commit-marker) order" if kind == "redo" else "undo order"
    lines.append(
        f"{verb}: " + (" -> ".join(hex(r) for r in trace["order"]) or "empty")
    )
    lines.append(
        f"log scan: {trace['summary']['records_scanned']} record(s) read, "
        f"{trace['summary']['records_matched']} matched"
    )
    for rec in trace["records"]:
        ent = ", ".join(
            f"{e['line']:#x}{' (chained)' if e['chained'] else ''}"
            for e in rec["entries"]
        )
        lines.append(
            f"  record @{rec['header_addr']:#x} rid {rec['rid']:#x}: "
            f"entries [{ent or 'none confirmed'}]"
        )
    for chain in trace["chains"]:
        verdict = "complete" if chain["complete"] else "BROKEN"
        lines.append(
            f"chain for line {chain['line']:#x}: writers "
            f"{[hex(w) for w in chain['writers']]} -> {verdict}"
        )
        if chain["reason"]:
            lines.append(f"    {chain['reason']}")
    for d in trace["decisions"]:
        if d["action"] == "restore":
            lines.append(
                f"step {d['step']}: restore line {d['line']:#x} from log "
                f"entry @{d['entry_addr']:#x} (region {d['rid']:#x})"
            )
        else:
            lines.append(
                f"step {d['step']}: SKIP line {d['line']:#x} "
                f"(region {d['rid']:#x}): {d.get('reason', '')}"
            )
    s = trace["summary"]
    tail = (
        f"done: {len(s['undone_rids'])} region(s) processed, "
        f"{s['restored_lines']} line(s) restored"
    )
    if s["skipped_lines"]:
        tail += f", {s['skipped_lines']} line(s) defensively left untouched"
    tail += f", ~{s['estimated_cycles']} cycles"
    if "consistent" in s:
        tail += (
            "; verified CONSISTENT" if s["consistent"] else "; INCONSISTENT"
        )
    lines.append(tail)
    return "\n".join(lines)


# -- CLI (the ``asap-repro recover`` subcommand) ----------------------------


def main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="asap-repro recover",
        description="Crash a corpus case and replay recovery step by step",
    )
    parser.add_argument(
        "--case",
        required=True,
        metavar="FILE.json",
        help="a fuzz-corpus case file (tests/property/corpus/*.json)",
    )
    parser.add_argument(
        "--crash-frac",
        type=float,
        default=None,
        metavar="F",
        help="crash at F * total cycles (default: the case's first pinned "
        "crash_frac, else 0.5)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the step-by-step recovery narrative",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the structured recovery trace as JSON to FILE "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--legacy-line-order",
        action="store_true",
        help="run the case under the pre-fix same-line log-persist model",
    )
    parser.add_argument(
        "--no-defensive",
        action="store_true",
        help="disable recovery's chain-completeness validation (reproduces "
        "the raw pre-fix corruption on legacy images)",
    )
    args = parser.parse_args(argv)

    from dataclasses import replace as dc_replace

    from repro.harness.fuzz import build_machine, load_corpus_entry
    from repro.recovery.crash import crash_machine
    from repro.recovery.verify import verify_recovery

    case, _meta = load_corpus_entry(args.case)
    if args.legacy_line_order:
        case = dc_replace(case, ordered_line_log_persists=False)
    frac = args.crash_frac
    if frac is None:
        frac = case.crash_fracs[0] if case.crash_fracs else 0.5

    total = build_machine(case).run().cycles
    at_cycle = max(1, int(total * frac))
    machine = build_machine(case)
    state = crash_machine(machine, at_cycle=at_cycle)
    image, report, trace = explain_recovery(
        state, defensive=not args.no_defensive
    )
    verdict = verify_recovery(machine, image)
    trace["summary"]["consistent"] = verdict.ok

    problems = validate_trace(trace)
    if args.explain:
        print(render_narrative(trace))
    if args.json:
        payload = json.dumps(trace, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"wrote {args.json}")
    if not args.explain and not args.json:
        print(render_narrative(trace))
    print(verdict.explain())
    for p in problems:
        print(f"trace schema problem: {p}", file=sys.stderr)
    return 0 if verdict.ok and not problems else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""The paper's recovery procedure (Sec. 5.5, "Crash and Recovery").

Steps, exactly as described:

1. Read the persisted Dependence List: every entry is an uncommitted
   atomic region, with its outstanding dependencies.
2. Construct the directed acyclic graph of dependencies and traverse it to
   extract the happens-before order of the uncommitted regions.
3. Find each uncommitted region's log records (scanning the per-thread log
   areas for headers whose RID matches) and restore the old data values -
   dependents first, so that a line written by a chain of uncommitted
   regions unwinds to the value the last *committed* region gave it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.common.errors import RecoveryError
from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.mem.image import MemoryImage
from repro.recovery.crash import CrashState


@dataclass
class RecoveryReport:
    """What recovery did (asserted on by the test suite)."""

    undone_rids: List[int] = field(default_factory=list)
    restored_lines: int = 0
    records_scanned: int = 0
    records_matched: int = 0

    #: simple cost model for the software recovery pass (cycles): one PM
    #: line read per scanned record header, one read + one write per
    #: restored line. Recovery time is not a paper figure, but related
    #: work (Anubis et al.) makes it a standard reporting axis.
    HEADER_READ_COST = 150
    LINE_RESTORE_COST = 150 + 60

    @property
    def undone_count(self) -> int:
        return len(self.undone_rids)

    @property
    def estimated_cycles(self) -> int:
        """Estimated recovery time under the cost model above."""
        return (
            self.records_scanned * self.HEADER_READ_COST
            + self.restored_lines * self.LINE_RESTORE_COST
        )


def _undo_order(entries: List[dict]) -> List[int]:
    """Reverse happens-before order: every region before its dependencies.

    ``entries[i]['deps']`` lists regions that must commit *before* entry i;
    undoing must therefore process entry i before any of its deps.
    """
    uncommitted: Set[int] = {e["rid"] for e in entries}
    # dependents[d] = regions that depend on d (must be undone before d).
    dependents: Dict[int, Set[int]] = {rid: set() for rid in uncommitted}
    pending_deps: Dict[int, int] = {}
    for entry in entries:
        live_deps = [d for d in entry["deps"] if d in uncommitted]
        pending_deps[entry["rid"]] = 0
        for dep in live_deps:
            dependents[dep].add(entry["rid"])
    for entry in entries:
        for dep in entry["deps"]:
            if dep in uncommitted:
                pending_deps[dep] = pending_deps.get(dep, 0) + 1
    # Kahn's algorithm: start from regions nothing depends on.
    ready = sorted(rid for rid, n in pending_deps.items() if n == 0)
    order: List[int] = []
    ready_set = list(ready)
    while ready_set:
        rid = ready_set.pop(0)
        order.append(rid)
        for entry in entries:
            if entry["rid"] == rid:
                for dep in entry["deps"]:
                    if dep in uncommitted:
                        pending_deps[dep] -= 1
                        if pending_deps[dep] == 0:
                            ready_set.append(dep)
    if len(order) != len(uncommitted):
        raise RecoveryError(
            "dependence cycle among uncommitted regions; the program "
            "violated the isolation discipline (Sec. 2.1)"
        )
    return order


def _scan_logs(state: CrashState, uncommitted: Set[int], report: RecoveryReport):
    """Find every uncommitted region's log records in the PM image.

    Returns {rid: [(data_line, entry_addr), ...]} in record-slot order.
    RIDs are unique for the lifetime of a run (monotonic LocalRIDs), so a
    stale header from a committed region can never alias an uncommitted
    one.
    """
    found: Dict[int, List[Tuple[int, int]]] = {rid: [] for rid in uncommitted}
    pm = state.pm_image
    for tid, segments in state.log_directory.items():
        for base, num_records, stride in segments:
            for i in range(num_records):
                header = base + i * stride
                report.records_scanned += 1
                rid = pm.read_word(header)
                if rid not in uncommitted:
                    continue
                report.records_matched += 1
                for slot in range(state.entries_per_record):
                    data_line = pm.read_word(header + (1 + slot) * WORD_BYTES)
                    if data_line == 0:
                        # Unused slot - or an entry whose LPO never reached
                        # the persistence domain. Skipping is safe: the
                        # LockBit guarantees such a line's new data never
                        # persisted either (no DPO, no eviction writeback).
                        continue
                    entry_addr = header + (1 + slot) * CACHE_LINE_BYTES
                    found[rid].append((data_line, entry_addr))
    return found


def recover(state: CrashState) -> Tuple[MemoryImage, RecoveryReport]:
    """Run recovery; returns the repaired PM image and a report.

    Dispatches on the crash state's log kind: the paper's undo procedure
    (Sec. 5.5) or the replay procedure of the asap_redo extension. The
    input image is not modified; recovery works on a copy, as a real
    implementation would only write whole restored lines.
    """
    if state.log_kind == "redo":
        return recover_redo(state)
    report = RecoveryReport()
    image = state.pm_image.copy()
    if not state.dependence_entries:
        return image, report
    uncommitted = {e["rid"] for e in state.dependence_entries}
    order = _undo_order(state.dependence_entries)
    logs = _scan_logs(state, uncommitted, report)
    for rid in order:
        # Undo this region: restore each logged line's old value. Within a
        # region a line is logged at most once (first write), so record
        # order is irrelevant.
        for data_line, entry_addr in logs.get(rid, ()):
            payload = {
                data_line + off: image.read_word(entry_addr + off)
                for off in range(0, CACHE_LINE_BYTES, WORD_BYTES)
            }
            image.apply(payload)
            report.restored_lines += 1
        report.undone_rids.append(rid)
    return image, report


def recover_redo(state: CrashState) -> Tuple[MemoryImage, RecoveryReport]:
    """Recovery for asynchronous-commit *redo* logging (the Fig. 2c
    extension implemented by ``asap_redo``).

    A region is durable iff its commit marker ``[rid, commit_seq]``
    persisted. Recovery replays every marked region's surviving log
    records in marker order (the total commit order), installing the
    logged new values in place; unmarked regions - including everything
    still in the persisted Dependence List - are simply ignored, since
    redo logging never let their data reach its home addresses. A marked
    region with no surviving records already completed its in-place
    updates before reclaiming its log, so the replay is a no-op for it.
    """
    report = RecoveryReport()
    image = state.pm_image.copy()
    uncommitted = {e["rid"] for e in state.dependence_entries}
    # 1. Collect durable commit markers, newest-last.
    markers: List[Tuple[int, int]] = []  # (commit_seq, rid)
    for tid, areas in state.marker_directory.items():
        for base, slots, stride in areas:
            for i in range(slots):
                rid = image.read_word(base + i * stride)
                seq = image.read_word(base + i * stride + WORD_BYTES)
                if rid != 0 and seq != 0 and rid not in uncommitted:
                    markers.append((seq, rid))
    markers.sort()
    committed = {rid for _seq, rid in markers}
    # 2. Locate surviving log records of the marked regions.
    logs = _scan_logs(state, committed, report)
    # 3. Replay in commit order: later regions' values overwrite earlier.
    for _seq, rid in markers:
        for data_line, entry_addr in logs.get(rid, ()):
            payload = {
                data_line + off: image.read_word(entry_addr + off)
                for off in range(0, CACHE_LINE_BYTES, WORD_BYTES)
            }
            image.apply(payload)
            report.restored_lines += 1
        report.undone_rids.append(rid)  # "processed", for redo
    return image, report

"""The paper's recovery procedure (Sec. 5.5, "Crash and Recovery").

Steps, exactly as described:

1. Read the persisted Dependence List: every entry is an uncommitted
   atomic region, with its outstanding dependencies.
2. Construct the directed acyclic graph of dependencies and traverse it to
   extract the happens-before order of the uncommitted regions.
3. Find each uncommitted region's log records (scanning the per-thread log
   areas for headers whose RID matches) and restore the old data values -
   dependents first, so that a line written by a chain of uncommitted
   regions unwinds to the value the last *committed* region gave it.

Invariants this module relies on (and defends; docs/RECOVERY.md):

* **Confirmed-entry rule**: a durable header never names an entry whose
  logged value is not itself durable (the LH-WPQ seals headers lazily and
  only over confirmed slots), so every ``(header word, entry line)`` pair
  recovery reads is internally consistent.
* **Per-line chain completeness** (``ordered_line_log_persists``): if a
  region's log entry for line L is durable, every earlier *uncommitted*
  writer of L in the dependence chain has a durable entry for L too. Step
  3 is only correct under this invariant - the entry restored last for L
  (the chain's earliest uncommitted writer's) is the only one whose "old
  value" predates the whole uncommitted chain. Images crashed under the
  legacy pre-fix model (``CrashState.ordered_line_log_persists`` False)
  do not carry the invariant; for those, :func:`recover` validates each
  line's chain via the durable :data:`~repro.core.log.CHAIN_BIT` flags
  and *skips* (with a diagnostic) every restore of a line whose chain is
  broken - the LockBit protocol guarantees PM still holds the committed
  value in exactly that case, so skipping never makes the image worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import RecoveryError
from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.core.log import decode_slot_word
from repro.mem.image import MemoryImage
from repro.recovery.crash import CrashState


class RecoveryObserver:
    """No-op observer of the recovery procedure's decision points.

    The recovery-side mirror of :class:`repro.common.observe.SimObserver`:
    subclass and override the events of interest; handlers must not mutate
    what they are handed. The explainable-recovery layer
    (:mod:`repro.recovery.explain`) is the primary consumer.
    """

    def scan_started(self, state: "CrashState", uncommitted: Set[int]) -> None:
        """Log scanning begins over the crash image's log directory."""

    def record_matched(self, rid: int, header_addr: int, entries) -> None:
        """A durable record header of an in-scope region was found;
        ``entries`` is its [(data_line, entry_addr, chained)] list."""

    def order_computed(self, order: List[int], entries: List[dict]) -> None:
        """The undo (or replay) order was derived from the crash state."""

    def chain_checked(self, line: int, writers: List[int], complete: bool,
                      reason: str) -> None:
        """Line ``line``'s undo chain was validated; ``writers`` is its
        durable uncommitted writers in undo (dependents-first) order."""

    def restore_applied(self, rid: int, line: int, entry_addr: int) -> None:
        """A logged old value was installed over ``line``."""

    def restore_skipped(self, rid: int, line: int, entry_addr: int,
                        reason: str) -> None:
        """A restore was defensively skipped (broken chain)."""

    def region_processed(self, rid: int) -> None:
        """All of ``rid``'s records were handled (undone or replayed)."""

    def marker_found(self, rid: int, seq: int) -> None:
        """Redo: a durable commit marker was found."""


@dataclass
class RecoveryReport:
    """What recovery did (asserted on by the test suite)."""

    undone_rids: List[int] = field(default_factory=list)
    restored_lines: int = 0
    records_scanned: int = 0
    records_matched: int = 0
    #: restores defensively skipped because the line's undo chain was
    #: incomplete (legacy images only; each item is a diagnostic dict
    #: ``{"line", "rid", "entry_addr", "reason"}``)
    skipped_restores: List[dict] = field(default_factory=list)

    #: simple cost model for the software recovery pass (cycles): one PM
    #: line read per scanned record header, one read + one write per
    #: restored line. Recovery time is not a paper figure, but related
    #: work (Anubis et al.) makes it a standard reporting axis.
    HEADER_READ_COST = 150
    LINE_RESTORE_COST = 150 + 60

    @property
    def undone_count(self) -> int:
        return len(self.undone_rids)

    @property
    def skipped_lines(self) -> int:
        """Distinct lines whose restores were defensively skipped."""
        return len({d["line"] for d in self.skipped_restores})

    @property
    def estimated_cycles(self) -> int:
        """Estimated recovery time under the cost model above."""
        return (
            self.records_scanned * self.HEADER_READ_COST
            + self.restored_lines * self.LINE_RESTORE_COST
        )


def _undo_order(entries: List[dict]) -> List[int]:
    """Reverse happens-before order: every region before its dependencies.

    ``entries[i]['deps']`` lists regions that must commit *before* entry i;
    undoing must therefore process entry i before any of its deps.
    """
    uncommitted: Set[int] = {e["rid"] for e in entries}
    # dependents[d] = regions that depend on d (must be undone before d).
    dependents: Dict[int, Set[int]] = {rid: set() for rid in uncommitted}
    pending_deps: Dict[int, int] = {}
    for entry in entries:
        live_deps = [d for d in entry["deps"] if d in uncommitted]
        pending_deps[entry["rid"]] = 0
        for dep in live_deps:
            dependents[dep].add(entry["rid"])
    for entry in entries:
        for dep in entry["deps"]:
            if dep in uncommitted:
                pending_deps[dep] = pending_deps.get(dep, 0) + 1
    # Kahn's algorithm: start from regions nothing depends on.
    ready = sorted(rid for rid, n in pending_deps.items() if n == 0)
    order: List[int] = []
    ready_set = list(ready)
    while ready_set:
        rid = ready_set.pop(0)
        order.append(rid)
        for entry in entries:
            if entry["rid"] == rid:
                for dep in entry["deps"]:
                    if dep in uncommitted:
                        pending_deps[dep] -= 1
                        if pending_deps[dep] == 0:
                            ready_set.append(dep)
    if len(order) != len(uncommitted):
        raise RecoveryError(
            "dependence cycle among uncommitted regions; the program "
            "violated the isolation discipline (Sec. 2.1)"
        )
    return order


def _scan_logs(
    state: CrashState,
    uncommitted: Set[int],
    report: RecoveryReport,
    observer: Optional[RecoveryObserver] = None,
):
    """Find every uncommitted region's log records in the PM image.

    Returns {rid: [(data_line, entry_addr, chained), ...]} in record-slot
    order; ``chained`` is the durable CHAIN_BIT flag (the entry's line had
    an uncommitted previous writer when it was logged). RIDs are unique
    for the lifetime of a run (monotonic LocalRIDs), so a stale header
    from a committed region can never alias an uncommitted one.
    """
    found: Dict[int, List[Tuple[int, int, bool]]] = {rid: [] for rid in uncommitted}
    pm = state.pm_image
    if observer is not None:
        observer.scan_started(state, set(uncommitted))
    for tid, segments in state.log_directory.items():
        for base, num_records, stride in segments:
            for i in range(num_records):
                header = base + i * stride
                report.records_scanned += 1
                rid = pm.read_word(header)
                if rid not in uncommitted:
                    continue
                report.records_matched += 1
                entries: List[Tuple[int, int, bool]] = []
                for slot in range(state.entries_per_record):
                    word = pm.read_word(header + (1 + slot) * WORD_BYTES)
                    if word == 0:
                        # Unused slot - or an entry whose LPO never reached
                        # the persistence domain. Skipping is safe: the
                        # LockBit guarantees such a line's new data never
                        # persisted either (no DPO, no eviction writeback).
                        continue
                    data_line, chained = decode_slot_word(word)
                    entry_addr = header + (1 + slot) * CACHE_LINE_BYTES
                    entries.append((data_line, entry_addr, chained))
                found[rid].extend(entries)
                if observer is not None:
                    observer.record_matched(rid, header, entries)
    return found


def _broken_chain_lines(
    state: CrashState,
    order: List[int],
    logs: Dict[int, List[Tuple[int, int, bool]]],
    observer: Optional[RecoveryObserver] = None,
) -> Dict[int, Tuple[int, str]]:
    """Per-line chain validation for legacy (pre-fix) crash images.

    For each line the final restored value is the one installed *last* in
    undo order - the chain's earliest durable uncommitted writer. If that
    writer's entry is ``chained`` (its predecessor was uncommitted when it
    logged) and the writer still has live uncommitted dependencies, the
    predecessor's entry for the line should have been durable too but is
    not: the chain is broken, and the "old value" about to be installed is
    data that never durably existed. (If none of the writer's deps is
    still uncommitted, every region it read from committed, so its logged
    value is committed data and the restore is sound.)

    Returns {line: (earliest_durable_rid, reason)} for the broken lines -
    **all** restores of such a line must be skipped, as one unit: the
    LockBit protocol kept every chained DPO for the line out of PM while
    any same-line LPO was unaccepted, so PM still holds the value the last
    committed writer gave it, and leaving it untouched is consistent.
    """
    uncommitted = {e["rid"] for e in state.dependence_entries}
    deps_of = {e["rid"]: set(e["deps"]) for e in state.dependence_entries}
    by_line: Dict[int, List[Tuple[int, bool]]] = {}
    for rid in order:
        for data_line, _entry_addr, chained in logs.get(rid, ()):
            by_line.setdefault(data_line, []).append((rid, chained))
    broken: Dict[int, Tuple[int, str]] = {}
    for line, writers in sorted(by_line.items()):
        earliest_rid, earliest_chained = writers[-1]  # installed last
        live_deps = sorted(deps_of.get(earliest_rid, set()) & uncommitted)
        complete = not (earliest_chained and live_deps)
        reason = ""
        if not complete:
            reason = (
                f"entry of region {earliest_rid} is mid-chain (CHAIN_BIT) "
                f"but no durable predecessor entry for line {line:#x} "
                f"exists among its live dependencies {live_deps}"
            )
            broken[line] = (earliest_rid, reason)
        if observer is not None:
            observer.chain_checked(
                line, [w for w, _c in writers], complete, reason
            )
    return broken


def recover(
    state: CrashState,
    defensive: bool = True,
    observer: Optional[RecoveryObserver] = None,
) -> Tuple[MemoryImage, RecoveryReport]:
    """Run recovery; returns the repaired PM image and a report.

    Dispatches on the crash state's log kind: the paper's undo procedure
    (Sec. 5.5) or the replay procedure of the asap_redo extension. The
    input image is not modified; recovery works on a copy, as a real
    implementation would only write whole restored lines.

    ``defensive`` (default on) validates per-line undo-chain completeness
    before restoring. On images crashed under the fixed scheme this never
    fires (the ordering rule makes every durable chain complete); on
    legacy images (``state.ordered_line_log_persists`` False) it skips
    restores of lines whose chain is broken instead of installing values
    that never durably existed - see :func:`_broken_chain_lines`. Pass
    ``defensive=False`` to reproduce the raw pre-fix corruption in
    regression demos.
    """
    if state.log_kind == "redo":
        return recover_redo(state, observer=observer)
    report = RecoveryReport()
    image = state.pm_image.copy()
    if not state.dependence_entries:
        return image, report
    uncommitted = {e["rid"] for e in state.dependence_entries}
    order = _undo_order(state.dependence_entries)
    if observer is not None:
        observer.order_computed(order, state.dependence_entries)
    logs = _scan_logs(state, uncommitted, report, observer=observer)
    broken: Dict[int, Tuple[int, str]] = {}
    if defensive and not state.ordered_line_log_persists:
        broken = _broken_chain_lines(state, order, logs, observer=observer)
    for rid in order:
        # Undo this region: restore each logged line's old value. Within a
        # region a line is logged at most once (first write), so record
        # order is irrelevant.
        for data_line, entry_addr, _chained in logs.get(rid, ()):
            if data_line in broken:
                reason = broken[data_line][1]
                report.skipped_restores.append(
                    {
                        "line": data_line,
                        "rid": rid,
                        "entry_addr": entry_addr,
                        "reason": reason,
                    }
                )
                if observer is not None:
                    observer.restore_skipped(rid, data_line, entry_addr, reason)
                continue
            payload = {
                data_line + off: image.read_word(entry_addr + off)
                for off in range(0, CACHE_LINE_BYTES, WORD_BYTES)
            }
            image.apply(payload)
            report.restored_lines += 1
            if observer is not None:
                observer.restore_applied(rid, data_line, entry_addr)
        report.undone_rids.append(rid)
        if observer is not None:
            observer.region_processed(rid)
    return image, report


def recover_redo(
    state: CrashState,
    observer: Optional[RecoveryObserver] = None,
) -> Tuple[MemoryImage, RecoveryReport]:
    """Recovery for asynchronous-commit *redo* logging (the Fig. 2c
    extension implemented by ``asap_redo``).

    A region is durable iff its commit marker ``[rid, commit_seq]``
    persisted. Recovery replays every marked region's surviving log
    records in marker order (the total commit order), installing the
    logged new values in place; unmarked regions - including everything
    still in the persisted Dependence List - are simply ignored, since
    redo logging never let their data reach its home addresses. A marked
    region with no surviving records already completed its in-place
    updates before reclaiming its log, so the replay is a no-op for it.

    Per-line chain validation is not needed here: a marker is issued only
    after every LPO of its region was accepted, so every replayed value is
    durable by construction (see :mod:`repro.persist.asap_redo`).
    """
    report = RecoveryReport()
    image = state.pm_image.copy()
    uncommitted = {e["rid"] for e in state.dependence_entries}
    # 1. Collect durable commit markers, newest-last.
    markers: List[Tuple[int, int]] = []  # (commit_seq, rid)
    for tid, areas in state.marker_directory.items():
        for base, slots, stride in areas:
            for i in range(slots):
                rid = image.read_word(base + i * stride)
                seq = image.read_word(base + i * stride + WORD_BYTES)
                if rid != 0 and seq != 0 and rid not in uncommitted:
                    markers.append((seq, rid))
    markers.sort()
    committed = {rid for _seq, rid in markers}
    if observer is not None:
        for seq, rid in markers:
            observer.marker_found(rid, seq)
        observer.order_computed(
            [rid for _seq, rid in markers], state.dependence_entries
        )
    # 2. Locate surviving log records of the marked regions.
    logs = _scan_logs(state, committed, report, observer=observer)
    # 3. Replay in commit order: later regions' values overwrite earlier.
    for _seq, rid in markers:
        for data_line, entry_addr, _chained in logs.get(rid, ()):
            payload = {
                data_line + off: image.read_word(entry_addr + off)
                for off in range(0, CACHE_LINE_BYTES, WORD_BYTES)
            }
            image.apply(payload)
            report.restored_lines += 1
            if observer is not None:
                observer.restore_applied(rid, data_line, entry_addr)
        report.undone_rids.append(rid)  # "processed", for redo
        if observer is not None:
            observer.region_processed(rid)
    return image, report

"""Crash injection and post-crash recovery (Sec. 5.5).

:func:`~repro.recovery.crash.crash_machine` stops a run at an arbitrary
cycle and performs the persistence-domain flush (WPQs, LH-WPQs, active
Dependence List entries). :func:`~repro.recovery.recover.recover` then
replays the paper's recovery procedure on the surviving PM image: build
the dependence DAG from the persisted Dependence List, derive the reverse
happens-before order, locate every uncommitted region's log records, and
restore the old values.

:mod:`repro.recovery.verify` checks the result against the run's commit
oracle: atomicity (no partial regions), durability (committed regions
survive), and ordering (no dependent region survives its dependency's
rollback).
"""

from repro.recovery.crash import CrashState, crash_machine
from repro.recovery.recover import RecoveryReport, recover
from repro.recovery.verify import verify_recovery

__all__ = [
    "CrashState",
    "crash_machine",
    "RecoveryReport",
    "recover",
    "verify_recovery",
]

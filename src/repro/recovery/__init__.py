"""Crash injection and post-crash recovery (Sec. 5.5).

:func:`~repro.recovery.crash.crash_machine` stops a run at an arbitrary
cycle and performs the persistence-domain flush (WPQs, LH-WPQs, active
Dependence List entries). :func:`~repro.recovery.recover.recover` then
replays the paper's recovery procedure on the surviving PM image: build
the dependence DAG from the persisted Dependence List, derive the reverse
happens-before order, locate every uncommitted region's log records, and
restore the old values.

:mod:`repro.recovery.verify` checks the result against the run's commit
oracle: atomicity (no partial regions), durability (committed regions
survive), and ordering (no dependent region survives its dependency's
rollback).

:mod:`repro.recovery.explain` replays recovery with every decision point
observed (``asap-repro recover --explain``): the scan, the derived undo
order, per-line chain validation, and each restore applied or
defensively skipped - as a narrative and a schema-validated JSON trace
(docs/RECOVERY.md).
"""

from repro.recovery.crash import CrashState, crash_machine
from repro.recovery.explain import ExplainObserver, explain_recovery, validate_trace
from repro.recovery.recover import RecoveryObserver, RecoveryReport, recover
from repro.recovery.verify import verify_recovery

__all__ = [
    "CrashState",
    "crash_machine",
    "ExplainObserver",
    "explain_recovery",
    "RecoveryObserver",
    "RecoveryReport",
    "recover",
    "validate_trace",
    "verify_recovery",
]

"""Crash injection: stop the machine and flush the persistence domain.

What survives a crash (Sec. 4.1, Sec. 5.5):

* persistent memory contents (the PM image),
* the WPQs (ADR flushes them to PM),
* the LH-WPQs (partially-filled log record headers reach PM),
* the active Dependence List entries (flushed so recovery can order the
  uncommitted regions).

What does not: caches, the volatile image, thread state registers, the CL
Lists, and the DRAM OwnerRID buffer (execution-time metadata only).
Persist ops still *backpressured at the controller* (not yet accepted
into a WPQ) are also lost - the asymmetry behind the incomplete-undo-
chain bug, and why the snapshot records whether the crashed machine
enforced ``ordered_line_log_persists`` (docs/RECOVERY.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mem.image import MemoryImage
from repro.sim.machine import Machine


@dataclass
class CrashState:
    """Everything recovery may look at after power is lost."""

    #: deep copy of persistent memory after the persistence-domain flush
    pm_image: MemoryImage
    #: persisted Dependence List entries: [{rid, state, deps}, ...]
    dependence_entries: List[dict]
    #: thread id -> list of (segment base, num records, record stride)
    log_directory: Dict[int, List[tuple]]
    entries_per_record: int
    #: cycle at which the crash hit (diagnostics only)
    crash_cycle: int = 0
    #: WPQ entries flushed by ADR (diagnostics only)
    flushed_wpq_entries: int = 0
    #: "undo" (ASAP) or "redo" (the asap_redo extension): selects the
    #: recovery procedure
    log_kind: str = "undo"
    #: redo only: thread id -> [(marker base, slots, stride)]
    marker_directory: Dict[int, List[tuple]] = field(default_factory=dict)
    #: whether the crashed machine enforced the per-line chain-ordering
    #: rule (``AsapParams.ordered_line_log_persists``). When False the
    #: surviving log carries no chain-completeness guarantee and recovery
    #: validates undo chains defensively (docs/RECOVERY.md).
    ordered_line_log_persists: bool = True


def crash_machine(machine: Machine, at_cycle: Optional[int] = None) -> CrashState:
    """Run ``machine`` until ``at_cycle`` (or from its current state) and
    pull the plug.

    Returns the :class:`CrashState` recovery operates on. The machine is
    marked crashed; executors stop issuing ops.
    """
    if at_cycle is not None:
        machine.run(until=at_cycle)
    machine.crashed = True
    flushed = machine.memory.flush_persistence_domain()
    machine.scheme.crash_flush()

    dependence_entries: List[dict] = []
    log_directory: Dict[int, List[tuple]] = {}
    marker_directory: Dict[int, List[tuple]] = {}
    entries_per_record = machine.config.asap.log_data_entries_per_record
    scheme = machine.scheme
    if hasattr(scheme, "dependence_snapshot"):
        dependence_entries = scheme.dependence_snapshot()
    if hasattr(scheme, "thread_logs"):
        for tid, log in scheme.thread_logs().items():
            log_directory[tid] = [
                (base, num, log.record_stride) for base, num in log.segments
            ]
            entries_per_record = log.entries_per_record
    if hasattr(scheme, "marker_directory"):
        marker_directory = scheme.marker_directory()

    return CrashState(
        pm_image=machine.pm_image.copy(),
        dependence_entries=dependence_entries,
        log_directory=log_directory,
        entries_per_record=entries_per_record,
        crash_cycle=machine.scheduler.now,
        flushed_wpq_entries=flushed,
        log_kind="redo" if marker_directory else "undo",
        marker_directory=marker_directory,
        ordered_line_log_persists=machine.config.asap.ordered_line_log_persists,
    )

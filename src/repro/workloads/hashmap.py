"""HM: insert/update entries in a chained hash table [27, 53].

A fixed bucket array of head pointers (one word each) with per-stripe
locks, so threads in different stripes proceed in parallel. Entries are
``[key, next]`` headers followed by the payload. Inserts prepend to the
chain (write entry, write bucket head); updates walk the chain (reads) and
overwrite the payload.

The structure is split into ``setup`` (bootstrap) and per-operation
generator methods so the open-loop service workloads
(:mod:`repro.workloads.service`) can drive the same PM-backed store with
request traffic instead of a fixed per-thread op count.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, register

_NUM_BUCKETS = 64
_NUM_STRIPES = 8


class _Entry:
    __slots__ = ("key", "next", "addr")

    def __init__(self, key: int, addr: int, nxt: Optional["_Entry"]):
        self.key = key
        self.addr = addr
        self.next = nxt


@register
class HashMap(Workload):
    """The HM benchmark."""

    name = "HM"
    description = "Insert/update entries in a hash table"

    def setup(self, machine: Machine) -> None:
        """Bootstrap the table: bucket array, stripe locks, initial items."""
        params = self.params
        rng = random.Random(params.seed + 3)
        # Bucket heads: one word per bucket, spread one per line to avoid
        # pathological false sharing between stripes.
        self.bucket_base = machine.heap.alloc(_NUM_BUCKETS * CACHE_LINE_BYTES)
        self.buckets: List[Optional[_Entry]] = [None] * _NUM_BUCKETS
        self.locks = [machine.new_lock(f"hm{s}") for s in range(_NUM_STRIPES)]
        self.shadow: Dict[int, _Entry] = {}
        self.setup_keys: List[int] = []
        for key in rng.sample(range(1, 1 << 30), params.setup_items):
            self._bootstrap_insert(machine, key)
            self.setup_keys.append(key)

    def _bucket_addr(self, b: int) -> int:
        return self.bucket_base + b * CACHE_LINE_BYTES

    @staticmethod
    def _hash_of(key: int) -> int:
        return (key * 2654435761) % _NUM_BUCKETS

    def _bootstrap_insert(self, machine: Machine, key: int) -> None:
        b = self._hash_of(key)
        entry = _Entry(key, self.alloc_node(machine, 2), self.buckets[b])
        machine.bootstrap_write(
            entry.addr, [key, entry.next.addr if entry.next else 0]
        )
        machine.bootstrap_write(
            entry.addr + CACHE_LINE_BYTES,
            self.payload_words(self.derive_value(self.params.seed, key, 0)),
        )
        machine.bootstrap_write(self._bucket_addr(b), [entry.addr])
        self.buckets[b] = entry
        self.shadow[key] = entry

    def stripe_lock(self, key: int):
        return self.locks[self._hash_of(key) % _NUM_STRIPES]

    def op_get(self, machine: Machine, key: int):
        """Read-only lookup: chain walk under the stripe lock, no region."""
        b = self._hash_of(key)
        stripe = self.stripe_lock(key)
        yield Lock(stripe)
        (head_addr,) = yield Read(self._bucket_addr(b), 1)
        cur = self.buckets[b]
        while cur is not None:
            yield Read(cur.addr, 2)
            if cur.key == key:
                yield Read(cur.addr + CACHE_LINE_BYTES, self.params.value_words)
                break
            cur = cur.next
        yield Unlock(stripe)

    def op_put(self, machine: Machine, key: int, op_index: int):
        """Insert-or-update inside one atomic region under the stripe lock."""
        b = self._hash_of(key)
        stripe = self.stripe_lock(key)
        yield Lock(stripe)
        yield Begin()
        # walk the chain
        (head_addr,) = yield Read(self._bucket_addr(b), 1)
        cur = self.buckets[b]
        found = None
        while cur is not None:
            yield Read(cur.addr, 2)
            if cur.key == key:
                found = cur
                break
            cur = cur.next
        value = self.derive_value(self.params.seed, key, op_index)
        if found is not None:
            yield Write(found.addr + CACHE_LINE_BYTES, self.payload_words(value))
        else:
            entry = _Entry(key, self.alloc_node(machine, 2), self.buckets[b])
            yield Write(entry.addr, [key])
            yield Write(entry.addr + 8, [entry.next.addr if entry.next else 0])
            yield Write(entry.addr + CACHE_LINE_BYTES, self.payload_words(value))
            yield Write(self._bucket_addr(b), [entry.addr])
            self.buckets[b] = entry
            self.shadow[key] = entry
        yield End()
        yield Unlock(stripe)

    def install(self, machine: Machine) -> None:
        params = self.params
        self.setup(machine)

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 43 + thread_index)
            for op in range(params.ops_per_thread):
                insert = trng.random() >= params.update_fraction or not self.shadow
                key = (
                    trng.randrange(1, 1 << 30)
                    if insert
                    else trng.choice(list(self.shadow))
                )
                yield from self.op_put(machine, key, op)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """Chain invariants: acyclic chains whose keys hash to their bucket."""
        errors = []
        for b in range(_NUM_BUCKETS):
            addr = image.read_word(self.bucket_base + b * CACHE_LINE_BYTES)
            seen = set()
            while addr != 0 and len(errors) < 5:
                if addr in seen:
                    errors.append(f"cycle in bucket {b}")
                    break
                seen.add(addr)
                key = image.read_word(addr)
                if (key * 2654435761) % _NUM_BUCKETS != b:
                    errors.append(f"key {key} in wrong bucket {b}")
                addr = image.read_word(addr + WORD_BYTES)
        return errors

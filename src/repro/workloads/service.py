"""Open-loop service workloads: request traffic with tail-latency recording.

The Table 3 benchmarks are *closed-loop*: every thread issues its next
operation the moment the previous one retires, so queueing delay is
invisible and only mean region latency is measurable. Production PM
stores are driven by *open-loop* request arrivals - requests arrive on a
wall-clock schedule whether or not the server has caught up - and what
matters there is the tail (p99/p999) of arrival-to-durable latency as a
function of offered load.

This module adds that regime on top of the existing PM-backed stores:

* **Arrival process**: Poisson interarrivals at ``offered_load`` requests
  per kilocycle, precomputed as simulated-cycle timestamps from a seeded
  generator. Workers ``Compute``-wait until a request's arrival cycle,
  so when the store falls behind, queueing delay shows up in the measured
  latency instead of being hidden (the coordinated-omission trap).
* **Key skew**: a seeded Zipfian sampler over the store's bootstrap key
  population (or TPC-C's districts); ``skew`` is the Zipf theta, 0 =
  uniform. Hot keys concentrate traffic on a few locks, exposing the
  contended-lock x persist-ordering interaction.
* **Latency recording**: GET latency is recorded when the last read
  retires; PUT latency when the request's atomic region becomes
  *durable* (the scheme's ``on_commit`` notification), not when ``End``
  retires - for asynchronous-persistence schemes these differ by design.
* **Fixed-bucket histogram**: latencies land in log-spaced buckets (8
  sub-buckets per octave, <= 12.5% relative error) so percentiles are
  pure-integer functions of the counts: byte-identical across ``--jobs``
  values, cache state, and the reference/fast cores.

Determinism: every random choice (arrivals, key ranks, read/write mix,
TPC-C item baskets) comes from ``random.Random`` instances seeded from
``ServiceParams.seed``, and request i's generator seed depends only on
(seed, i) - never on thread interleaving or wall-clock time.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, fields
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.sim.machine import Machine
from repro.sim.ops import Compute
from repro.workloads.base import Workload, WorkloadParams, register
from repro.workloads.btree import BTree
from repro.workloads.hashmap import HashMap
from repro.workloads.tpcc import TPCC


@dataclass(frozen=True)
class ServiceParams(WorkloadParams):
    """Knobs for the open-loop service family (extends the batch knobs).

    ``ops_per_thread`` is ignored here - the run length is ``requests``,
    divided round-robin over ``num_threads`` worker threads.
    """

    #: offered load in requests per 1000 cycles, summed over all threads
    offered_load: float = 4.0
    #: Zipf theta for key popularity (0 = uniform, 0.99 = YCSB-style skew)
    skew: float = 0.99
    #: fraction of requests that are read-only GETs
    read_fraction: float = 0.5
    #: total requests across all threads
    requests: int = 256

    def __post_init__(self):
        super().__post_init__()
        if self.offered_load <= 0.0:
            raise ConfigError("offered_load must be positive")
        if self.skew < 0.0:
            raise ConfigError("skew must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be within [0, 1]")
        if self.requests < 0:
            raise ConfigError("requests must be non-negative")

    @classmethod
    def from_base(cls, base: WorkloadParams, **overrides) -> "ServiceParams":
        """Upgrade batch params to service params, keeping shared fields."""
        kwargs = {f.name: getattr(base, f.name) for f in fields(base)}
        kwargs.update(overrides)
        return cls(**kwargs)


# -- deterministic generators ----------------------------------------------


class ZipfSampler:
    """Zipfian ranks: P(rank r) proportional to 1 / (r + 1) ** theta.

    The CDF over ``n`` ranks is precomputed once; sampling is one uniform
    draw plus a bisect, so the cost is independent of skew and the
    sequence is a pure function of the caller's ``random.Random``.
    """

    def __init__(self, n: int, theta: float):
        if n <= 0:
            raise ConfigError("ZipfSampler needs a non-empty population")
        weights = [1.0 / float(r + 1) ** theta for r in range(n)]
        total = sum(weights)
        acc = 0.0
        self.cdf: List[float] = []
        for w in weights:
            acc += w
            self.cdf.append(acc / total)
        self.cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self.cdf, rng.random())


def poisson_arrivals(
    count: int, per_kilocycle: float, rng: random.Random
) -> List[int]:
    """``count`` integer arrival cycles with exponential interarrivals."""
    rate = per_kilocycle / 1000.0
    t = 0.0
    out: List[int] = []
    for _ in range(count):
        t += rng.expovariate(rate)
        out.append(int(t))
    return out


# -- latency histogram -----------------------------------------------------


def bucket_index(latency: int) -> int:
    """Log-spaced bucket for a latency: 8 sub-buckets per octave."""
    if latency < 8:
        return max(0, latency)
    octave = latency.bit_length() - 1
    return (octave - 3) * 8 + (latency >> (octave - 3))


def bucket_upper(index: int) -> int:
    """Largest latency mapping to ``index`` (the reported percentile)."""
    if index < 16:
        return index
    octave = index // 8 + 2
    sub = index - (octave - 3) * 8
    return ((sub + 1) << (octave - 3)) - 1


class LatencyHistogram:
    """Fixed-bucket latency histogram with integer-exact percentiles.

    Buckets 0-15 are exact cycle counts; above that each octave splits
    into 8 sub-buckets, bounding relative error at 12.5%. Percentiles use
    the nearest-rank rule over bucket upper bounds, so any two runs that
    recorded the same latencies report byte-identical percentiles -
    regardless of recording order, process count, or cache state.
    """

    __slots__ = ("counts", "total")

    def __init__(self):
        self.counts: Dict[int, int] = {}
        self.total = 0

    def record(self, latency: int) -> None:
        b = bucket_index(max(0, latency))
        self.counts[b] = self.counts.get(b, 0) + 1
        self.total += 1

    def percentile(self, per_mille: int) -> int:
        """Nearest-rank percentile; ``per_mille`` of 500 = p50, 999 = p999."""
        if self.total == 0:
            return 0
        rank = max(1, (per_mille * self.total + 999) // 1000)
        seen = 0
        for b in sorted(self.counts):
            seen += self.counts[b]
            if seen >= rank:
                return bucket_upper(b)
        return bucket_upper(max(self.counts))

    def as_dict(self) -> Dict[int, int]:
        """Counts keyed by bucket index, in ascending bucket order."""
        return {b: self.counts[b] for b in sorted(self.counts)}


# -- recorder --------------------------------------------------------------


class ServiceRecorder:
    """Per-request latency bookkeeping attached to a running machine.

    PUT requests register their upcoming region id before yielding it;
    the scheme's durable-commit notification resolves the id back to the
    arrival cycle. GET latencies are recorded inline by the worker. The
    commit hook fires identically on the reference and fast cores, so the
    filled-in ``RunResult`` fields pass the differential-identity gate.
    """

    def __init__(self, machine: Machine, params: ServiceParams):
        self.machine = machine
        self.params = params
        self.histogram = LatencyHistogram()
        self.pending: Dict[int, int] = {}

    def register(self, rid: int, arrival: int) -> None:
        self.pending[rid] = arrival

    def on_commit(self, rid: int) -> None:
        arrival = self.pending.pop(rid, None)
        if arrival is not None:
            self.record(self.machine.scheduler.now - arrival)

    def record(self, latency: int) -> None:
        self.histogram.record(latency)

    def fill(self, result) -> None:
        """Populate the service fields of a collected ``RunResult``."""
        hist = self.histogram
        result.latency_histogram = hist.as_dict()
        result.requests_completed = hist.total
        result.p50_cycles = hist.percentile(500)
        result.p90_cycles = hist.percentile(900)
        result.p99_cycles = hist.percentile(990)
        result.p999_cycles = hist.percentile(999)
        achieved = (
            hist.total / (result.cycles / 1000.0) if result.cycles > 0 else 0.0
        )
        result.offered_vs_achieved = (self.params.offered_load, achieved)


# -- the workload family ---------------------------------------------------


class ServiceWorkload(Workload):
    """Open-loop request traffic over a PM-backed store.

    The store is one of the existing shadow-model structures, bootstrapped
    via its ``setup`` method; requests are dispatched round-robin to
    ``num_threads`` workers, each of which sleeps until a request's
    arrival cycle before executing it (arrivals are global, so a slow
    store makes later requests queue - visibly, in their latency).
    """

    family = "service"
    store_cls: type = None

    def __init__(self, params: WorkloadParams = None):
        if params is None:
            params = ServiceParams()
        elif not isinstance(params, ServiceParams):
            params = ServiceParams.from_base(params)
        super().__init__(params)

    # -- store plumbing (overridden by the TPC-C variant) -------------------

    def key_population(self) -> List[int]:
        return self.store.setup_keys

    def do_get(self, machine: Machine, rank: int, index: int):
        yield from self.store.op_get(machine, self.population[rank])

    def do_put(self, machine: Machine, rank: int, index: int):
        yield from self.store.op_put(machine, self.population[rank], index)

    # -- install ------------------------------------------------------------

    def install(self, machine: Machine) -> None:
        params = self.params
        self.store = self.store_cls(params)
        self.store.setup(machine)
        self.population = self.key_population()
        if not self.population:
            raise ConfigError(
                f"{self.name}: store bootstrap produced no keys; "
                "set setup_items > 0"
            )

        zipf = ZipfSampler(len(self.population), params.skew)
        sched_rng = random.Random(params.seed + 71)
        arrivals = poisson_arrivals(
            params.requests, params.offered_load, random.Random(params.seed + 72)
        )
        schedule = [
            (arrivals[i], sched_rng.random() < params.read_fraction,
             zipf.sample(sched_rng))
            for i in range(params.requests)
        ]

        # The linter's machine stand-in has no scheme and a frozen clock;
        # run the same op streams there, minus waits and latency recording.
        recorder: Optional[ServiceRecorder] = None
        if getattr(machine, "scheme", None) is not None:
            if getattr(machine, "service_recorder", None) is not None:
                raise ConfigError("only one service tenant per machine")
            recorder = ServiceRecorder(machine, params)
            machine.service_recorder = recorder
            machine.scheme.on_commit.append(recorder.on_commit)
        self.recorder = recorder

        num_threads = params.num_threads

        def worker(env, tid: int):
            for i in range(tid, len(schedule), num_threads):
                arrival, is_read, rank = schedule[i]
                if recorder is not None:
                    wait = arrival - machine.scheduler.now
                    if wait > 0:
                        yield Compute(wait)
                if is_read:
                    yield from self.do_get(machine, rank, i)
                    if recorder is not None:
                        recorder.record(machine.scheduler.now - arrival)
                else:
                    if recorder is not None:
                        recorder.register(env.next_rid, arrival)
                    yield from self.do_put(machine, rank, i)

        for t in range(num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ------------------------------------------------

    def validate_image(self, image):
        return self.store.validate_image(image)


@register
class ServiceHashMap(ServiceWorkload):
    """GET/PUT key-value service over the HM chained hash table."""

    name = "SVC"
    description = "Open-loop KV request service over the HM store"
    store_cls = HashMap


@register
class ServiceBTree(ServiceWorkload):
    """GET/PUT key-value service over the BT B-tree."""

    name = "SVC_BT"
    description = "Open-loop KV request service over the BT store"
    store_cls = BTree


@register
class ServiceTPCC(ServiceWorkload):
    """New-Order/Stock-Level request service over the TPC-C subset.

    The Zipf population is the district set: skew concentrates orders on
    a hot district, serialising its lock while persists drain behind it.
    """

    name = "SVC_TPCC"
    description = "Open-loop New-Order service over the TPCC store"
    store_cls = TPCC

    def key_population(self) -> List[int]:
        return list(range(self.store.num_districts))

    def _request_rng(self, index: int) -> random.Random:
        return random.Random(self.params.seed * 1009 + index)

    def do_get(self, machine: Machine, rank: int, index: int):
        yield from self.store.op_stock_level(
            machine, self._request_rng(index), self.population[rank]
        )

    def do_put(self, machine: Machine, rank: int, index: int):
        yield from self.store.op_new_order(
            machine, self._request_rng(index), index, self.population[rank]
        )

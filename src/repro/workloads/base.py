"""Workload framework: shadow-modelled persistent data structures.

Workloads follow the reproduction band's trace-driven approach: each data
structure keeps a *shadow* model in plain Python (for control flow) and
emits the memory ops a real PM implementation would perform - reads along
the traversal path, writes to every modified node, payload writes sized by
``value_bytes``. Because generators only advance at simulated-execution
time, shadow mutations inside lock-protected sections serialise exactly
like the simulated critical sections do.

The emitted *values* are real: node fields hold real keys/pointers and
payload words hold derived values, so the recovery tests can check that a
recovered image is a byte-consistent prefix of the run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigError, SimulationError
from repro.common.units import WORD_BYTES
from repro.sim.machine import Machine


def expect_word(actual: int, expected: int, context: str) -> None:
    """Check a value read from simulated memory against the shadow model.

    Workloads use this instead of a bare ``assert`` so the check survives
    ``python -O`` and failures carry a diagnostic payload: a divergence
    here means the simulator returned a value the shadow never wrote -
    an ordering or isolation bug, not a workload bug.
    """
    if actual != expected:
        raise SimulationError(
            f"shadow model diverged from simulated memory: {context} "
            f"(read {actual:#x}, expected {expected:#x})"
        )


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs shared by every workload.

    ``value_bytes`` is the paper's "data size per atomic region" (64 B and
    2 KB in Figs. 7-8): the payload written by each insert/update.
    """

    num_threads: int = 4
    ops_per_thread: int = 50
    value_bytes: int = 64
    seed: int = 42
    #: elements pre-loaded (bootstrap, durable before measurement begins)
    setup_items: int = 64
    #: fraction of operations that mutate existing entries rather than
    #: inserting new ones (where the workload distinguishes the two)
    update_fraction: float = 0.5

    def __post_init__(self):
        if self.num_threads <= 0 or self.ops_per_thread < 0:
            raise ConfigError("need positive thread/op counts")
        if self.value_bytes < WORD_BYTES or self.value_bytes % WORD_BYTES:
            raise ConfigError("value_bytes must be a positive multiple of 8")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ConfigError("update_fraction must be within [0, 1]")

    @property
    def value_words(self) -> int:
        return self.value_bytes // WORD_BYTES


class Workload(abc.ABC):
    """One Table 3 benchmark."""

    #: short evaluation name ("BN", "BT", ...)
    name: str = "?"
    description: str = ""
    #: "batch" workloads are the Table 3 benchmarks every figure sweeps by
    #: default; "service" workloads (open-loop request traffic, see
    #: :mod:`repro.workloads.service`) opt out of those defaults and are
    #: listed by :func:`service_workload_names` instead
    family: str = "batch"

    def __init__(self, params: WorkloadParams):
        self.params = params

    @abc.abstractmethod
    def install(self, machine: Machine) -> None:
        """Bootstrap the data structure and spawn the worker threads."""

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def derive_value(seed: int, key: int, op_index: int) -> int:
        """A deterministic, run-unique payload word."""
        return (seed * 1_000_003 + key * 257 + op_index * 7919) & 0x7FFF_FFFF_FFFF

    def payload_words(self, base_value: int) -> List[int]:
        """The ``value_bytes``-sized payload for one insert/update."""
        n = self.params.value_words
        return [(base_value + i) & 0x7FFF_FFFF_FFFF for i in range(n)]

    def alloc_node(self, machine: Machine, header_words: int) -> int:
        """Allocate a node: header words + the payload area, line-aligned."""
        size = header_words * WORD_BYTES + self.params.value_bytes
        return machine.heap.alloc(size)

    # -- semantic validation -----------------------------------------------

    def validate_image(self, image) -> List[str]:
        """Check the data structure's invariants directly on a memory image.

        Walks the structure from its persistent roots using only pointer
        and key words found in ``image`` (never the shadow model), so it
        can validate a *recovered* PM image: any dependence-consistent
        prefix of the run must satisfy the structure's invariants - every
        atomic region moves it from one valid state to another.

        Returns a list of human-readable violations (empty = valid).
        """
        return []


#: registry: name -> Workload subclass
_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a workload to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str, params: WorkloadParams = WorkloadParams()) -> Workload:
    """Instantiate a registered workload by its Table 3 name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(f"unknown workload {name!r}; choose from {sorted(_REGISTRY)}")
    return cls(params)


def workload_names() -> List[str]:
    """All Table 3 (batch) workload names, in the paper's order.

    Service workloads are deliberately excluded: every figure, benchmark
    and crash-test sweeps this list by default, and request-driven
    workloads need a :class:`~repro.workloads.service.ServiceParams` to
    mean anything. Use :func:`service_workload_names` for those.
    """
    batch = {n for n, cls in _REGISTRY.items() if cls.family == "batch"}
    order = ["BN", "BT", "CT", "EO", "HM", "Q", "RB", "SS", "TPCC"]
    return [n for n in order if n in batch] + sorted(batch - set(order))


def service_workload_names() -> List[str]:
    """All open-loop service workload names, sorted."""
    return sorted(n for n, cls in _REGISTRY.items() if cls.family == "service")

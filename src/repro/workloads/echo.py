"""EO: Echo, a scalable key-value store for persistent memory [10, 53].

Echo's signature structure: a hash index over keys where each key holds a
*version chain*, plus a global commit timestamp. A ``put`` allocates a new
version ``[timestamp, prev_version, key]`` + payload, links it at the head
of the key's chain, and advances the global timestamp - the timestamp cell
is shared by every thread, creating the cross-thread data dependences that
exercise ASAP's Dependence List.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, register

_NUM_BUCKETS = 32


class _Version:
    __slots__ = ("ts", "prev", "addr")

    def __init__(self, ts: int, prev: Optional["_Version"], addr: int):
        self.ts = ts
        self.prev = prev
        self.addr = addr


class _KeyEntry:
    __slots__ = ("key", "head", "next", "addr")

    def __init__(self, key: int, addr: int, nxt: Optional["_KeyEntry"]):
        self.key = key
        self.head: Optional[_Version] = None
        self.next = nxt
        self.addr = addr


@register
class Echo(Workload):
    """The EO benchmark."""

    name = "EO"
    description = "Echo: a scalable key-value store for PM"

    def install(self, machine: Machine) -> None:
        params = self.params
        rng = random.Random(params.seed + 4)
        store_lock = machine.new_lock("eo")
        ts_cell = machine.heap.alloc(CACHE_LINE_BYTES)
        bucket_base = machine.heap.alloc(_NUM_BUCKETS * CACHE_LINE_BYTES)
        self.ts_cell = ts_cell
        self.bucket_base = bucket_base
        buckets = [None] * _NUM_BUCKETS
        shadow: Dict[int, _KeyEntry] = {}
        clock = {"ts": 1}
        machine.bootstrap_write(ts_cell, [clock["ts"]])

        def hash_of(key: int) -> int:
            return (key * 40503) % _NUM_BUCKETS

        def bucket_addr(b: int) -> int:
            return bucket_base + b * CACHE_LINE_BYTES

        def bootstrap_put(key: int) -> None:
            b = hash_of(key)
            entry = _KeyEntry(key, machine.heap.alloc(CACHE_LINE_BYTES), buckets[b])
            version = _Version(clock["ts"], None, self.alloc_node(machine, 3))
            entry.head = version
            machine.bootstrap_write(version.addr, [version.ts, 0, key])
            machine.bootstrap_write(
                version.addr + CACHE_LINE_BYTES,
                self.payload_words(self.derive_value(params.seed, key, 0)),
            )
            machine.bootstrap_write(
                entry.addr, [key, version.addr, entry.next.addr if entry.next else 0]
            )
            machine.bootstrap_write(bucket_addr(b), [entry.addr])
            buckets[b] = entry
            shadow[key] = entry
            clock["ts"] += 1
        for key in rng.sample(range(1, 1 << 30), params.setup_items):
            bootstrap_put(key)
        machine.bootstrap_write(ts_cell, [clock["ts"]])

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 47 + thread_index)
            for op in range(params.ops_per_thread):
                is_put = trng.random() < 0.7 or not shadow
                yield Lock(store_lock)
                yield Begin()
                if is_put:
                    new_key = trng.random() < 0.3
                    key = (
                        trng.randrange(1, 1 << 30)
                        if new_key or not shadow
                        else trng.choice(list(shadow))
                    )
                    yield from self._put(machine, key, op, buckets, shadow,
                                         bucket_addr, hash_of, ts_cell, clock)
                else:
                    key = trng.choice(list(shadow))
                    yield from self._get(shadow, key)
                yield End()
                yield Unlock(store_lock)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    def _put(self, machine, key, op_index, buckets, shadow, bucket_addr, hash_of, ts_cell, clock):
        b = hash_of(key)
        yield Read(bucket_addr(b), 1)
        entry = shadow.get(key)
        cur = buckets[b]
        while cur is not None and cur is not entry:
            yield Read(cur.addr, 3)
            cur = cur.next
        (ts,) = yield Read(ts_cell, 1)
        version = _Version(ts, entry.head if entry else None,
                           self.alloc_node(machine, 3))
        yield Write(version.addr, [ts, version.prev.addr if version.prev else 0, key])
        value = self.derive_value(self.params.seed, key, op_index)
        yield Write(version.addr + CACHE_LINE_BYTES, self.payload_words(value))
        if entry is None:
            entry = _KeyEntry(key, machine.heap.alloc(CACHE_LINE_BYTES), buckets[b])
            buckets[b] = entry
            shadow[key] = entry
            entry.head = version
            yield Write(entry.addr, [key, version.addr,
                                     entry.next.addr if entry.next else 0])
            yield Write(bucket_addr(b), [entry.addr])
        else:
            entry.head = version
            yield Write(entry.addr + WORD_BYTES, [version.addr])
        clock["ts"] = ts + 1
        yield Write(ts_cell, [ts + 1])

    def _get(self, shadow, key):
        entry = shadow[key]
        vals = yield Read(entry.addr, 3)
        head = entry.head
        yield Read(head.addr, 3)
        yield Read(head.addr + CACHE_LINE_BYTES, min(8, self.params.value_words))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """KV invariants: bucket chains acyclic and correctly hashed;
        version chains strictly descend in timestamp, all below the global
        clock; every version records its owning key."""
        errors = []
        clock = image.read_word(self.ts_cell)
        for b in range(_NUM_BUCKETS):
            entry = image.read_word(self.bucket_base + b * CACHE_LINE_BYTES)
            seen_entries = set()
            while entry != 0 and len(errors) < 5:
                if entry in seen_entries:
                    errors.append(f"entry cycle in bucket {b}")
                    break
                seen_entries.add(entry)
                key = image.read_word(entry)
                if (key * 40503) % _NUM_BUCKETS != b:
                    errors.append(f"key {key} hashed to wrong bucket {b}")
                version = image.read_word(entry + WORD_BYTES)
                last_ts = 1 << 62
                seen_versions = set()
                while version != 0 and len(errors) < 5:
                    if version in seen_versions:
                        errors.append(f"version cycle for key {key}")
                        break
                    seen_versions.add(version)
                    ts = image.read_word(version)
                    vkey = image.read_word(version + 2 * WORD_BYTES)
                    if vkey != key:
                        errors.append(f"version of key {key} claims key {vkey}")
                    if ts >= last_ts:
                        errors.append(f"version timestamps not descending for key {key}")
                    if ts >= clock:
                        errors.append(f"version ts {ts} >= global clock {clock}")
                    last_ts = ts
                    version = image.read_word(version + WORD_BYTES)
                entry = image.read_word(entry + 2 * WORD_BYTES)
        return errors

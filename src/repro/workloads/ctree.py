"""CT: insert/update entries in a c-tree (crit-bit trie) [27, 53].

Internal node: one line ``[crit_bit, left, right]``; leaf: header line
``[key]`` followed by the payload. Insert walks the trie by the key's
bits, finds the highest differing bit against the best-match leaf, and
splices a new internal node into the path - the classic crit-bit insert,
touching O(depth) lines.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, expect_word, register

_KEY_BITS = 30


class _Leaf:
    __slots__ = ("key", "addr")

    def __init__(self, key: int, addr: int):
        self.key = key
        self.addr = addr


class _Internal:
    __slots__ = ("bit", "left", "right", "addr")

    def __init__(self, bit: int, addr: int):
        self.bit = bit
        self.left = None
        self.right = None
        self.addr = addr


def _bit(key: int, i: int) -> int:
    return (key >> (_KEY_BITS - 1 - i)) & 1


@register
class CTree(Workload):
    """The CT benchmark."""

    name = "CT"
    description = "Insert/update entries in a c-tree"

    def install(self, machine: Machine) -> None:
        params = self.params
        rng = random.Random(params.seed + 2)
        lock = machine.new_lock("ct")
        root_cell = machine.heap.alloc(CACHE_LINE_BYTES)
        self.root_cell = root_cell
        state = {"root": None}

        def new_leaf(key: int, write) -> _Leaf:
            leaf = _Leaf(key, self.alloc_node(machine, 8))
            write(leaf.addr, [key])
            write(
                leaf.addr + CACHE_LINE_BYTES,
                self.payload_words(self.derive_value(params.seed, key, 0)),
            )
            return leaf

        def insert(key: int, write, reads=None):
            """Shadow + emission insert; ``reads`` collects read ops."""
            if state["root"] is None:
                leaf = new_leaf(key, write)
                state["root"] = leaf
                write(root_cell, [leaf.addr])
                return leaf
            # walk to best-match leaf
            node = state["root"]
            while isinstance(node, _Internal):
                if reads is not None:
                    reads.append(Read(node.addr, 3))
                node = node.right if _bit(key, node.bit) else node.left
            if reads is not None:
                reads.append(Read(node.addr, 1))
            if node.key == key:
                return node  # caller updates payload
            diff = next(i for i in range(_KEY_BITS) if _bit(key, i) != _bit(node.key, i))
            leaf = new_leaf(key, write)
            new_int = _Internal(diff, machine.heap.alloc(CACHE_LINE_BYTES))
            # splice: descend again until the insertion point
            parent: Optional[_Internal] = None
            cur = state["root"]
            while isinstance(cur, _Internal) and cur.bit < diff:
                if reads is not None:
                    reads.append(Read(cur.addr, 3))
                parent = cur
                cur = cur.right if _bit(key, cur.bit) else cur.left
            if _bit(key, diff):
                new_int.left, new_int.right = cur, leaf
            else:
                new_int.left, new_int.right = leaf, cur
            left_addr = new_int.left.addr
            right_addr = new_int.right.addr
            write(new_int.addr, [diff, left_addr, right_addr])
            if parent is None:
                state["root"] = new_int
                write(root_cell, [new_int.addr])
            else:
                if parent.right is cur:
                    parent.right = new_int
                    write(parent.addr + 2 * WORD_BYTES, [new_int.addr])
                else:
                    parent.left = new_int
                    write(parent.addr + 1 * WORD_BYTES, [new_int.addr])
            return leaf

        shadow = {}
        for key in rng.sample(range(1, 1 << _KEY_BITS), params.setup_items):
            shadow[key] = insert(key, machine.bootstrap_write)

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 41 + thread_index)
            for op in range(params.ops_per_thread):
                yield Lock(lock)
                yield Begin()
                pending_writes = []
                reads = []

                def emit(addr, words):
                    pending_writes.append(Write(addr, words))

                if trng.random() >= params.update_fraction or not shadow:
                    key = trng.randrange(1, 1 << _KEY_BITS)
                    leaf = insert(key, emit, reads)
                    shadow[key] = leaf
                    for r in reads:
                        yield r
                    for w in pending_writes:
                        yield w
                    if not pending_writes:  # existing key: update payload
                        value = self.derive_value(params.seed, key, op)
                        yield Write(leaf.addr + CACHE_LINE_BYTES, self.payload_words(value))
                else:
                    key = trng.choice(list(shadow))
                    leaf = shadow[key]
                    (k,) = yield Read(leaf.addr, 1)
                    expect_word(k, key, f"c-tree leaf key at {leaf.addr:#x}")
                    value = self.derive_value(params.seed, key, op + 11)
                    yield Write(leaf.addr + CACHE_LINE_BYTES, self.payload_words(value))
                yield End()
                yield Unlock(lock)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """Crit-bit invariants: internal nodes' bit indices strictly
        increase downward; every leaf's key matches the bit-path taken."""
        errors = []
        root = image.read_word(self.root_cell)
        if root == 0:
            return errors
        # distinguishing internal nodes from leaves: internal word0 is a
        # bit index < _KEY_BITS and has nonzero children; leaf word0 is a
        # key >= 1 << ... keys start at 1, bits at 0 - use children words.
        def is_internal(addr):
            left = image.read_word(addr + 1 * WORD_BYTES)
            right = image.read_word(addr + 2 * WORD_BYTES)
            return left != 0 and right != 0

        def walk(addr, last_bit, constraints):
            if len(errors) > 5:
                return
            if is_internal(addr):
                bit = image.read_word(addr)
                if bit <= last_bit:
                    errors.append(f"non-increasing crit bit {bit} at {addr:#x}")
                    return
                left = image.read_word(addr + 1 * WORD_BYTES)
                right = image.read_word(addr + 2 * WORD_BYTES)
                walk(left, bit, constraints + [(bit, 0)])
                walk(right, bit, constraints + [(bit, 1)])
            else:
                key = image.read_word(addr)
                for bit, expected in constraints:
                    if _bit(key, bit) != expected:
                        errors.append(
                            f"leaf key {key} contradicts path bit {bit}"
                        )
                        break

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(100_000)
        try:
            walk(root, -1, [])
        finally:
            sys.setrecursionlimit(old_limit)
        return errors

"""RB: insert/update entries in a red-black tree [27, 53].

Node layout: one header line ``[key, left, right, parent, color]`` plus
the payload. An insert performs the textbook BST insert followed by the
red-black fixup (recolourings and rotations); the shadow model collects
every node whose fields changed and the workload emits one header-line
write per touched node - matching a hand-coalesced PM implementation.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set

from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, expect_word, register

RED, BLACK = 0, 1


class _Node:
    __slots__ = ("key", "left", "right", "parent", "color", "addr")

    def __init__(self, key: int, addr: int):
        self.key = key
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None
        self.color = RED
        self.addr = addr

    def header_words(self):
        return [
            self.key,
            self.left.addr if self.left else 0,
            self.right.addr if self.right else 0,
            self.parent.addr if self.parent else 0,
            self.color,
        ]


@register
class RBTree(Workload):
    """The RB benchmark."""

    name = "RB"
    description = "Insert/update entries in a red-black tree"

    def install(self, machine: Machine) -> None:
        params = self.params
        rng = random.Random(params.seed + 6)
        lock = machine.new_lock("rb")
        root_cell = machine.heap.alloc(CACHE_LINE_BYTES)
        self.root_cell = root_cell
        shadow: Dict[int, _Node] = {}
        state = {"root": None}

        def rotate_left(x: _Node, touched: Set[_Node]) -> None:
            y = x.right
            x.right = y.left
            if y.left:
                y.left.parent = x
                touched.add(y.left)
            y.parent = x.parent
            if x.parent is None:
                state["root"] = y
            elif x is x.parent.left:
                x.parent.left = y
            else:
                x.parent.right = y
            if x.parent:
                touched.add(x.parent)
            y.left = x
            x.parent = y
            touched.update((x, y))

        def rotate_right(x: _Node, touched: Set[_Node]) -> None:
            y = x.left
            x.left = y.right
            if y.right:
                y.right.parent = x
                touched.add(y.right)
            y.parent = x.parent
            if x.parent is None:
                state["root"] = y
            elif x is x.parent.right:
                x.parent.right = y
            else:
                x.parent.left = y
            if x.parent:
                touched.add(x.parent)
            y.right = x
            x.parent = y
            touched.update((x, y))

        def fixup(z: _Node, touched: Set[_Node]) -> None:
            while z.parent is not None and z.parent.color == RED:
                gp = z.parent.parent
                if gp is None:
                    break
                if z.parent is gp.left:
                    uncle = gp.right
                    if uncle is not None and uncle.color == RED:
                        z.parent.color = BLACK
                        uncle.color = BLACK
                        gp.color = RED
                        touched.update((z.parent, uncle, gp))
                        z = gp
                    else:
                        if z is z.parent.right:
                            z = z.parent
                            rotate_left(z, touched)
                        z.parent.color = BLACK
                        gp.color = RED
                        touched.update((z.parent, gp))
                        rotate_right(gp, touched)
                else:
                    uncle = gp.left
                    if uncle is not None and uncle.color == RED:
                        z.parent.color = BLACK
                        uncle.color = BLACK
                        gp.color = RED
                        touched.update((z.parent, uncle, gp))
                        z = gp
                    else:
                        if z is z.parent.left:
                            z = z.parent
                            rotate_right(z, touched)
                        z.parent.color = BLACK
                        gp.color = RED
                        touched.update((z.parent, gp))
                        rotate_left(gp, touched)
            root = state["root"]
            if root.color != BLACK:
                root.color = BLACK
                touched.add(root)

        def shadow_insert(key: int, touched: Set[_Node]):
            """Returns (node, path, is_new); path = search path for reads."""
            path = []
            parent = None
            cur = state["root"]
            while cur is not None:
                path.append(cur)
                if key == cur.key:
                    return cur, path, False
                parent = cur
                cur = cur.left if key < cur.key else cur.right
            node = _Node(key, self.alloc_node(machine, 8))
            node.parent = parent
            if parent is None:
                state["root"] = node
            elif key < parent.key:
                parent.left = node
            else:
                parent.right = node
            if parent:
                touched.add(parent)
            touched.add(node)
            old_root = state["root"]
            fixup(node, touched)
            shadow[key] = node
            return node, path, True

        # bootstrap
        for key in rng.sample(range(1, 1 << 30), params.setup_items):
            touched: Set[_Node] = set()
            node, _path, is_new = shadow_insert(key, touched)
            for n in touched:
                machine.bootstrap_write(n.addr, n.header_words())
            machine.bootstrap_write(
                node.addr + CACHE_LINE_BYTES,
                self.payload_words(self.derive_value(params.seed, key, 0)),
            )
            machine.bootstrap_write(root_cell, [state["root"].addr])

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 61 + thread_index)
            for op in range(params.ops_per_thread):
                yield Lock(lock)
                yield Begin()
                if trng.random() >= params.update_fraction or not shadow:
                    key = trng.randrange(1, 1 << 30)
                    old_root_addr = state["root"].addr if state["root"] else 0
                    touched = set()
                    node, path, is_new = shadow_insert(key, touched)
                    for p in path:
                        yield Read(p.addr, 5)
                    value = self.derive_value(params.seed, key, op)
                    yield Write(node.addr + CACHE_LINE_BYTES, self.payload_words(value))
                    for n in sorted(touched, key=lambda n: n.addr):
                        yield Write(n.addr, n.header_words())
                    if state["root"].addr != old_root_addr:
                        yield Write(root_cell, [state["root"].addr])
                else:
                    key = trng.choice(list(shadow))
                    node = shadow[key]
                    (k,) = yield Read(node.addr, 1)
                    expect_word(k, key, f"RB node key at {node.addr:#x}")
                    value = self.derive_value(params.seed, key, op + 17)
                    yield Write(node.addr + CACHE_LINE_BYTES, self.payload_words(value))
                yield End()
                yield Unlock(lock)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """Red-black invariants straight off the image: BST ordering,
        consistent parent pointers, black root, no red-red edges, and a
        uniform black height."""
        errors = []
        root = image.read_word(self.root_cell)
        if root == 0:
            return errors
        if image.read_word(root + 4 * WORD_BYTES) != BLACK:
            errors.append("root is red")

        def walk(addr, lo, hi, parent_addr):
            """Returns the subtree's black height (or None on error)."""
            if addr == 0:
                return 1
            if len(errors) > 5:
                return 1
            key = image.read_word(addr)
            left = image.read_word(addr + 1 * WORD_BYTES)
            right = image.read_word(addr + 2 * WORD_BYTES)
            parent = image.read_word(addr + 3 * WORD_BYTES)
            color = image.read_word(addr + 4 * WORD_BYTES)
            if not (lo < key < hi):
                errors.append(f"key {key} violates BST range")
            if parent != parent_addr:
                errors.append(f"bad parent pointer at {addr:#x}")
            if color == RED:
                for child in (left, right):
                    if child and image.read_word(child + 4 * WORD_BYTES) == RED:
                        errors.append(f"red-red edge at {addr:#x}")
            lh = walk(left, lo, key, addr)
            rh = walk(right, key, hi, addr)
            if lh != rh:
                errors.append(f"black-height mismatch at {addr:#x}")
            return (lh or 1) + (1 if color == BLACK else 0)

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(100_000)
        try:
            walk(root, -1, 1 << 62, 0)
        finally:
            sys.setrecursionlimit(old_limit)
        return errors

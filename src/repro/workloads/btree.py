"""BT: insert/update entries in a B-tree [27, 53].

An order-8 B-tree: each node holds up to 7 keys in one cache line and 8
child/value pointers in a second line::

    line 0: word 0 = count, words 1..7 = keys
    line 1: words 0..7 = children (internal) or value pointers (leaf)

Values are separate line-aligned allocations of ``value_bytes``. Inserts
descend the tree (two line reads per level), write the modified leaf
lines, and on overflow split nodes bottom-up, writing every touched node.

The structure is split into ``setup`` (bootstrap) and per-operation
generator methods so the open-loop service workloads
(:mod:`repro.workloads.service`) can drive the same PM-backed store.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List

from repro.common.units import CACHE_LINE_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, register

_MAX_KEYS = 7


class _Node:
    __slots__ = ("keys", "children", "values", "leaf", "addr")

    def __init__(self, leaf: bool, addr: int):
        self.leaf = leaf
        self.addr = addr
        self.keys: List[int] = []
        self.children: List["_Node"] = []
        self.values: List[int] = []  # leaf: value node addrs

    def key_line_words(self) -> List[int]:
        return [len(self.keys)] + self.keys + [0] * (_MAX_KEYS - len(self.keys))

    def ptr_line_words(self) -> List[int]:
        ptrs = (
            [v for v in self.values]
            if self.leaf
            else [c.addr for c in self.children]
        )
        return ptrs + [0] * (8 - len(ptrs))


@register
class BTree(Workload):
    """The BT benchmark."""

    name = "BT"
    description = "Insert/update entries in a b-tree"

    def _alloc_tree_node(self, machine: Machine, leaf: bool) -> _Node:
        return _Node(leaf, machine.heap.alloc(2 * CACHE_LINE_BYTES))

    def _write_node(self, node: _Node, bootstrap=None):
        """Emit (or bootstrap) both lines of a node."""
        if bootstrap is not None:
            bootstrap(node.addr, node.key_line_words())
            bootstrap(node.addr + CACHE_LINE_BYTES, node.ptr_line_words())
            return []
        return [
            Write(node.addr, node.key_line_words()),
            Write(node.addr + CACHE_LINE_BYTES, node.ptr_line_words()),
        ]

    def setup(self, machine: Machine) -> None:
        """Bootstrap the tree: root cell, global lock, initial items."""
        params = self.params
        rng = random.Random(params.seed + 1)
        self.lock = machine.new_lock("bt")
        self.root_cell = machine.heap.alloc(CACHE_LINE_BYTES)
        self.state = {"root": self._alloc_tree_node(machine, leaf=True)}
        self.key_index: Dict[int, bool] = {}
        self.setup_keys: List[int] = []

        def bootstrap_value(key: int) -> int:
            addr = machine.heap.alloc(params.value_bytes)
            machine.bootstrap_write(
                addr, self.payload_words(self.derive_value(params.seed, key, 0))
            )
            return addr

        for key in rng.sample(range(1, 1 << 30), params.setup_items):
            touched: set = set()
            self._shadow_insert(machine, key, bootstrap_value(key), touched)
            self.key_index[key] = True
            self.setup_keys.append(key)
            for node in touched:
                self._write_node(node, bootstrap=machine.bootstrap_write)
        self._write_node(self.state["root"], bootstrap=machine.bootstrap_write)
        machine.bootstrap_write(self.root_cell, [self.state["root"].addr])

    def _shadow_insert(self, machine: Machine, key: int, value_addr: int, touched: set) -> None:
        """Pure shadow insert; records touched nodes for write emission."""
        root = self.state["root"]
        if len(root.keys) == _MAX_KEYS:
            new_root = self._alloc_tree_node(machine, leaf=False)
            new_root.children = [root]
            self._split_child(machine, new_root, 0, touched)
            self.state["root"] = new_root
            touched.add(new_root)
        self._insert_nonfull(machine, self.state["root"], key, value_addr, touched)

    def install(self, machine: Machine) -> None:
        params = self.params
        self.setup(machine)

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 37 + thread_index)
            for op in range(params.ops_per_thread):
                yield Lock(self.lock)
                yield Begin()
                if trng.random() >= params.update_fraction or not self.key_index:
                    key = trng.randrange(1, 1 << 30)
                    yield from self._op_insert(machine, key, op)
                else:
                    key = trng.choice(list(self.key_index))
                    yield from self._op_update(machine, key, op)
                yield End()
                yield Unlock(self.lock)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- shadow split/insert ----------------------------------------------------

    def _split_child(self, machine: Machine, parent: _Node, idx: int, touched: set) -> None:
        child = parent.children[idx]
        sibling = self._alloc_tree_node(machine, child.leaf)
        mid = _MAX_KEYS // 2
        up_key = child.keys[mid]
        sibling.keys = child.keys[mid + 1 :]
        if child.leaf:
            # Leaf split keeps the separator in the right leaf (B+-ish).
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
        else:
            sibling.children = child.children[mid + 1 :]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
        parent.keys.insert(idx, up_key)
        parent.children.insert(idx + 1, sibling)
        touched.update((parent, child, sibling))

    def _insert_nonfull(self, machine: Machine, node: _Node, key: int, value_addr: int, touched: set) -> None:
        if node.leaf:
            pos = bisect.bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                node.values[pos] = value_addr
            else:
                node.keys.insert(pos, key)
                node.values.insert(pos, value_addr)
            touched.add(node)
            return
        pos = bisect.bisect_right(node.keys, key)
        child = node.children[pos]
        if len(child.keys) == _MAX_KEYS:
            self._split_child(machine, node, pos, touched)
            if key > node.keys[pos]:
                pos += 1
        self._insert_nonfull(machine, node.children[pos], key, value_addr, touched)

    def _search_path(self, key: int):
        """Shadow search; returns (path nodes, leaf, value index or None)."""
        path = []
        node = self.state["root"]
        while True:
            path.append(node)
            if node.leaf:
                pos = bisect.bisect_left(node.keys, key)
                if pos < len(node.keys) and node.keys[pos] == key:
                    return path, node, pos
                return path, node, None
            node = node.children[bisect.bisect_right(node.keys, key)]

    # -- op streams -----------------------------------------------------------------

    def _op_insert(self, machine, key, op_index):
        path, _leaf, _pos = self._search_path(key)
        for node in path:
            yield Read(node.addr, 8)  # key line
            yield Read(node.addr + CACHE_LINE_BYTES, 8)  # ptr line
        value_addr = machine.heap.alloc(self.params.value_bytes)
        value = self.derive_value(self.params.seed, key, op_index)
        yield Write(value_addr, self.payload_words(value))
        old_root = self.state["root"]
        touched: set = set()
        self._shadow_insert(machine, key, value_addr, touched)
        self.key_index[key] = True
        for node in sorted(touched, key=lambda n: n.addr):
            for op in self._write_node(node):
                yield op
        if self.state["root"] is not old_root:
            yield Write(self.root_cell, [self.state["root"].addr])

    def _op_update(self, machine, key, op_index):
        path, leaf, pos = self._search_path(key)
        for node in path:
            yield Read(node.addr, 8)
            yield Read(node.addr + CACHE_LINE_BYTES, 8)
        value = self.derive_value(self.params.seed, key, op_index + 3)
        if pos is None:
            return
        yield Write(leaf.values[pos], self.payload_words(value))

    # -- service-workload entry points ---------------------------------------

    def op_get(self, machine: Machine, key: int):
        """Read-only lookup: descend under the lock, read the value."""
        yield Lock(self.lock)
        path, leaf, pos = self._search_path(key)
        for node in path:
            yield Read(node.addr, 8)
            yield Read(node.addr + CACHE_LINE_BYTES, 8)
        if pos is not None:
            yield Read(leaf.values[pos], self.params.value_words)
        yield Unlock(self.lock)

    def op_put(self, machine: Machine, key: int, op_index: int):
        """Insert-or-update inside one atomic region under the lock."""
        yield Lock(self.lock)
        yield Begin()
        if key in self.key_index:
            yield from self._op_update(machine, key, op_index)
        else:
            yield from self._op_insert(machine, key, op_index)
        yield End()
        yield Unlock(self.lock)

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """B-tree invariants: sorted keys within nodes, child subtrees obey
        separator ranges, counts within capacity."""
        errors = []
        root = image.read_word(self.root_cell)
        if root == 0:
            return errors

        def walk(addr, lo, hi, depth):
            if len(errors) > 5 or depth > 64:
                return
            count = image.read_word(addr)
            if count > _MAX_KEYS:
                errors.append(f"node {addr:#x} count {count} > {_MAX_KEYS}")
                return
            keys = [image.read_word(addr + 8 * (1 + i)) for i in range(count)]
            if keys != sorted(keys):
                errors.append(f"unsorted keys in node {addr:#x}")
            for k in keys:
                if not (lo <= k < hi):
                    errors.append(f"key {k} outside range [{lo}, {hi}) at {addr:#x}")
            ptrs = [
                image.read_word(addr + CACHE_LINE_BYTES + 8 * i) for i in range(8)
            ]
            child_count = sum(1 for p in ptrs if p)
            if child_count > count:  # internal node: children = count + 1
                bounds = [lo] + keys + [hi]
                for i in range(count + 1):
                    if ptrs[i]:
                        walk(ptrs[i], bounds[i], bounds[i + 1], depth + 1)

        walk(root, 0, 1 << 62, 0)
        return errors

"""The Table 3 benchmark suite.

Nine multi-threaded workloads stressing persistent-memory update
performance, re-implemented as persistent data structures over the
simulated PM heap:

=========  =======================================================
BN         insert/update entries in a binary tree
BT         insert/update entries in a B-tree
CT         insert/update entries in a c-tree (crit-bit trie)
EO         Echo: a scalable key-value store for PM
HM         insert/update entries in a hash table
Q          enqueue/dequeue on a linked queue
RB         insert/update entries in a red-black tree
SS         random swaps in an array of strings
TPCC       the New-Order transaction of TPC-C
=========  =======================================================

Every workload is thread-safe (conflicting atomic regions nest inside
critical sections, Sec. 2.1) and parameterised by the per-region payload
size (64 B / 2 KB in Figs. 7-8).
"""

from repro.workloads.base import (
    Workload,
    WorkloadParams,
    get_workload,
    service_workload_names,
    workload_names,
)
from repro.workloads import (  # noqa: F401  (registration side effects)
    binarytree,
    btree,
    ctree,
    echo,
    hashmap,
    queue,
    rbtree,
    service,
    stringswap,
    tpcc,
)
from repro.workloads.service import ServiceParams  # noqa: F401

__all__ = [
    "Workload",
    "WorkloadParams",
    "ServiceParams",
    "get_workload",
    "workload_names",
    "service_workload_names",
]

"""SS: random swaps in an array of strings [22, 41].

An array of ``setup_items`` fixed-size strings (each ``value_bytes``
long). Each atomic region picks two random slots, reads both strings, and
writes each into the other's slot - a pure data-movement workload whose
write-set size scales directly with the payload size.
"""

from __future__ import annotations

import random

from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, register


@register
class StringSwap(Workload):
    """The SS benchmark."""

    name = "SS"
    description = "Random swaps in an array of strings"

    def install(self, machine: Machine) -> None:
        params = self.params
        count = max(4, params.setup_items)
        stride = max(params.value_bytes, 64)
        base = machine.heap.alloc(count * stride)
        self.base, self.stride, self.count = base, stride, count
        for i in range(count):
            machine.bootstrap_write(
                base + i * stride,
                self.payload_words(self.derive_value(params.seed, i, 0)),
            )
        locks = [machine.new_lock(f"ss{i}") for i in range(8)]

        def slot_addr(i: int) -> int:
            return base + i * stride

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 59 + thread_index)
            nwords = params.value_words
            for op in range(params.ops_per_thread):
                i = trng.randrange(count)
                j = trng.randrange(count)
                if i == j:
                    j = (j + 1) % count
                # lock-ordering discipline: lower stripe index first
                stripes = sorted({i % 8, j % 8})
                first = locks[stripes[0]]
                second = locks[stripes[-1]]
                yield Lock(first)
                if second is not first:
                    yield Lock(second)
                yield Begin()
                a = yield Read(slot_addr(i), nwords)
                b = yield Read(slot_addr(j), nwords)
                yield Write(slot_addr(i), b)
                yield Write(slot_addr(j), a)
                yield End()
                if second is not first:
                    yield Unlock(second)
                yield Unlock(first)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """Swap invariant: the multiset of strings is a permutation of the
        bootstrap set (swaps move strings, never create or destroy them)."""
        expected = sorted(
            self.derive_value(self.params.seed, i, 0) for i in range(self.count)
        )
        actual = sorted(
            image.read_word(self.base + i * self.stride) for i in range(self.count)
        )
        if actual != expected:
            return ["string multiset is not a permutation of the original"]
        # each slot's payload words must be internally consistent
        errors = []
        for i in range(self.count):
            first = image.read_word(self.base + i * self.stride)
            for w in range(1, self.params.value_words):
                got = image.read_word(self.base + i * self.stride + 8 * w)
                if got != (first + w) & 0x7FFF_FFFF_FFFF:
                    errors.append(f"torn string in slot {i} at word {w}")
                    break
        return errors

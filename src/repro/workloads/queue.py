"""Q: enqueue/dequeue on a persistent linked queue [27, 53].

A two-lock Michael-Scott queue with a permanent dummy node: enqueuers hold
the tail lock and dequeuers the head lock, so both ends proceed in
parallel. Node layout: ``[next, seq]`` header line + payload.

The queue is the paper's posterchild for DPO dropping (Sec. 7.2): the
head/tail anchor lines and each node's ``next`` pointer are written by one
region and immediately re-written or logged by the next, so an LPO for the
same line routinely finds the prior region's DPO still queued.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, expect_word, register


class _Node:
    __slots__ = ("addr", "next", "seq")

    def __init__(self, addr: int, seq: int):
        self.addr = addr
        self.next: Optional["_Node"] = None
        self.seq = seq


@register
class Queue(Workload):
    """The Q benchmark."""

    name = "Q"
    description = "Enqueue/dequeue entries in a persistent queue"

    def install(self, machine: Machine) -> None:
        params = self.params
        head_lock = machine.new_lock("q-head")
        tail_lock = machine.new_lock("q-tail")
        anchor = machine.heap.alloc(2 * CACHE_LINE_BYTES)  # head line, tail line
        head_cell, tail_cell = anchor, anchor + CACHE_LINE_BYTES
        self.head_cell, self.tail_cell = head_cell, tail_cell

        dummy = _Node(self.alloc_node(machine, 2), 0)
        machine.bootstrap_write(dummy.addr, [0, 0])
        machine.bootstrap_write(head_cell, [dummy.addr])
        machine.bootstrap_write(tail_cell, [dummy.addr])
        state = {"head": dummy, "tail": dummy, "seq": 1, "size": 0}

        # bootstrap a few elements so dequeues find work immediately
        for i in range(params.setup_items):
            node = _Node(self.alloc_node(machine, 2), state["seq"])
            machine.bootstrap_write(node.addr, [0, node.seq])
            machine.bootstrap_write(
                node.addr + CACHE_LINE_BYTES,
                self.payload_words(self.derive_value(params.seed, node.seq, 0)),
            )
            machine.bootstrap_write(state["tail"].addr, [node.addr, state["tail"].seq])
            state["tail"].next = node
            machine.bootstrap_write(tail_cell, [node.addr])
            state["tail"] = node
            state["seq"] += 1
            state["size"] += 1

        def enqueue(op_index: int):
            yield Lock(tail_lock)
            yield Begin()
            seq = state["seq"]
            state["seq"] += 1
            node = _Node(self.alloc_node(machine, 2), seq)
            yield Write(node.addr, [0])
            yield Write(node.addr + 8, [seq])
            value = self.derive_value(params.seed, seq, op_index)
            yield Write(node.addr + CACHE_LINE_BYTES, self.payload_words(value))
            (tail_addr,) = yield Read(tail_cell, 1)
            tail = state["tail"]
            expect_word(tail_addr, tail.addr, "queue tail anchor")
            yield Write(tail.addr, [node.addr, tail.seq])
            tail.next = node
            yield Write(tail_cell, [node.addr])
            state["tail"] = node
            state["size"] += 1
            yield End()
            yield Unlock(tail_lock)

        def dequeue():
            yield Lock(head_lock)
            yield Begin()
            (head_addr,) = yield Read(head_cell, 1)
            head = state["head"]
            (next_addr, _seq) = yield Read(head.addr, 2)
            if next_addr != 0 and head.next is not None:
                node = head.next
                yield Read(node.addr + CACHE_LINE_BYTES, min(8, params.value_words))
                yield Write(head_cell, [node.addr])
                state["head"] = node
                state["size"] -= 1
            yield End()
            yield Unlock(head_lock)

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 53 + thread_index)
            for op in range(params.ops_per_thread):
                if trng.random() < 0.6:
                    yield from enqueue(op)
                else:
                    yield from dequeue()

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """Queue invariants: head reaches tail; sequence numbers ascend."""
        errors = []
        head = image.read_word(self.head_cell)
        tail = image.read_word(self.tail_cell)
        if head == 0 or tail == 0:
            return ["head or tail pointer is null"]
        addr = head
        seen = set()
        last_seq = -1
        reached_tail = False
        while addr != 0:
            if addr in seen:
                errors.append(f"cycle at node {addr:#x}")
                break
            seen.add(addr)
            if addr == tail:
                reached_tail = True
            nxt = image.read_word(addr)
            seq = image.read_word(addr + WORD_BYTES)
            if nxt != 0:
                next_seq = image.read_word(nxt + WORD_BYTES)
                if next_seq <= seq and not (seq == 0):
                    errors.append(f"sequence not ascending at {addr:#x}: {seq} -> {next_seq}")
            last_seq = seq
            addr = nxt
        if not reached_tail:
            errors.append("walking next pointers from head never reaches tail")
        return errors

"""TPCC: the New-Order transaction of TPC-C [34, 62].

A compact in-memory TPC-C subset:

* ``district`` rows (one line each): ``[next_o_id, ytd]``, guarded by
  per-district locks,
* ``stock`` rows (one line each): ``[quantity, ytd, order_cnt]``, guarded
  by striped locks acquired in ascending stripe order (deadlock-free),
* orders and their order lines are allocated per transaction.

Each New-Order atomic region: read + bump the district's ``next_o_id``,
insert the order record and 5-15 order lines, and update each touched
stock row - the paper's largest and most write-intensive region.

The transaction body is a method (``op_new_order``) so the open-loop
service workloads (:mod:`repro.workloads.service`) can drive the same
store with skewed request traffic; a Zipf-chosen district models the hot
warehouse that "Persistence and Synchronization: Friends or Foes?"
identifies as the tail-latency driver.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.common.units import CACHE_LINE_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, expect_word, register

_NUM_DISTRICTS = 8
_NUM_ITEMS = 128
_STOCK_STRIPES = 8


@register
class TPCC(Workload):
    """The TPCC benchmark (New-Order only)."""

    name = "TPCC"
    description = "New Order transaction in TPC-C"

    num_districts = _NUM_DISTRICTS

    def setup(self, machine: Machine) -> None:
        """Bootstrap district and stock rows plus their lock hierarchy."""
        self.district_base = machine.heap.alloc(_NUM_DISTRICTS * CACHE_LINE_BYTES)
        self.stock_base = machine.heap.alloc(_NUM_ITEMS * CACHE_LINE_BYTES)
        self.district_locks = [
            machine.new_lock(f"dist{d}") for d in range(_NUM_DISTRICTS)
        ]
        self.stock_locks = [
            machine.new_lock(f"stock{s}") for s in range(_STOCK_STRIPES)
        ]
        self.shadow_district: List[Dict[str, int]] = []
        self.shadow_stock: List[Dict[str, int]] = []
        for d in range(_NUM_DISTRICTS):
            self.shadow_district.append({"next_o_id": 1, "ytd": 0})
            machine.bootstrap_write(self.district_base + d * CACHE_LINE_BYTES, [1, 0])
        for i in range(_NUM_ITEMS):
            qty = 100
            self.shadow_stock.append({"qty": qty, "ytd": 0, "cnt": 0})
            machine.bootstrap_write(self.stock_base + i * CACHE_LINE_BYTES, [qty, 0, 0])

    def _district_addr(self, d: int) -> int:
        return self.district_base + d * CACHE_LINE_BYTES

    def _stock_addr(self, i: int) -> int:
        return self.stock_base + i * CACHE_LINE_BYTES

    def op_new_order(
        self,
        machine: Machine,
        trng: random.Random,
        op_index: int,
        district: int = None,
    ):
        """One New-Order transaction; ``district`` overrides the random pick."""
        d = trng.randrange(_NUM_DISTRICTS) if district is None else district
        ol_cnt = trng.randint(5, 15)
        items = sorted({trng.randrange(_NUM_ITEMS) for _ in range(ol_cnt)})
        stripes = sorted({i % _STOCK_STRIPES for i in items})
        # global lock order: district lock, then stock stripes ascending
        yield Lock(self.district_locks[d])
        for s in stripes:
            yield Lock(self.stock_locks[s])
        yield Begin()
        (o_id, ytd) = yield Read(self._district_addr(d), 2)
        expect_word(
            o_id, self.shadow_district[d]["next_o_id"], f"district {d} next_o_id"
        )
        self.shadow_district[d]["next_o_id"] = o_id + 1
        self.shadow_district[d]["ytd"] = ytd + ol_cnt
        yield Write(self._district_addr(d), [o_id + 1])
        yield Write(self._district_addr(d) + 8, [ytd + ol_cnt])
        # order record: [o_id, d, ol_cnt] + payload
        order_addr = self.alloc_node(machine, 3)
        yield Write(order_addr, [o_id, d])
        yield Write(order_addr + 16, [len(items)])
        yield Write(
            order_addr + CACHE_LINE_BYTES,
            self.payload_words(self.derive_value(self.params.seed, o_id, op_index)),
        )
        for item in items:
            (qty, s_ytd, cnt) = yield Read(self._stock_addr(item), 3)
            take = trng.randint(1, 10)
            new_qty = qty - take if qty - take >= 10 else qty - take + 91
            self.shadow_stock[item].update(qty=new_qty, ytd=s_ytd + take, cnt=cnt + 1)
            yield Write(self._stock_addr(item), [new_qty, s_ytd + take, cnt + 1])
            # order line: [o_id, item, take, amount]
            ol_addr = machine.heap.alloc(CACHE_LINE_BYTES)
            yield Write(ol_addr, [o_id, item, take, take * 7])
        yield End()
        for s in reversed(stripes):
            yield Unlock(self.stock_locks[s])
        yield Unlock(self.district_locks[d])

    def op_stock_level(self, machine: Machine, trng: random.Random, district: int):
        """TPC-C's read-only Stock-Level query: fuzzy, lock-free reads."""
        yield Read(self._district_addr(district), 2)
        items = sorted({trng.randrange(_NUM_ITEMS) for _ in range(10)})
        for item in items:
            yield Read(self._stock_addr(item), 3)

    def install(self, machine: Machine) -> None:
        params = self.params
        self.setup(machine)

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 67 + thread_index)
            for op in range(params.ops_per_thread):
                yield from self.op_new_order(machine, trng, op)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """Row invariants: order ids ascend from 1; stock stays in its
        replenishment band; ytd counters are consistent with order counts."""
        errors = []
        for d in range(_NUM_DISTRICTS):
            next_o_id = image.read_word(self.district_base + d * CACHE_LINE_BYTES)
            if next_o_id < 1:
                errors.append(f"district {d} next_o_id {next_o_id} < 1")
        for i in range(_NUM_ITEMS):
            base = self.stock_base + i * CACHE_LINE_BYTES
            qty = image.read_word(base)
            cnt = image.read_word(base + 16)
            if not (10 <= qty <= 191):
                errors.append(f"stock {i} qty {qty} outside [10, 191]")
            if cnt < 0:
                errors.append(f"stock {i} negative order count")
        return errors

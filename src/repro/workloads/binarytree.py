"""BN: insert/update entries in a binary search tree [27, 53].

Node layout (line-aligned)::

    word 0: key     word 1: left ptr    word 2: right ptr   word 3: size
    word 4...: payload (``value_bytes``)

Each operation is one atomic region nested in the tree's critical section:
inserts traverse the search path (reads), allocate and write the node and
its payload, and link it into the parent; updates overwrite the payload.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.common.units import WORD_BYTES
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Lock, Read, Unlock, Write
from repro.workloads.base import Workload, expect_word, register

_HEADER_WORDS = 4


class _ShadowNode:
    __slots__ = ("key", "left", "right", "addr")

    def __init__(self, key: int, addr: int):
        self.key = key
        self.addr = addr
        self.left: Optional["_ShadowNode"] = None
        self.right: Optional["_ShadowNode"] = None


@register
class BinaryTree(Workload):
    """The BN benchmark."""

    name = "BN"
    description = "Insert/update entries in a binary tree"

    def install(self, machine: Machine) -> None:
        params = self.params
        rng = random.Random(params.seed)
        lock = machine.new_lock("bn")
        root_cell = machine.heap.alloc(64)
        self.root_cell = root_cell
        shadow: Dict[int, _ShadowNode] = {}
        state = {"root": None}

        def bootstrap_insert(key: int) -> None:
            node = _ShadowNode(key, self.alloc_node(machine, _HEADER_WORDS))
            machine.bootstrap_write(
                node.addr, [key, 0, 0, params.value_words]
            )
            machine.bootstrap_write(
                node.addr + _HEADER_WORDS * WORD_BYTES,
                self.payload_words(self.derive_value(params.seed, key, 0)),
            )
            if state["root"] is None:
                state["root"] = node
                machine.bootstrap_write(root_cell, [node.addr])
            else:
                cur = state["root"]
                while True:
                    if key < cur.key:
                        if cur.left is None:
                            cur.left = node
                            machine.bootstrap_write(cur.addr + 1 * WORD_BYTES, [node.addr])
                            break
                        cur = cur.left
                    else:
                        if cur.right is None:
                            cur.right = node
                            machine.bootstrap_write(cur.addr + 2 * WORD_BYTES, [node.addr])
                            break
                        cur = cur.right
            shadow[key] = node

        setup_keys = rng.sample(range(1, 1 << 30), params.setup_items)
        for key in setup_keys:
            bootstrap_insert(key)

        def worker(env, thread_index: int):
            trng = random.Random(params.seed * 31 + thread_index)
            for op in range(params.ops_per_thread):
                do_insert = trng.random() >= params.update_fraction or not shadow
                yield Lock(lock)
                yield Begin()
                if do_insert:
                    key = trng.randrange(1, 1 << 30)
                    yield from self._insert(machine, state, shadow, root_cell, key, op)
                else:
                    key = trng.choice(list(shadow))
                    yield from self._update(shadow, key, op)
                yield End()
                yield Unlock(lock)

        for t in range(params.num_threads):
            machine.spawn(lambda env, t=t: worker(env, t))

    # -- operations -----------------------------------------------------------

    def _insert(self, machine, state, shadow, root_cell, key, op_index):
        value = self.derive_value(self.params.seed, key, op_index)
        cur = state["root"]
        parent, went_left = None, False
        while cur is not None:
            (node_key,) = yield Read(cur.addr, 1)
            expect_word(node_key, cur.key, f"BST node key at {cur.addr:#x}")
            if key == node_key:
                # Key exists: degrade to an update of its payload.
                yield Write(cur.addr + _HEADER_WORDS * WORD_BYTES, self.payload_words(value))
                return
            parent, went_left = cur, key < node_key
            cur = cur.left if went_left else cur.right
        node = _ShadowNode(key, self.alloc_node(machine, _HEADER_WORDS))
        shadow[key] = node
        # field-by-field initialisation, as real PM code stores it
        yield Write(node.addr, [key])
        yield Write(node.addr + 1 * WORD_BYTES, [0, 0])
        yield Write(node.addr + 3 * WORD_BYTES, [self.params.value_words])
        yield Write(node.addr + _HEADER_WORDS * WORD_BYTES, self.payload_words(value))
        if parent is None:
            state["root"] = node
            yield Write(root_cell, [node.addr])
        elif went_left:
            parent.left = node
            yield Write(parent.addr + 1 * WORD_BYTES, [node.addr])
        else:
            parent.right = node
            yield Write(parent.addr + 2 * WORD_BYTES, [node.addr])

    def _update(self, shadow, key, op_index):
        node = shadow[key]
        (node_key,) = yield Read(node.addr, 1)
        expect_word(node_key, key, f"BST node key at {node.addr:#x}")
        value = self.derive_value(self.params.seed, key, op_index + 1)
        yield Write(node.addr + _HEADER_WORDS * WORD_BYTES, self.payload_words(value))

    # -- semantic validation ----------------------------------------------------

    def validate_image(self, image):
        """BST invariants: acyclic, keys obey the search-tree ordering."""
        errors = []
        root = image.read_word(self.root_cell)
        if root == 0:
            return errors
        visited = set()
        keys = []

        def walk(addr, lo, hi):
            if addr == 0 or len(errors) > 5:
                return
            if addr in visited:
                errors.append(f"cycle at node {addr:#x}")
                return
            visited.add(addr)
            key = image.read_word(addr)
            left = image.read_word(addr + 1 * WORD_BYTES)
            right = image.read_word(addr + 2 * WORD_BYTES)
            if not (lo < key < hi):
                errors.append(f"key {key} at {addr:#x} violates range ({lo}, {hi})")
            walk(left, lo, key)
            keys.append(key)
            walk(right, key, hi)

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(100_000)
        try:
            walk(root, -1, 1 << 62)
        finally:
            sys.setrecursionlimit(old_limit)
        if keys != sorted(keys):
            errors.append("in-order traversal not sorted")
        return errors

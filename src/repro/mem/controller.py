"""Memory controllers and channels.

The machine has ``num_controllers x channels_per_controller`` channels
(Table 2: 2 MCs x 2 channels). Each channel owns a WPQ draining to the PM
image and a DRAM write path. Cache lines interleave across channels by line
address; Dependence List entries map to channels by the LSBs of the
region's LocalRID (Sec. 5.6) - the helper for that mapping lives here so
both the ASAP engine and the recovery code agree on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.address import AddressSpace
from repro.common.params import SystemConfig
from repro.engine import Scheduler
from repro.mem.image import MemoryImage
from repro.mem.timing import TimingModel
from repro.mem.wpq import (
    DPO,
    LOGHDR,
    LPO,
    WB,
    DrainArbiter,
    PersistOp,
    WritePendingQueue,
)


@dataclass
class TrafficStats:
    """Persistent-memory write-traffic accounting for one channel."""

    pm_writes_by_kind: Dict[str, int] = field(
        default_factory=lambda: {LPO: 0, DPO: 0, WB: 0, LOGHDR: 0}
    )
    pm_reads: int = 0
    dram_writes: int = 0
    crash_flush_writes: int = 0

    @property
    def pm_writes(self) -> int:
        """Total 64B writes that actually reached persistent memory."""
        return sum(self.pm_writes_by_kind.values())


class Channel:
    """One memory channel: a WPQ in front of PM plus a DRAM write path."""

    def __init__(
        self,
        index: int,
        scheduler: Scheduler,
        timing: TimingModel,
        pm_image: MemoryImage,
        wpq_entries: int,
        apply_payloads: bool = True,
        indexed: bool = False,
        drain_gate: Optional[DrainArbiter] = None,
    ):
        self.index = index
        self.stats = TrafficStats()
        self.wpq = WritePendingQueue(
            name=f"wpq[{index}]",
            scheduler=scheduler,
            capacity=wpq_entries,
            write_service=lambda: timing.pm_write_service(index),
            pm_image=pm_image,
            on_drain=self._count_drain,
            drain_watermark=timing.mem.wpq_drain_watermark,
            lazy_drain_multiplier=timing.mem.wpq_lazy_drain_multiplier,
            fifo_backpressure=timing.mem.wpq_fifo_backpressure,
            apply_payloads=apply_payloads,
            indexed=indexed,
            drain_gate=drain_gate,
        )

    def _count_drain(self, op: PersistOp) -> None:
        self.stats.pm_writes_by_kind[op.kind] += 1


class MemorySystem:
    """All channels plus the address- and RID-interleaving policy."""

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Scheduler,
        pm_image: MemoryImage,
        fast: bool = False,
    ):
        self.config = config
        self.scheduler = scheduler
        self.timing = TimingModel(config)
        self.address_space: AddressSpace = config.address_space
        self.pm_image = pm_image
        #: one shared write-bus token in the legacy serialized-drain model;
        #: None (the default) lets every channel drain concurrently
        self.drain_arbiter: Optional[DrainArbiter] = (
            None if config.memory.overlapped_drains else DrainArbiter()
        )
        self.channels: List[Channel] = [
            Channel(
                i,
                scheduler,
                self.timing,
                pm_image,
                config.memory.wpq_entries,
                apply_payloads=not fast,
                indexed=fast,
                drain_gate=self.drain_arbiter,
            )
            for i in range(config.memory.num_channels)
        ]

    # -- interleaving ------------------------------------------------------

    def channel_for_line(self, line: int) -> Channel:
        """Line-interleaved channel mapping."""
        return self.channels[(line >> 6) % len(self.channels)]

    def channel_for_rid(self, local_rid: int) -> Channel:
        """Map a region to the channel hosting its Dependence List entry.

        The paper uses the LSBs of the LocalRID (Sec. 5.6) so no cross-
        thread synchronisation is needed when assigning region ids.
        """
        return self.channels[local_rid % len(self.channels)]

    # -- persist path ------------------------------------------------------

    def issue_persist(self, op: PersistOp, extra_delay: int = 0) -> None:
        """Send a persist op from the L1 toward its channel's WPQ.

        The op completes (``on_complete``) when the WPQ accepts it, one MC
        hop after issue at the earliest, later under backpressure. Remote
        (NUMA) channels have a longer hop (Sec. 7.3).
        """
        channel = self.channel_for_line(op.target_line)
        delay = self.timing.mc_hop(channel.index) + extra_delay
        self.scheduler.after(delay, lambda: channel.wpq.submit(op))

    def issue_dram_write(self, line: int) -> None:
        """Account a dirty volatile line written back to DRAM."""
        self.channel_for_line(line).stats.dram_writes += 1

    def count_pm_read(self, line: int) -> None:
        self.channel_for_line(line).stats.pm_reads += 1

    # -- queries used by optimizations and recovery -------------------------

    def drop_from_wpqs(self, predicate: Callable[[PersistOp], bool]) -> int:
        """Drop matching queued persist ops from every channel's WPQ."""
        return sum(ch.wpq.drop_where(predicate) for ch in self.channels)

    def drop_log_ops_for_rid(self, rid: int) -> int:
        """LPO dropping across channels; equivalent to ``drop_from_wpqs``
        with the rid/log-kind predicate, but O(answer) on indexed WPQs."""
        return sum(ch.wpq.drop_log_ops_for_rid(rid) for ch in self.channels)

    def queued_dpo_for(self, data_line: int) -> Optional[PersistOp]:
        """Find an in-flight DPO/WB whose target is ``data_line`` (DPO
        dropping) - queued in the WPQ or still backpressured behind it."""
        channel = self.channel_for_line(data_line)
        for ops in (channel.wpq.queued_ops(), channel.wpq.pending_ops()):
            for op in ops:
                if op.kind in (DPO, WB) and op.target_line == data_line:
                    return op
        return None

    # -- crash -------------------------------------------------------------

    def flush_persistence_domain(self) -> int:
        """Flush every WPQ to the PM image (ADR on power failure)."""
        flushed = 0
        for ch in self.channels:
            n = ch.wpq.flush_to_pm()
            ch.stats.crash_flush_writes += n
            flushed += n
        return flushed

    # -- aggregate statistics -----------------------------------------------

    def total_pm_writes(self) -> int:
        return sum(ch.stats.pm_writes for ch in self.channels)

    def pm_writes_by_kind(self) -> Dict[str, int]:
        total: Dict[str, int] = {LPO: 0, DPO: 0, WB: 0, LOGHDR: 0}
        for ch in self.channels:
            for kind, n in ch.stats.pm_writes_by_kind.items():
                total[kind] += n
        return total

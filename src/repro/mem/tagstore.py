"""Hierarchy-global cache-line metadata: the ASAP tag extensions.

The paper extends every cache line's tag with three fields (Fig. 3 (2)):

* **PBit** - the line maps to persistent memory,
* **LockBit** - an LPO for this line is still in flight; the line must not
  be evicted or written back until the LPO completes (Sec. 4.6.1),
* **OwnerRID** - the atomic region that last wrote the line (Sec. 4.6.3).

A real implementation replicates these bits per cache level and migrates
them with coherence messages. We model them once, hierarchy-wide, in this
tag store: metadata exists while the line is cached anywhere and is handed
to the eviction hooks when the line leaves the LLC (Sec. 5.3 spill path).
The ``dirty`` bit here means "dirty somewhere in the hierarchy".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class LineMeta:
    """Metadata for one cached line (keyed by line base address).

    ``lock_count`` generalises the paper's LockBit to a counter: when a new
    region takes ownership of a line whose previous owner's LPO is still in
    flight, both LPOs hold the line; it unlocks when the count drains to
    zero. With a single bit the first completion would unlock the line
    while the second LPO is still outstanding.
    """

    line: int
    pbit: bool = False
    lock_count: int = 0
    owner_rid: Optional[int] = None
    dirty: bool = False
    #: bumped on every write; diagnostic only (CLPtr slots carry their own
    #: per-slot data version for DPO staleness checks).
    version: int = 0

    @property
    def lock_bit(self) -> bool:
        """The architectural LockBit: an LPO for this line is in flight."""
        return self.lock_count > 0


class TagStore:
    """All :class:`LineMeta` for currently cached lines."""

    def __init__(self):
        self._meta: Dict[int, LineMeta] = {}

    def __len__(self) -> int:
        return len(self._meta)

    def get(self, line: int) -> Optional[LineMeta]:
        """Return the metadata for ``line`` or None when not cached."""
        return self._meta.get(line)

    def ensure(self, line: int, pbit: bool) -> LineMeta:
        """Return metadata for ``line``, creating it on first caching."""
        meta = self._meta.get(line)
        if meta is None:
            meta = LineMeta(line=line, pbit=pbit)
            self._meta[line] = meta
        return meta

    def drop(self, line: int) -> Optional[LineMeta]:
        """Remove and return metadata when a line leaves the hierarchy."""
        return self._meta.pop(line, None)

    def locked_lines(self):
        """Iterate over lines whose LockBit is currently set."""
        return (m for m in self._meta.values() if m.lock_bit)

    def owned_by(self, rid: int):
        """Iterate over lines currently owned by region ``rid``."""
        return (m for m in self._meta.values() if m.owner_rid == rid)

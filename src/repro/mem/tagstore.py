"""Hierarchy-global cache-line metadata: the ASAP tag extensions.

The paper extends every cache line's tag with three fields (Fig. 3 (2)):

* **PBit** - the line maps to persistent memory,
* **LockBit** - an LPO for this line is still in flight; the line must not
  be evicted or written back until the LPO completes (Sec. 4.6.1),
* **OwnerRID** - the atomic region that last wrote the line (Sec. 4.6.3).

A real implementation replicates these bits per cache level and migrates
them with coherence messages. We model them once, hierarchy-wide, in this
tag store: metadata exists while the line is cached anywhere and is handed
to the eviction hooks when the line leaves the LLC (Sec. 5.3 spill path).
The ``dirty`` bit here means "dirty somewhere in the hierarchy".

``locked_lines()`` and ``owned_by()`` are served from index maps the
:class:`LineMeta` setters keep in sync at every lock/unlock and ownership
hand-off, so the queries cost O(answer), not O(cached lines). The index
maps are the store's private books; the metadata fields stay the single
source of truth (``tests/unit/test_tagstore_ops.py`` cross-checks them
under generated op sequences).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class LineMeta:
    """Metadata for one cached line (keyed by line base address).

    ``lock_count`` generalises the paper's LockBit to a counter: when a new
    region takes ownership of a line whose previous owner's LPO is still in
    flight, both LPOs hold the line; it unlocks when the count drains to
    zero. With a single bit the first completion would unlock the line
    while the second LPO is still outstanding.

    ``lock_count`` and ``owner_rid`` are properties: their setters keep the
    owning :class:`TagStore`'s locked/owner indexes current, so plain
    attribute assignment everywhere in the engine transparently maintains
    the O(1) query paths.
    """

    __slots__ = ("line", "pbit", "dirty", "version", "_lock_count", "_owner_rid", "_store")

    def __init__(
        self,
        line: int,
        pbit: bool = False,
        lock_count: int = 0,
        owner_rid: Optional[int] = None,
        dirty: bool = False,
        version: int = 0,
    ):
        self.line = line
        self.pbit = pbit
        self.dirty = dirty
        #: bumped on every write; diagnostic only (CLPtr slots carry their
        #: own per-slot data version for DPO staleness checks).
        self.version = version
        self._store: Optional["TagStore"] = None
        self._lock_count = lock_count
        self._owner_rid = owner_rid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LineMeta(line={self.line:#x}, pbit={self.pbit}, "
            f"lock_count={self._lock_count}, owner_rid={self._owner_rid}, "
            f"dirty={self.dirty}, version={self.version})"
        )

    @property
    def lock_count(self) -> int:
        return self._lock_count

    @lock_count.setter
    def lock_count(self, value: int) -> None:
        was_locked = self._lock_count > 0
        self._lock_count = value
        store = self._store
        if store is not None and was_locked != (value > 0):
            if value > 0:
                store._locked[self.line] = self
            else:
                store._locked.pop(self.line, None)

    @property
    def owner_rid(self) -> Optional[int]:
        return self._owner_rid

    @owner_rid.setter
    def owner_rid(self, rid: Optional[int]) -> None:
        old = self._owner_rid
        self._owner_rid = rid
        store = self._store
        if store is None or old == rid:
            return
        if old is not None:
            lines = store._owners.get(old)
            if lines is not None:
                lines.pop(self.line, None)
                if not lines:
                    del store._owners[old]
        if rid is not None:
            store._owners.setdefault(rid, {})[self.line] = self

    @property
    def lock_bit(self) -> bool:
        """The architectural LockBit: an LPO for this line is in flight."""
        return self._lock_count > 0


class TagStore:
    """All :class:`LineMeta` for currently cached lines."""

    def __init__(self):
        self._meta: Dict[int, LineMeta] = {}
        #: lines whose LockBit is set, kept current by the LineMeta setters
        self._locked: Dict[int, LineMeta] = {}
        #: owner rid -> {line: meta}, kept current by the LineMeta setters
        self._owners: Dict[int, Dict[int, LineMeta]] = {}

    def __len__(self) -> int:
        return len(self._meta)

    def get(self, line: int) -> Optional[LineMeta]:
        """Return the metadata for ``line`` or None when not cached."""
        return self._meta.get(line)

    def ensure(self, line: int, pbit: bool) -> LineMeta:
        """Return metadata for ``line``, creating it on first caching."""
        meta = self._meta.get(line)
        if meta is None:
            meta = LineMeta(line=line, pbit=pbit)
            meta._store = self
            self._meta[line] = meta
        return meta

    def drop(self, line: int) -> Optional[LineMeta]:
        """Remove and return metadata when a line leaves the hierarchy."""
        meta = self._meta.pop(line, None)
        if meta is not None:
            self._locked.pop(line, None)
            if meta._owner_rid is not None:
                lines = self._owners.get(meta._owner_rid)
                if lines is not None:
                    lines.pop(line, None)
                    if not lines:
                        del self._owners[meta._owner_rid]
            meta._store = None
        return meta

    def locked_lines(self) -> List[LineMeta]:
        """Lines whose LockBit is currently set, in line-address order.

        Served from the locked index - O(locked), not a scan of every
        cached line.
        """
        return [self._locked[line] for line in sorted(self._locked)]

    def owned_by(self, rid: int) -> List[LineMeta]:
        """Lines currently owned by region ``rid``, in line-address order.

        Served from the per-owner index - O(owned), not a scan of every
        cached line.
        """
        lines = self._owners.get(rid)
        if not lines:
            return []
        return [lines[line] for line in sorted(lines)]

"""A set-associative cache array with LRU and locked-line-aware victims.

The array tracks only which lines are present (tags + recency); values live
in the functional images and per-line metadata lives in the
:class:`~repro.mem.tagstore.TagStore`. Victim selection skips lines whose
LockBit is set (an LPO is in flight; Sec. 4.6.1 forbids evicting them).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

from repro.common.errors import SimulationError
from repro.common.params import CacheParams


class CacheArray:
    """Presence/recency state of one cache level (or one core's slice)."""

    def __init__(
        self,
        name: str,
        params: CacheParams,
        is_locked: Optional[Callable[[int], bool]] = None,
    ):
        """
        Args:
            name: for diagnostics ("L1[3]", "LLC"...).
            params: geometry and latency.
            is_locked: predicate consulted during victim selection; locked
                lines are never evicted.
        """
        self.name = name
        self.params = params
        self._is_locked = is_locked or (lambda line: False)
        # num_sets and assoc are derived properties on the frozen params;
        # cache them - _set_of runs on every lookup/insert/invalidate.
        self._num_sets = params.num_sets
        self._assoc = params.assoc
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def latency(self) -> int:
        return self.params.latency

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[(line >> 6) % self._num_sets]

    def lookup(self, line: int, touch: bool = True) -> bool:
        """Return True on hit; updates LRU recency when ``touch``."""
        s = self._set_of(line)
        if line in s:
            if touch:
                s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check with no statistics or recency side effects."""
        return line in self._set_of(line)

    def touch(self, line: int) -> None:
        """Bump ``line``'s recency without hit/miss accounting.

        Used when an access re-probes after a structural stall (MSHR
        exhaustion): the logical access was already classified and
        counted, so the replay must not count again.
        """
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)

    def insert(self, line: int) -> Optional[int]:
        """Insert ``line``; returns the evicted victim line, if any.

        Raises:
            SimulationError: every candidate victim is locked. Callers must
                treat this as a transient structural stall and retry (the
                lock clears when the in-flight LPO is accepted by the WPQ).
        """
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self._assoc:
            victim = self._pick_victim(s)
            if victim is None:
                raise SimulationError(
                    f"{self.name}: all ways locked in set of line {line:#x}"
                )
            del s[victim]
            self.evictions += 1
        s[line] = True
        return victim

    def _pick_victim(self, s: OrderedDict) -> Optional[int]:
        for candidate in s:  # iteration order = LRU -> MRU
            if not self._is_locked(candidate):
                return candidate
        return None

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns whether it was."""
        s = self._set_of(line)
        if line in s:
            del s[line]
            return True
        return False

    def lines(self):
        """Iterate over all resident line addresses (test/debug helper)."""
        for s in self._sets:
            yield from s.keys()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class MSHREntry:
    """Book-keeping for one outstanding miss (one line being fetched)."""

    __slots__ = ("line", "waiters")

    def __init__(self, line: int):
        self.line = line
        #: ``(core_id, done)`` completions replayed in arrival order when
        #: the fill lands - populated only on the fetch-owning LLC entry.
        self.waiters: list = []


class MSHRFile:
    """Miss Status Holding Registers of one cache array.

    The registers are what make the hierarchy non-blocking: a primary
    miss allocates one and starts the (single) memory fetch, secondary
    misses for the same line merge into it, and the fill releases it.
    The file raises on oversubscription - callers must check :attr:`full`
    first and treat a full file as a structural stall (the hierarchy
    parks the requesting core until a fill frees a register).
    """

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise SimulationError(
                f"{name}: MSHR file needs at least one register"
            )
        self.name = name
        self.capacity = capacity
        self.entries: "OrderedDict[int, MSHREntry]" = OrderedDict()
        self.allocations = 0
        self.merges = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def get(self, line: int) -> Optional[MSHREntry]:
        return self.entries.get(line)

    def allocate(self, line: int) -> MSHREntry:
        """Track a new outstanding miss for ``line``.

        Raises:
            SimulationError: the file is full (callers must stall instead)
                or the line already has an entry (merge instead).
        """
        if line in self.entries:
            raise SimulationError(
                f"{self.name}: line {line:#x} already has an MSHR"
            )
        if self.full:
            raise SimulationError(
                f"{self.name}: all {self.capacity} registers busy"
            )
        entry = MSHREntry(line)
        self.entries[line] = entry
        self.allocations += 1
        if len(self.entries) > self.peak:
            self.peak = len(self.entries)
        return entry

    def ensure(self, line: int) -> MSHREntry:
        """Return ``line``'s entry, merging if tracked, allocating if not."""
        entry = self.entries.get(line)
        if entry is not None:
            self.merges += 1
            return entry
        return self.allocate(line)

    def free(self, line: int) -> Optional[MSHREntry]:
        """Release the register when the fill completes."""
        return self.entries.pop(line, None)

"""The cache hierarchy: per-core L1/L2, a shared inclusive LLC.

Functional contents live in the images; the hierarchy provides hit/miss
latencies, evictions, and the ASAP metadata lifecycle:

* on first caching, a line's PBit is set from the page table,
* LLC victim selection never picks locked lines (in-flight LPO),
* an LLC eviction of a dirty persistent line produces a writeback persist
  op, and the scheme's ``evict_hook`` runs so ASAP can spill the OwnerRID
  to the DRAM buffer and update the Bloom filter (Sec. 5.3),
* an LLC miss consults the scheme's ``reload_hook`` so a previously spilled
  OwnerRID can be reattached to the line (Sec. 5.3).

The hierarchy is inclusive: a line leaving the LLC is invalidated in every
upper level, which is what lets one hierarchy-global tag store stand in for
per-level replicated metadata.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.common.address import line_base
from repro.common.errors import SimulationError
from repro.common.observe import SimObserver
from repro.common.params import SystemConfig
from repro.engine import Scheduler
from repro.mem.cache import CacheArray
from repro.mem.controller import MemorySystem
from repro.mem.image import MemoryImage, snapshot_line
from repro.mem.tagstore import LineMeta, TagStore
from repro.mem.wpq import WB, PersistOp

#: cycles between retries when every way of a set is LPO-locked
_LOCKED_SET_RETRY = 16

#: evict_hook(meta, wb_op): wb_op is the eviction writeback persist op when
#: the line was dirty (the hook may attach completion callbacks to it before
#: it reaches the WPQ) or None when the line was clean.
EvictHook = Callable[[LineMeta, Optional["PersistOp"]], None]
ReloadHook = Callable[[int], Tuple[Optional[int], int]]


class CacheHierarchy:
    """Timing and metadata lifecycle for all cache levels."""

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Scheduler,
        memory: MemorySystem,
        volatile_image: MemoryImage,
        is_persistent: Callable[[int], bool],
        fast: bool = False,
    ):
        self.config = config
        #: fast path: elide writeback payload snapshots (no crash window,
        #: so drained payloads are never applied or read; docs/PERF.md)
        self.fast = fast
        self.scheduler = scheduler
        self.memory = memory
        self.timing = memory.timing
        self.volatile = volatile_image
        self.is_persistent = is_persistent
        self.tags = TagStore()

        locked = self._line_locked
        self.l1: List[CacheArray] = [
            CacheArray(f"L1[{i}]", config.l1, locked)
            for i in range(config.num_cores)
        ]
        self.l2: List[CacheArray] = [
            CacheArray(f"L2[{i}]", config.l2, locked)
            for i in range(config.num_cores)
        ]
        self.llc = CacheArray("LLC", config.l3, locked)

        #: fast path only: line -> set of private-level CacheArrays holding
        #: it, so an LLC eviction invalidates just those instead of probing
        #: all 2 x num_cores arrays. Invalidations on distinct arrays
        #: commute, so the set's iteration order is irrelevant to the
        #: simulated outcome.
        self._private_holders: Optional[dict] = {} if fast else None
        if fast:
            # Latencies are constant for the machine's lifetime (the
            # TimingModel precomputes them from the frozen config), so the
            # inlined access path reads plain attributes.
            self._lat_l1 = self.timing.l1_latency()
            self._lat_l2 = self.timing.l2_latency()
            self._lat_llc = self.timing.llc_latency()
            self._lat_mem = (
                self.timing.memory_read_latency(False),
                self.timing.memory_read_latency(True),
            )
            # Shadow the class method on the instance: every consumer goes
            # through self.access, the reference path is untouched.
            self.access = self._access_fast

        #: scheme hooks (Sec. 5.3); set by the ASAP engine when active.
        self.evict_hook: Optional[EvictHook] = None
        self.reload_hook: Optional[ReloadHook] = None
        #: optional :class:`SimObserver` notified on persistent evictions
        self.observer: Optional[SimObserver] = None

        # statistics
        self.accesses = 0
        self.llc_misses = 0
        self.locked_set_stalls = 0

    # -- lock predicate ------------------------------------------------------

    def _line_locked(self, line: int) -> bool:
        meta = self.tags.get(line)
        return bool(meta and meta.lock_bit)

    # -- main access path ----------------------------------------------------

    def access(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """Perform a load/store; ``done(meta)`` fires after the hit latency.

        Functional presence state is updated immediately (the simulator is
        sequentially consistent at op granularity); only the completion
        callback is delayed.
        """
        line = line_base(addr)
        self.accesses += 1
        try:
            latency, meta = self._lookup_and_fill(core_id, line)
        except SimulationError:
            # Every way of some set is LPO-locked; retry shortly - the lock
            # clears as soon as the in-flight LPO is accepted by the WPQ.
            self.locked_set_stalls += 1
            self.scheduler.after(
                _LOCKED_SET_RETRY,
                lambda: self.access(core_id, addr, is_write, done),
            )
            return
        if is_write:
            meta.dirty = True
            meta.version += 1
        self.scheduler.after(latency, lambda: done(meta))

    def _access_fast(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """Inlined :meth:`access` for the fast core: one frame for the
        whole L1-hit path, identical statistics and fill/evict order."""
        line = addr & ~63
        self.accesses += 1
        l1 = self.l1[core_id]
        s1 = l1._sets[(line >> 6) % l1._num_sets]
        if line in s1:
            s1.move_to_end(line)
            l1.hits += 1
            latency = self._lat_l1
            meta = self.tags.ensure(line, self.is_persistent(line))
        else:
            l1.misses += 1
            latency, meta = self._miss_fast(core_id, line, l1)
            if meta is None:
                # Every way of some set is LPO-locked; retry shortly.
                self.locked_set_stalls += 1
                self.scheduler.after(
                    _LOCKED_SET_RETRY,
                    lambda: self._access_fast(core_id, addr, is_write, done),
                )
                return
        if is_write:
            meta.dirty = True
            meta.version += 1
        self.scheduler.after(latency, lambda: done(meta))

    def _miss_fast(self, core_id: int, line: int, l1: CacheArray):
        """L1-missed remainder of the fast lookup; returns (None, None) on
        a locked-set structural stall (mirrors the reference's exception
        path, with stats counted at exactly the same points)."""
        pbit = self.is_persistent(line)
        l2 = self.l2[core_id]
        try:
            s2 = l2._sets[(line >> 6) % l2._num_sets]
            if line in s2:
                s2.move_to_end(line)
                l2.hits += 1
                self._fill(l1, line)
                return self._lat_l2, self.tags.ensure(line, pbit)
            l2.misses += 1
            llc = self.llc
            s3 = llc._sets[(line >> 6) % llc._num_sets]
            if line in s3:
                s3.move_to_end(line)
                llc.hits += 1
                self._fill(l2, line)
                self._fill(l1, line)
                return self._lat_llc, self.tags.ensure(line, pbit)
            llc.misses += 1
            self.llc_misses += 1
            latency = self._lat_mem[pbit]
            if pbit:
                self.memory.count_pm_read(line)
            meta = self.tags.ensure(line, pbit)
            if pbit and self.reload_hook is not None:
                owner, extra = self.reload_hook(line)
                latency += extra
                if owner is not None:
                    meta.owner_rid = owner
            self._fill_llc(line)
            self._fill(l2, line)
            self._fill(l1, line)
            return latency, meta
        except SimulationError:
            return None, None

    def _lookup_and_fill(self, core_id: int, line: int):
        pbit = self.is_persistent(line)
        if self.l1[core_id].lookup(line):
            return self.timing.l1_latency(), self.tags.ensure(line, pbit)
        if self.l2[core_id].lookup(line):
            self._fill(self.l1[core_id], line)
            return self.timing.l2_latency(), self.tags.ensure(line, pbit)
        if self.llc.lookup(line):
            self._fill(self.l2[core_id], line)
            self._fill(self.l1[core_id], line)
            return self.timing.llc_latency(), self.tags.ensure(line, pbit)
        # LLC miss: fetch from memory.
        self.llc_misses += 1
        latency = self.timing.memory_read_latency(pbit)
        if pbit:
            self.memory.count_pm_read(line)
        meta = self.tags.ensure(line, pbit)
        if pbit and self.reload_hook is not None:
            owner, extra = self.reload_hook(line)
            latency += extra
            if owner is not None:
                meta.owner_rid = owner
        self._fill_llc(line)
        self._fill(self.l2[core_id], line)
        self._fill(self.l1[core_id], line)
        return latency, meta

    # -- fills and evictions ---------------------------------------------------

    def _fill(self, array: CacheArray, line: int) -> None:
        """Insert into a private level; victims just lose presence there."""
        victim = array.insert(line)
        holders = self._private_holders
        if holders is not None:
            if victim is not None:
                vset = holders.get(victim)
                if vset is not None:
                    vset.discard(array)
                    if not vset:
                        del holders[victim]
            lset = holders.get(line)
            if lset is None:
                holders[line] = {array}
            else:
                lset.add(array)

    def _fill_llc(self, line: int) -> None:
        victim = self.llc.insert(line)
        if victim is not None:
            self._evict_from_llc(victim)

    def _evict_from_llc(self, victim: int) -> None:
        """A line leaves the hierarchy: enforce inclusion, write back, spill."""
        if self._private_holders is not None:
            for array in self._private_holders.pop(victim, ()):
                array.invalidate(victim)
        else:
            for array in self.l1:
                array.invalidate(victim)
            for array in self.l2:
                array.invalidate(victim)
        meta = self.tags.drop(victim)
        if meta is None:
            return
        wb_op = None
        if meta.dirty and meta.pbit:
            wb_op = PersistOp(
                kind=WB,
                target_line=victim,
                data_line=victim,
                payload=None if self.fast else snapshot_line(self.volatile, victim),
                rid=meta.owner_rid,
            )
        if meta.pbit and self.observer is not None:
            self.observer.line_evicted(meta, wb_op)
        if self.evict_hook is not None and meta.pbit:
            # The hook may mark wb_op dropped: redo-style schemes must not
            # let uncommitted data reach its in-place address (the log
            # already holds it; Sec. 2.3's no-force discipline).
            self.evict_hook(meta, wb_op)
        if wb_op is not None and not wb_op.dropped:
            self.memory.issue_persist(wb_op)
        elif meta.dirty and not meta.pbit:
            self.memory.issue_dram_write(victim)

    # -- explicit operations used by schemes -----------------------------------

    def writeback_line(self, line: int, rid: Optional[int] = None) -> Optional[PersistOp]:
        """Clean a dirty persistent line by issuing a WB persist op.

        Used by the software scheme's flush instructions and by redo
        logging's post-commit data updates. Returns the op (its
        ``on_complete`` can be set by the caller before it is accepted) or
        None when the line was already clean or is volatile.
        """
        meta = self.tags.get(line)
        if meta is None or not meta.dirty or not meta.pbit:
            return None
        meta.dirty = False
        op = PersistOp(
            kind=WB,
            target_line=line,
            data_line=line,
            payload=None if self.fast else snapshot_line(self.volatile, line),
            rid=rid,
        )
        self.memory.issue_persist(op)
        return op

    def drop_line(self, line: int) -> None:
        """Remove a line everywhere without writeback (test helper)."""
        if self._private_holders is not None:
            self._private_holders.pop(line, None)
        for array in self.l1:
            array.invalidate(line)
        for array in self.l2:
            array.invalidate(line)
        self.llc.invalidate(line)
        self.tags.drop(line)

"""The cache hierarchy: per-core L1/L2, a shared inclusive LLC.

Functional contents live in the images; the hierarchy provides hit/miss
latencies, evictions, and the ASAP metadata lifecycle:

* on first caching, a line's PBit is set from the page table,
* LLC victim selection never picks locked lines (in-flight LPO),
* an LLC eviction of a dirty persistent line produces a writeback persist
  op, and the scheme's ``evict_hook`` runs so ASAP can spill the OwnerRID
  to the DRAM buffer and update the Bloom filter (Sec. 5.3),
* an LLC miss consults the scheme's ``reload_hook`` so a previously spilled
  OwnerRID can be reattached to the line (Sec. 5.3).

The hierarchy is inclusive: a line leaving the LLC is invalidated in every
upper level, which is what lets one hierarchy-global tag store stand in for
per-level replicated metadata.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.common.address import line_base
from repro.common.errors import SimulationError
from repro.common.observe import SimObserver
from repro.common.params import SystemConfig
from repro.engine import Scheduler, WaitQueue
from repro.mem.cache import CacheArray, MSHRFile
from repro.mem.controller import MemorySystem
from repro.mem.image import MemoryImage, snapshot_line
from repro.mem.tagstore import LineMeta, TagStore
from repro.mem.wpq import WB, PersistOp

#: cycles between retries when every way of a set is LPO-locked
_LOCKED_SET_RETRY = 16

#: fill depth of a classified access: how far down the hierarchy the probe
#: went before hitting (every level above the hit level is filled).
_L1, _L2, _LLC, _MEM = 0, 1, 2, 3

#: evict_hook(meta, wb_op): wb_op is the eviction writeback persist op when
#: the line was dirty (the hook may attach completion callbacks to it before
#: it reaches the WPQ) or None when the line was clean.
EvictHook = Callable[[LineMeta, Optional["PersistOp"]], None]
ReloadHook = Callable[[int], Tuple[Optional[int], int]]


class CacheHierarchy:
    """Timing and metadata lifecycle for all cache levels."""

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Scheduler,
        memory: MemorySystem,
        volatile_image: MemoryImage,
        is_persistent: Callable[[int], bool],
        fast: bool = False,
    ):
        self.config = config
        #: fast path: elide writeback payload snapshots (no crash window,
        #: so drained payloads are never applied or read; docs/PERF.md)
        self.fast = fast
        self.scheduler = scheduler
        self.memory = memory
        self.timing = memory.timing
        self.volatile = volatile_image
        self.is_persistent = is_persistent
        self.tags = TagStore()

        locked = self._line_locked
        self.l1: List[CacheArray] = [
            CacheArray(f"L1[{i}]", config.l1, locked)
            for i in range(config.num_cores)
        ]
        self.l2: List[CacheArray] = [
            CacheArray(f"L2[{i}]", config.l2, locked)
            for i in range(config.num_cores)
        ]
        self.llc = CacheArray("LLC", config.l3, locked)

        # Non-blocking mode (mshrs_per_cache > 0): per-array MSHR files.
        # The LLC file owns the outstanding fetches (one per line, with
        # the merged waiters); private-level files model each core's
        # bounded outstanding-miss tracking. mshrs_per_cache == 0 keeps
        # the legacy model: lines are installed immediately at access
        # time and only the completion callback is delayed.
        mshrs = config.memory.mshrs_per_cache
        if mshrs > 0:
            self.l1_mshrs: Optional[List[MSHRFile]] = [
                MSHRFile(f"MSHR-L1[{i}]", mshrs)
                for i in range(config.num_cores)
            ]
            self.l2_mshrs: Optional[List[MSHRFile]] = [
                MSHRFile(f"MSHR-L2[{i}]", mshrs)
                for i in range(config.num_cores)
            ]
            self.llc_mshrs: Optional[MSHRFile] = MSHRFile("MSHR-LLC", mshrs)
            self._mshr_free_waiters: Optional[WaitQueue] = WaitQueue(scheduler)
        else:
            self.l1_mshrs = None
            self.l2_mshrs = None
            self.llc_mshrs = None
            self._mshr_free_waiters = None

        #: fast path only: line -> set of private-level CacheArrays holding
        #: it, so an LLC eviction invalidates just those instead of probing
        #: all 2 x num_cores arrays. Invalidations on distinct arrays
        #: commute, so the set's iteration order is irrelevant to the
        #: simulated outcome.
        self._private_holders: Optional[dict] = {} if fast else None
        if fast:
            # Latencies are constant for the machine's lifetime (the
            # TimingModel precomputes them from the frozen config), so the
            # inlined access path reads plain attributes.
            self._lat_l1 = self.timing.l1_latency()
            self._lat_l2 = self.timing.l2_latency()
            self._lat_llc = self.timing.llc_latency()
            self._lat_mem = (
                self.timing.memory_read_latency(False),
                self.timing.memory_read_latency(True),
            )
            # Shadow the class method on the instance: every consumer goes
            # through self.access, the reference path is untouched.
            self.access = self._access_fast

        #: scheme hooks (Sec. 5.3); set by the ASAP engine when active.
        self.evict_hook: Optional[EvictHook] = None
        self.reload_hook: Optional[ReloadHook] = None
        #: optional :class:`SimObserver` notified on persistent evictions
        self.observer: Optional[SimObserver] = None

        # statistics
        self.accesses = 0
        self.llc_misses = 0
        self.locked_set_stalls = 0
        #: secondary misses that merged into an in-flight fetch (one fetch
        #: answers them all, so they are *not* counted in ``llc_misses``)
        self.mshr_merges = 0
        #: structural stalls: a primary miss found every needed MSHR file
        #: full and parked until a fill freed a register (re-parks count)
        self.mshr_stalls = 0

    # -- lock predicate ------------------------------------------------------

    def _line_locked(self, line: int) -> bool:
        meta = self.tags.get(line)
        return bool(meta and meta.lock_bit)

    # -- main access path ----------------------------------------------------

    def access(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """Perform a load/store.

        On a hit (and in the legacy ``mshrs_per_cache == 0`` model, on any
        access) functional presence state is updated immediately and only
        ``done(meta)`` is delayed by the access latency. In the
        non-blocking model an LLC miss instead allocates an MSHR, the line
        is installed when the memory fill lands, and every requester that
        merged into the fetch completes at that point.

        The logical access is classified and counted exactly once here;
        structural stalls (locked sets, MSHR exhaustion) retry internally
        without re-counting. The pre-fix model re-entered ``access`` on a
        locked-set stall and inflated ``accesses`` plus the per-level
        hit/miss counters once per retry.
        """
        line = line_base(addr)
        self.accesses += 1
        pbit = self.is_persistent(line)
        if self.l1[core_id].lookup(line):
            meta = self.tags.ensure(line, pbit)
            if is_write:
                meta.dirty = True
                meta.version += 1
            self.scheduler.after(self.timing.l1_latency(), lambda: done(meta))
            return
        if self.l2[core_id].lookup(line):
            level, latency = _L2, self.timing.l2_latency()
        elif self.llc.lookup(line):
            level, latency = _LLC, self.timing.llc_latency()
        elif self.llc_mshrs is not None:
            self._miss_to_memory(core_id, line, pbit, is_write, done)
            return
        else:
            level, latency = _MEM, 0
        meta = self.tags.ensure(line, pbit)
        if level == _MEM:
            # Legacy immediate-fill fetch (mshrs_per_cache == 0).
            self.llc_misses += 1
            latency = self.timing.memory_read_latency(pbit)
            if pbit:
                self.memory.count_pm_read(line)
            if pbit and self.reload_hook is not None:
                owner, extra = self.reload_hook(line)
                latency += extra
                if owner is not None:
                    meta.owner_rid = owner
        if is_write:
            meta.dirty = True
            meta.version += 1
        self._fill_and_finish(level, core_id, line, latency, meta, done)

    def _access_fast(
        self,
        core_id: int,
        addr: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """Inlined :meth:`access` for the fast core: one frame for the
        whole L1-hit path, identical statistics and fill/evict order."""
        line = addr & ~63
        self.accesses += 1
        l1 = self.l1[core_id]
        s1 = l1._sets[(line >> 6) % l1._num_sets]
        if line in s1:
            s1.move_to_end(line)
            l1.hits += 1
            meta = self.tags.ensure(line, self.is_persistent(line))
            if is_write:
                meta.dirty = True
                meta.version += 1
            self.scheduler.after(self._lat_l1, lambda: done(meta))
            return
        l1.misses += 1
        self._miss_fast(core_id, line, is_write, done)

    def _miss_fast(
        self,
        core_id: int,
        line: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """L1-missed remainder of the fast lookup: inlined L2/LLC probes
        with precomputed latencies, then the shared miss/fill machinery
        (statistics counted at exactly the reference path's points)."""
        pbit = self.is_persistent(line)
        l2 = self.l2[core_id]
        s2 = l2._sets[(line >> 6) % l2._num_sets]
        if line in s2:
            s2.move_to_end(line)
            l2.hits += 1
            level, latency = _L2, self._lat_l2
        else:
            l2.misses += 1
            llc = self.llc
            s3 = llc._sets[(line >> 6) % llc._num_sets]
            if line in s3:
                s3.move_to_end(line)
                llc.hits += 1
                level, latency = _LLC, self._lat_llc
            elif self.llc_mshrs is not None:
                llc.misses += 1
                self._miss_to_memory(core_id, line, pbit, is_write, done)
                return
            else:
                llc.misses += 1
                level, latency = _MEM, 0
        meta = self.tags.ensure(line, pbit)
        if level == _MEM:
            self.llc_misses += 1
            latency = self._lat_mem[pbit]
            if pbit:
                self.memory.count_pm_read(line)
            if pbit and self.reload_hook is not None:
                owner, extra = self.reload_hook(line)
                latency += extra
                if owner is not None:
                    meta.owner_rid = owner
        if is_write:
            meta.dirty = True
            meta.version += 1
        self._fill_and_finish(level, core_id, line, latency, meta, done)

    def _fill_and_finish(
        self,
        level: int,
        core_id: int,
        line: int,
        latency: int,
        meta: LineMeta,
        done: Callable[[LineMeta], None],
    ) -> None:
        """Install ``line`` at every level it missed in, then schedule the
        completion. The access was already classified and counted, and
        fills are the only step a fully LPO-locked set can stall - so only
        the fills retry (inserts are idempotent), never the accounting."""
        try:
            if level == _MEM:
                self._fill_llc(line)
            if level >= _LLC:
                self._fill(self.l2[core_id], line)
            if level >= _L2:
                self._fill(self.l1[core_id], line)
        except SimulationError:
            # Every way of some set is LPO-locked; retry shortly - the lock
            # clears as soon as the in-flight LPO is accepted by the WPQ.
            self.locked_set_stalls += 1
            self.scheduler.after(
                _LOCKED_SET_RETRY,
                lambda: self._fill_and_finish(
                    level, core_id, line, latency, meta, done
                ),
            )
            return
        self.scheduler.after(latency, lambda: done(meta))

    # -- non-blocking misses (MSHRs) -------------------------------------------

    def _miss_to_memory(
        self,
        core_id: int,
        line: int,
        pbit: bool,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """LLC miss in the non-blocking hierarchy (``mshrs_per_cache > 0``).

        Primary miss: allocate an MSHR at every missed level and start the
        memory fetch. Secondary miss: merge - the one in-flight fetch
        answers every requester, so no second ``llc_misses`` count, PM
        read, or reload-hook consultation. No free register: the
        requesting core parks until a fill completes.
        """
        fetch = self.llc_mshrs.get(line)
        l1m = self.l1_mshrs[core_id]
        l2m = self.l2_mshrs[core_id]
        if fetch is not None:
            if (l1m.get(line) is None and l1m.full) or (
                l2m.get(line) is None and l2m.full
            ):
                self._stall_on_mshrs(core_id, line, is_write, done)
                return
            meta = self.tags.ensure(line, pbit)
            if is_write:
                meta.dirty = True
                meta.version += 1
            self.mshr_merges += 1
            l1m.ensure(line)
            l2m.ensure(line)
            fetch.waiters.append((core_id, done))
            if self.observer is not None:
                self.observer.mshr_merged(self, line, core_id)
            return
        if self.llc_mshrs.full or l1m.full or l2m.full:
            self._stall_on_mshrs(core_id, line, is_write, done)
            return
        self.llc_misses += 1
        latency = self.timing.memory_read_latency(pbit)
        if pbit:
            self.memory.count_pm_read(line)
        meta = self.tags.ensure(line, pbit)
        if pbit and self.reload_hook is not None:
            owner, extra = self.reload_hook(line)
            latency += extra
            if owner is not None:
                meta.owner_rid = owner
        if is_write:
            meta.dirty = True
            meta.version += 1
        fetch = self.llc_mshrs.allocate(line)
        l1m.allocate(line)
        l2m.allocate(line)
        fetch.waiters.append((core_id, done))
        if self.observer is not None:
            self.observer.mshr_allocated(self, line, core_id)
        self.scheduler.after(latency, lambda: self._complete_fill(line, meta))

    def _stall_on_mshrs(
        self,
        core_id: int,
        line: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        self.mshr_stalls += 1
        if self.observer is not None:
            self.observer.mshr_stalled(self, line, core_id)
        self._mshr_free_waiters.park(
            lambda: self._mshr_retry(core_id, line, is_write, done)
        )

    def _mshr_retry(
        self,
        core_id: int,
        line: int,
        is_write: bool,
        done: Callable[[LineMeta], None],
    ) -> None:
        """Woken after a fill freed registers. The world may have moved on
        while the access was parked: the line may have landed (late hit),
        still be in flight (merge), or need a fresh fetch. Re-probe
        silently - the access was classified and counted when it first
        entered the hierarchy."""
        pbit = self.is_persistent(line)
        if self.l1[core_id].contains(line):
            self.l1[core_id].touch(line)
            level, latency = _L1, self.timing.l1_latency()
        elif self.l2[core_id].contains(line):
            self.l2[core_id].touch(line)
            level, latency = _L2, self.timing.l2_latency()
        elif self.llc.contains(line):
            self.llc.touch(line)
            level, latency = _LLC, self.timing.llc_latency()
        else:
            self._miss_to_memory(core_id, line, pbit, is_write, done)
            return
        meta = self.tags.ensure(line, pbit)
        if is_write:
            meta.dirty = True
            meta.version += 1
        self._fill_and_finish(level, core_id, line, latency, meta, done)

    def _complete_fill(self, line: int, meta: LineMeta) -> None:
        """The memory fetch for ``line`` arrived: install the line at the
        LLC and in every waiter's private levels, release the MSHRs, and
        replay the queued completions in arrival order. A fully LPO-locked
        set retries the whole installation (inserts are idempotent),
        exactly like the synchronous fill path."""
        fetch = self.llc_mshrs.get(line)
        try:
            self._fill_llc(line)
            for core_id, _done in fetch.waiters:
                self._fill(self.l2[core_id], line)
                self._fill(self.l1[core_id], line)
        except SimulationError:
            self.locked_set_stalls += 1
            self.scheduler.after(
                _LOCKED_SET_RETRY, lambda: self._complete_fill(line, meta)
            )
            return
        self.llc_mshrs.free(line)
        for core_id, _done in fetch.waiters:
            self.l1_mshrs[core_id].free(line)
            self.l2_mshrs[core_id].free(line)
        if self.observer is not None:
            self.observer.mshr_filled(self, line, len(fetch.waiters))
        for _core_id, waiter_done in fetch.waiters:
            waiter_done(meta)
        # Exactly one LLC register was freed; give it to the oldest
        # parked miss (it re-probes and may re-park if its private file
        # is still busy with a different in-flight line).
        self._mshr_free_waiters.wake_one()

    # -- fills and evictions ---------------------------------------------------

    def _fill(self, array: CacheArray, line: int) -> None:
        """Insert into a private level; victims just lose presence there."""
        victim = array.insert(line)
        holders = self._private_holders
        if holders is not None:
            if victim is not None:
                vset = holders.get(victim)
                if vset is not None:
                    vset.discard(array)
                    if not vset:
                        del holders[victim]
            lset = holders.get(line)
            if lset is None:
                holders[line] = {array}
            else:
                lset.add(array)

    def _fill_llc(self, line: int) -> None:
        victim = self.llc.insert(line)
        if victim is not None:
            self._evict_from_llc(victim)

    def _evict_from_llc(self, victim: int) -> None:
        """A line leaves the hierarchy: enforce inclusion, write back, spill."""
        if self._private_holders is not None:
            for array in self._private_holders.pop(victim, ()):
                array.invalidate(victim)
        else:
            for array in self.l1:
                array.invalidate(victim)
            for array in self.l2:
                array.invalidate(victim)
        meta = self.tags.drop(victim)
        if meta is None:
            return
        wb_op = None
        if meta.dirty and meta.pbit:
            wb_op = PersistOp(
                kind=WB,
                target_line=victim,
                data_line=victim,
                payload=None if self.fast else snapshot_line(self.volatile, victim),
                rid=meta.owner_rid,
            )
        if meta.pbit and self.observer is not None:
            self.observer.line_evicted(meta, wb_op)
        if self.evict_hook is not None and meta.pbit:
            # The hook may mark wb_op dropped: redo-style schemes must not
            # let uncommitted data reach its in-place address (the log
            # already holds it; Sec. 2.3's no-force discipline).
            self.evict_hook(meta, wb_op)
        if wb_op is not None and not wb_op.dropped:
            self.memory.issue_persist(wb_op)
        elif meta.dirty and not meta.pbit:
            self.memory.issue_dram_write(victim)

    # -- explicit operations used by schemes -----------------------------------

    def writeback_line(self, line: int, rid: Optional[int] = None) -> Optional[PersistOp]:
        """Clean a dirty persistent line by issuing a WB persist op.

        Used by the software scheme's flush instructions and by redo
        logging's post-commit data updates. Returns the op (its
        ``on_complete`` can be set by the caller before it is accepted) or
        None when the line was already clean or is volatile.
        """
        meta = self.tags.get(line)
        if meta is None or not meta.dirty or not meta.pbit:
            return None
        meta.dirty = False
        op = PersistOp(
            kind=WB,
            target_line=line,
            data_line=line,
            payload=None if self.fast else snapshot_line(self.volatile, line),
            rid=rid,
        )
        self.memory.issue_persist(op)
        return op

    def drop_line(self, line: int) -> None:
        """Remove a line everywhere without writeback (test helper)."""
        if self._private_holders is not None:
            self._private_holders.pop(line, None)
        for array in self.l1:
            array.invalidate(line)
        for array in self.l2:
            array.invalidate(line)
        self.llc.invalidate(line)
        self.tags.drop(line)

"""Functional memory images at 8-byte-word granularity.

An image is a sparse map from word-aligned addresses to integers. Unwritten
words read as zero, which matches zero-initialised simulated memory.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.common.address import line_base, split_words, words_of_line
from repro.common.errors import SimulationError
from repro.common.units import WORD_BYTES


class MemoryImage:
    """A sparse, word-granular functional memory."""

    def __init__(self, name: str = "mem"):
        self.name = name
        self._words: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._words)

    def read_word(self, addr: int) -> int:
        """Read the word at ``addr`` (must be 8-byte aligned)."""
        if addr % WORD_BYTES:
            raise SimulationError(f"unaligned word read at {addr:#x}")
        return self._words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Write the word at ``addr`` (must be 8-byte aligned)."""
        if addr % WORD_BYTES:
            raise SimulationError(f"unaligned word write at {addr:#x}")
        self._words[addr] = value

    def read_range(self, addr: int, nbytes: int) -> tuple:
        """Read every word overlapping ``[addr, addr+nbytes)``."""
        return tuple(self.read_word(w) for w in split_words(addr, nbytes))

    def write_range(self, addr: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``addr``'s containing word."""
        base = addr & ~(WORD_BYTES - 1)
        for i, value in enumerate(values):
            self.write_word(base + i * WORD_BYTES, value)

    def read_line(self, addr: int) -> Dict[int, int]:
        """Snapshot the cache line containing ``addr`` as {word addr: value}.

        Only materialised words are returned; absent words are zero.
        """
        return {
            w: self._words[w] for w in words_of_line(addr) if w in self._words
        }

    def apply(self, payload: Mapping[int, int]) -> None:
        """Apply a {word addr: value} payload (e.g. a drained persist op)."""
        for addr, value in payload.items():
            self.write_word(addr, value)

    def apply_line_exact(self, line_addr: int, payload: Mapping[int, int]) -> None:
        """Overwrite a full cache line with ``payload``.

        Words of the line absent from ``payload`` are reset to zero: a line
        snapshot captures the whole 64 bytes, so restoring it must also
        restore the zeros.
        """
        base = line_base(line_addr)
        for w in words_of_line(base):
            if w in payload:
                self._words[w] = payload[w]
            else:
                self._words.pop(w, None)

    def copy(self) -> "MemoryImage":
        """Deep copy (used by the crash machinery to freeze PM state)."""
        dup = MemoryImage(self.name)
        dup._words = dict(self._words)
        return dup

    def items(self):
        """Iterate over (word addr, value) pairs of materialised words."""
        return self._words.items()

    def equal_on(self, other: "MemoryImage", addrs: Iterable[int]) -> bool:
        """Compare two images on a set of word addresses."""
        return all(self.read_word(a) == other.read_word(a) for a in addrs)


class FastMemoryImage(MemoryImage):
    """A :class:`MemoryImage` without per-word alignment checks.

    Functionally identical on well-formed traffic (the framework only ever
    issues word-aligned addresses; the full test suite runs against the
    checked image). The fast simulation path uses this for the volatile
    image because ``read_word``/``write_word`` are the two most-called
    functions in the profile and the modulo guard plus f-string machinery
    dominates their cost. Misaligned addresses silently truncate here
    instead of raising - acceptable only because the reference path, which
    every workload also runs under in CI, still raises.
    """

    def read_word(self, addr: int) -> int:
        return self._words.get(addr, 0)

    def write_word(self, addr: int, value: int) -> None:
        self._words[addr] = value

    def write_range(self, addr: int, values: Iterable[int]) -> None:
        base = addr & ~(WORD_BYTES - 1)
        words = self._words
        for i, value in enumerate(values):
            words[base + i * WORD_BYTES] = value


def snapshot_line(image: MemoryImage, addr: int) -> Dict[int, int]:
    """Snapshot the full cache line containing ``addr`` from ``image``.

    The result maps every materialised word of the line to its value; it is
    the payload format carried by persist operations.
    """
    return image.read_line(line_base(addr))

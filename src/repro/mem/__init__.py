"""Memory substrate: functional images, caches, WPQs, memory controllers.

The substrate separates *function* from *timing*:

* :class:`~repro.mem.image.MemoryImage` holds actual word values. The
  machine keeps two: the volatile image (what the CPUs see) and the PM
  image (what survives a crash). The PM image is only updated by WPQ
  drains and by the persistence-domain flush performed on a crash.
* The cache hierarchy and memory controllers provide latencies and
  occupancy (queueing/backpressure) but never store data values; data
  payloads are snapshotted into persist operations when those are created.
"""

from repro.mem.image import MemoryImage, snapshot_line
from repro.mem.tagstore import LineMeta, TagStore
from repro.mem.cache import CacheArray
from repro.mem.wpq import PersistOp, WritePendingQueue
from repro.mem.timing import TimingModel
from repro.mem.controller import Channel, MemorySystem

__all__ = [
    "MemoryImage",
    "snapshot_line",
    "LineMeta",
    "TagStore",
    "CacheArray",
    "PersistOp",
    "WritePendingQueue",
    "TimingModel",
    "Channel",
    "MemorySystem",
]

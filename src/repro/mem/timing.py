"""Latency bookkeeping derived from :class:`~repro.common.params.MemoryParams`.

Centralising the arithmetic keeps the Fig. 10 latency sweep a one-knob
change (``pm_latency_multiplier``) and gives tests a single place to assert
the derived numbers.
"""

from __future__ import annotations

from repro.common.params import MemoryParams, SystemConfig


class TimingModel:
    """Derived latencies for one machine instance."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.mem: MemoryParams = config.memory

    # -- read path ---------------------------------------------------------

    def l1_latency(self) -> int:
        return self.config.l1.latency

    def l2_latency(self) -> int:
        return self.config.l1.latency + self.config.l2.latency

    def llc_latency(self) -> int:
        return self.l2_latency() + self.config.l3.latency

    def memory_read_latency(self, is_pm: bool) -> int:
        """LLC-miss service latency from DRAM or PM."""
        device = (
            self.mem.effective_pm_read_latency
            if is_pm
            else self.mem.dram_read_latency
        )
        return self.llc_latency() + device

    # -- persist path ------------------------------------------------------

    def channel_multiplier(self, channel_index: int) -> float:
        """NUMA scaling for one channel's persist path (Sec. 7.3)."""
        if channel_index in self.mem.numa_remote_channels:
            return self.mem.numa_remote_multiplier
        return 1.0

    def mc_hop(self, channel_index: int = 0) -> int:
        """One-way latency from the L1 to a memory controller."""
        return round(self.mem.mc_hop_latency * self.channel_multiplier(channel_index))

    def pm_write_service(self, channel_index: int = 0) -> int:
        """Cycles the channel is busy draining one line from the WPQ to PM."""
        return max(
            1,
            round(
                self.mem.effective_pm_write_service
                * self.channel_multiplier(channel_index)
            ),
        )

    def dram_write_service(self) -> int:
        return self.mem.dram_write_service

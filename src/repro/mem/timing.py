"""Latency bookkeeping derived from :class:`~repro.common.params.MemoryParams`.

Centralising the arithmetic keeps the Fig. 10 latency sweep a one-knob
change (``pm_latency_multiplier``) and gives tests a single place to assert
the derived numbers.
"""

from __future__ import annotations

from repro.common.params import MemoryParams, SystemConfig


class TimingModel:
    """Derived latencies for one machine instance.

    The config is frozen for the machine's lifetime, so every derived
    number is computed once here and the methods are table lookups - the
    persist path asks for ``mc_hop``/``pm_write_service`` on every single
    persist op, which made the repeated round()/multiplier arithmetic a
    measurable slice of the profile (docs/PERF.md).
    """

    def __init__(self, config: SystemConfig):
        self.config = config
        self.mem: MemoryParams = config.memory
        self._l1 = config.l1.latency
        self._l2 = self._l1 + config.l2.latency
        self._llc = self._l2 + config.l3.latency
        self._mem_read = (
            self._llc + self.mem.dram_read_latency,  # [False] DRAM
            self._llc + self.mem.effective_pm_read_latency,  # [True] PM
        )
        nch = self.mem.num_channels
        self._mult = tuple(
            self.mem.numa_remote_multiplier
            if ch in self.mem.numa_remote_channels
            else 1.0
            for ch in range(nch)
        )
        self._mc_hop = tuple(
            round(self.mem.mc_hop_latency * m) for m in self._mult
        )
        self._pm_write_service = tuple(
            max(1, round(self.mem.effective_pm_write_service * m))
            for m in self._mult
        )

    # -- read path ---------------------------------------------------------

    def l1_latency(self) -> int:
        return self._l1

    def l2_latency(self) -> int:
        return self._l2

    def llc_latency(self) -> int:
        return self._llc

    def memory_read_latency(self, is_pm: bool) -> int:
        """LLC-miss service latency from DRAM or PM.

        With the non-blocking hierarchy this is also the MSHR occupancy
        of one fetch: the allocate-to-fill window. The fetch is charged
        exactly once per primary miss; requesters that merge into it
        wait only for the remainder of the window (docs/MEMORY.md).
        """
        return self._mem_read[is_pm]

    # -- persist path ------------------------------------------------------

    def channel_multiplier(self, channel_index: int) -> float:
        """NUMA scaling for one channel's persist path (Sec. 7.3)."""
        if channel_index < len(self._mult):
            return self._mult[channel_index]
        return (
            self.mem.numa_remote_multiplier
            if channel_index in self.mem.numa_remote_channels
            else 1.0
        )

    def mc_hop(self, channel_index: int = 0) -> int:
        """One-way latency from the L1 to a memory controller."""
        if channel_index < len(self._mc_hop):
            return self._mc_hop[channel_index]
        return round(self.mem.mc_hop_latency * self.channel_multiplier(channel_index))

    def pm_write_service(self, channel_index: int = 0) -> int:
        """Cycles the channel is busy draining one line from the WPQ to PM."""
        if channel_index < len(self._pm_write_service):
            return self._pm_write_service[channel_index]
        return max(
            1,
            round(
                self.mem.effective_pm_write_service
                * self.channel_multiplier(channel_index)
            ),
        )

    def dram_write_service(self) -> int:
        return self.mem.dram_write_service

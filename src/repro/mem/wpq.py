"""The Write Pending Queue (WPQ) of one memory channel.

The WPQ is inside the persistence domain (ADR, Sec. 4.1): a persist
operation *completes* the moment the queue accepts it, and on a power
failure every queued entry is flushed to the persistent medium. The queue
drains to PM at the device's write service rate; a full queue exerts
backpressure on new persist operations, which is how slow PM technologies
slow down schemes with synchronous persist operations (Fig. 10).

Entry removal before drain ("dropping") implements two of ASAP's traffic
optimizations (Sec. 5.1): LPO dropping (the region committed, its log is no
longer needed) and DPO dropping (a later region's LPO carries the same
bytes).

Backpressure preserves arrival order: ops submitted while the queue is full
wait in an explicit FIFO submission queue and are admitted oldest-first as
entries drain. A memory controller never reorders same-address writes, and
ASAP's commit ordering relies on that - if a later region's DPO could be
accepted ahead of an earlier region's backpressured DPO for the same line,
the stale payload would drain last and silently overwrite the committed
value (the cross-thread RMW hazard the property suite falsified on small
WPQs). For the same reason ``drop_where`` covers the submission queue too:
a backpressured DPO holds exactly the bytes a newly accepted LPO just
logged, so it is as superseded as a queued one.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.common.errors import SimulationError
from repro.common.observe import SimObserver
from repro.engine import Scheduler, WaitQueue
from repro.mem.image import MemoryImage

_op_ids = itertools.count()

#: persist-op kinds
LPO = "lpo"
DPO = "dpo"
WB = "wb"  # plain eviction writeback of a dirty persistent line
LOGHDR = "loghdr"  # a filled log-record header moving from the LH-WPQ


@dataclass(slots=True)
class PersistOp:
    """One pending 64-byte write to persistent memory.

    Attributes:
        kind: LPO / DPO / WB / LOGHDR.
        target_line: PM line address the write lands on (a log entry
            address for LPOs, the data address for DPOs/WBs).
        data_line: the subject data line (equals ``target_line`` for
            DPOs/WBs; for LPOs it is the line whose old value is logged).
            DPO dropping matches a new LPO's ``data_line`` against queued
            DPO ``target_line``s.
        payload: {word addr: value} snapshot to apply on drain/flush, or a
            zero-argument callable producing that dict. A callable is
            materialised at drain/flush time - used for log-record headers,
            whose durable contents (the confirmed-entry set) evolve while
            the write sits in the queue.
        rid: owning region id (packed int), if any.
        on_complete: invoked once, when the WPQ accepts the op - the ADR
            durability point ASAP builds on (Sec. 4.1).
        on_drain: invoked once, when the write reaches the persistent
            medium (or is dropped as superseded). The pre-ADR durability
            point the SW/HWUndo/HWRedo baselines wait on: their designs
            treat the NVM write itself as the persist's completion.
    """

    kind: str
    target_line: int
    data_line: int
    payload: object
    rid: Optional[int] = None
    on_complete: Optional[Callable[["PersistOp"], None]] = None
    on_drain: Optional[Callable[["PersistOp"], None]] = None
    op_id: int = field(default_factory=lambda: next(_op_ids))
    submitted_at: Optional[int] = None
    accepted_at: Optional[int] = None
    dropped: bool = False
    #: True when the op waited in the submission queue (or, legacy mode,
    #: parked) before acceptance - i.e. acceptance was NOT immediate
    backpressured: bool = False

    def materialized_payload(self) -> Dict[int, int]:
        """The concrete words this write carries, as of right now.

        Fast-path runs elide payloads entirely (``payload is None``): the
        run can never crash, so nothing ever reads the PM image and the
        timing/stats surface is payload-independent (docs/PERF.md).
        """
        if callable(self.payload):
            return self.payload()
        if self.payload is None:
            return {}
        return self.payload


class DrainArbiter:
    """A single write-bus token shared by every channel's WPQ.

    The legacy lockstep-drain model (``MemoryParams.overlapped_drains =
    False``): only the token holder may service a write, so channels
    drain one at a time instead of concurrently. Grants are strictly
    FIFO; releasing hands the token to the oldest waiting channel in the
    same cycle. The default overlapped model simply never builds one.
    """

    def __init__(self):
        self._held = False
        self._queue: Deque[Callable[[], None]] = deque()

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self, grant: Callable[[], None]) -> None:
        """Call ``grant`` as soon as the token is free (now, if it is)."""
        if self._held:
            self._queue.append(grant)
        else:
            self._held = True
            grant()

    def release(self) -> None:
        """Free the token or hand it straight to the oldest waiter."""
        if self._queue:
            self._queue.popleft()()
        else:
            self._held = False


class WritePendingQueue:
    """Finite FIFO of :class:`PersistOp` with a self-paced drain loop."""

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        capacity: int,
        write_service: Callable[[], int],
        pm_image: MemoryImage,
        on_drain: Optional[Callable[[PersistOp], None]] = None,
        drain_watermark: int = 0,
        lazy_drain_multiplier: int = 1,
        fifo_backpressure: bool = True,
        apply_payloads: bool = True,
        indexed: bool = False,
        drain_gate: Optional[DrainArbiter] = None,
    ):
        """
        Args:
            capacity: WPQ entries (128/channel in Table 2).
            write_service: callable returning the current cycles-per-drain
                (a callable so the Fig. 10 multiplier can change per run).
            pm_image: drained payloads are applied here.
            on_drain: traffic-accounting hook, called per drained entry.
            drain_watermark: below this occupancy the controller defers
                writes behind reads - entries drain lazily (every
                ``write_service * lazy_drain_multiplier`` cycles) and thus
                linger long enough for LPO/DPO dropping to find them.
            fifo_backpressure: admit backpressured ops in arrival order and
                expose them to ``drop_where``. False restores the pre-fix
                behaviour (parked ops may be overtaken by later submissions
                and are invisible to dropping) - kept only so the fuzzer
                and regression tests can demonstrate the commit-ordering
                hazard that behaviour caused.
            apply_payloads: False on the fast path - drained entries are
                not applied to the PM image (the run cannot crash, so the
                image is never read; timing and stats are unaffected).
            indexed: maintain per-line / per-rid victim indexes so the
                targeted drops (:meth:`drop_data_ops_for_line`,
                :meth:`drop_log_ops_for_rid`) avoid scanning the whole
                queue. Fast-path only: the reference machine keeps the
                plain predicate scan so its behaviour (and its cost, the
                benchmark's denominator) is untouched.
            drain_gate: shared :class:`DrainArbiter` serializing write
                service across channels (legacy lockstep model). The
                drain loop then splits each interval into the lazy slack
                followed by a bus-held ``write_service()`` window, so an
                uncontended gated channel drains at exactly the ungated
                cadence while contended channels queue for the token.
        """
        if capacity <= 0:
            raise SimulationError("WPQ capacity must be positive")
        self.name = name
        self._scheduler = scheduler
        self.capacity = capacity
        self._write_service = write_service
        self._pm_image = pm_image
        self._on_drain = on_drain
        self._drain_watermark = max(0, min(drain_watermark, capacity - 1))
        self._lazy_multiplier = max(1, lazy_drain_multiplier)
        self._fifo_backpressure = fifo_backpressure
        self._apply_payloads = apply_payloads
        self._indexed = indexed
        #: accepted DPO/WB entries by target line, in acceptance (FIFO)
        #: order - the dict-of-dicts mirrors ``_entries`` ordering exactly
        self._data_by_line: Optional[Dict[int, Dict[int, PersistOp]]] = (
            {} if indexed else None
        )
        #: accepted LPO/LOGHDR entries by owning rid, acceptance order
        self._log_by_rid: Optional[Dict[int, Dict[int, PersistOp]]] = (
            {} if indexed else None
        )
        #: queued entries someone is waiting to drain (a pending flush
        #: forces full-rate draining - fences push writes through)
        self._flush_pending = 0
        self._entries: "OrderedDict[int, PersistOp]" = OrderedDict()
        #: backpressured ops awaiting admission, in arrival order (the
        #: MC-side submission queue; not yet in the persistence domain)
        self._pending: Deque[PersistOp] = deque()
        #: legacy (non-FIFO) backpressure path only
        self._backpressure = WaitQueue(scheduler)
        self._draining = False
        self._drain_event = None
        self._drain_gate = drain_gate
        #: gated-drain phase: None | "slack" | "waiting" | "holding"
        self._gate_stage: Optional[str] = None
        #: optional :class:`SimObserver` notified on accept/drain/drop
        self.observer: Optional[SimObserver] = None
        # statistics
        self.accepted = 0
        self.drained = 0
        self.dropped = 0
        self.dropped_pending = 0
        self.peak_occupancy = 0

    # -- occupancy ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def pending_count(self) -> int:
        """Backpressured ops awaiting admission (outside the ADR domain)."""
        return len(self._pending)

    # -- submission --------------------------------------------------------

    def submit(self, op: PersistOp) -> None:
        """Submit ``op``; accepts now or after backpressure clears.

        ``op.on_complete`` fires at acceptance time (persist-op completion
        per the ADR persistence-domain rule). Admission is strictly in
        submission order: an op arriving while earlier ops are still
        backpressured queues behind them, never ahead.
        """
        if op.submitted_at is None:
            op.submitted_at = self._scheduler.now
            if self.observer is not None:
                self.observer.wpq_submitted(self, op)
        if not self._fifo_backpressure:
            # Legacy mode: closures park on a wait queue; a submission that
            # races a freed slot can overtake them (the ordering bug).
            if not self.full:
                self._accept(op)
            else:
                op.backpressured = True
                self._backpressure.park(lambda: self.submit(op))
            return
        if self.full or self._pending:
            op.backpressured = True
            self._pending.append(op)
        else:
            self._accept(op)

    def _admit_pending(self) -> None:
        """Move backpressured ops into freed entries, oldest first."""
        while self._pending and not self.full:
            self._accept(self._pending.popleft())

    def _index_add(self, op: PersistOp) -> None:
        kind = op.kind
        if kind == DPO or kind == WB:
            self._data_by_line.setdefault(op.target_line, {})[op.op_id] = op
        elif op.rid is not None:  # LPO / LOGHDR
            self._log_by_rid.setdefault(op.rid, {})[op.op_id] = op

    def _index_remove(self, op: PersistOp) -> None:
        kind = op.kind
        if kind == DPO or kind == WB:
            bucket = self._data_by_line.get(op.target_line)
            if bucket is not None:
                bucket.pop(op.op_id, None)
                if not bucket:
                    del self._data_by_line[op.target_line]
        elif op.rid is not None:
            bucket = self._log_by_rid.get(op.rid)
            if bucket is not None:
                bucket.pop(op.op_id, None)
                if not bucket:
                    del self._log_by_rid[op.rid]

    def _accept(self, op: PersistOp) -> None:
        op.accepted_at = self._scheduler.now
        self._entries[op.op_id] = op
        if self._indexed:
            self._index_add(op)
        if op.on_drain is not None:
            self._flush_pending += 1
            # A flush arriving mid-lazy-interval expedites the drain loop.
            # The pending drain keeps its deadline if it is already sooner
            # than one full service interval from now: rescheduling a
            # nearly-elapsed lazy interval at write_service() would *delay*
            # the drain, not expedite it.
            if self._draining and self._drain_event is not None:
                if self._drain_gate is None:
                    remaining = self._drain_event.time - self._scheduler.now
                    self._drain_event.cancel()
                    self._drain_event = self._scheduler.after(
                        min(remaining, self._write_service()), self._drain_one
                    )
                elif self._gate_stage == "slack":
                    # Gated: skip the rest of the lazy slack and contend
                    # for the bus now. "waiting"/"holding" are already as
                    # fast as the token allows.
                    self._drain_event.cancel()
                    self._drain_event = None
                    self._gate_request()
        self.accepted += 1
        occupancy = len(self._entries)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if self.observer is not None:
            self.observer.wpq_accepted(self, op)
        if op.on_complete is not None:
            cb, op.on_complete = op.on_complete, None
            cb(op)
        if not self._draining and self._entries:  # _ensure_draining, inline
            if self._drain_gate is None:
                self._draining = True
                self._drain_event = self._scheduler.after(
                    self._drain_interval(), self._drain_one
                )
            else:
                self._ensure_draining_gated()

    # -- drain loop --------------------------------------------------------

    def _drain_interval(self) -> int:
        """Full-rate service above the watermark or under a pending flush;
        lazy (read-prioritised) drain otherwise."""
        service = self._write_service()
        if self._flush_pending > 0 or len(self._entries) >= self._drain_watermark:
            return service
        return service * self._lazy_multiplier

    def _ensure_draining(self) -> None:
        if not self._draining and self._entries:
            if self._drain_gate is None:
                self._draining = True
                self._drain_event = self._scheduler.after(
                    self._drain_interval(), self._drain_one
                )
            else:
                self._ensure_draining_gated()

    # -- gated drain (legacy serialized write bus) -------------------------

    def _ensure_draining_gated(self) -> None:
        """Start one gated drain cycle: lazy slack first, then contend for
        the write-bus token, then hold it for one service window."""
        self._draining = True
        self._gate_stage = "slack"
        slack = self._drain_interval() - self._write_service()
        self._drain_event = self._scheduler.after(slack, self._gate_request)

    def _gate_request(self) -> None:
        self._drain_event = None
        self._gate_stage = "waiting"
        self._drain_gate.acquire(self._gate_granted)

    def _gate_granted(self) -> None:
        self._gate_stage = "holding"
        self._drain_event = self._scheduler.after(
            self._write_service(), self._gate_drain
        )

    def _gate_drain(self) -> None:
        self._gate_stage = None
        self._drain_one()
        self._drain_gate.release()

    def _drain_one(self) -> None:
        self._draining = False
        self._drain_event = None
        if not self._entries:
            return
        _, op = self._entries.popitem(last=False)
        if self._indexed:
            self._index_remove(op)
        if self._apply_payloads:
            self._pm_image.apply(op.materialized_payload())
        self.drained += 1
        if self.observer is not None:
            self.observer.wpq_drained(self, op)
        if self._on_drain is not None:
            self._on_drain(op)
        if op.on_drain is not None:
            self._flush_pending -= 1
            cb, op.on_drain = op.on_drain, None
            cb(op)
        if self._pending:
            self._admit_pending()
        if not self._fifo_backpressure:
            # Only the legacy backpressure mode parks waiters here.
            self._backpressure.wake_one()
        if not self._draining and self._entries:  # _ensure_draining, inline
            if self._drain_gate is None:
                self._draining = True
                self._drain_event = self._scheduler.after(
                    self._drain_interval(), self._drain_one
                )
            else:
                self._ensure_draining_gated()

    # -- dropping ----------------------------------------------------------

    def drop_where(self, predicate: Callable[[PersistOp], bool]) -> int:
        """Remove matching ops before they reach PM - queued *and*
        backpressured.

        A backpressured victim never entered the persistence domain, so its
        ``on_complete`` fires here: dropping means the op's bytes are
        superseded or covered elsewhere (a later LPO logged them, or the
        region committed), and whoever is waiting on acceptance must treat
        the obligation as discharged, exactly as if the op had been
        accepted and then dropped. Returns the total number dropped; freed
        entries admit backpressured submitters in arrival order.

        Ledger: ``self.dropped`` counts only *accepted* victims (so
        ``drained + dropped <= accepted`` always holds); backpressured
        victims count in ``self.dropped_pending`` alone, since they never
        entered the queue's books.
        """
        victims = [op for op in self._entries.values() if predicate(op)]
        return self._finish_drops(victims, predicate)

    def drop_data_ops_for_line(self, line: int, exclude_op_id: Optional[int] = None) -> int:
        """DPO dropping (Sec. 5.1): remove queued DPO/WB ops targeting
        ``line``, except ``exclude_op_id``. Semantically identical to the
        equivalent :meth:`drop_where` call; an indexed queue finds the
        victims in O(answer) instead of scanning every entry."""
        if self._data_by_line is not None:
            bucket = self._data_by_line.get(line)
            if bucket is None:
                victims = []
            else:
                victims = [
                    op for op in bucket.values() if op.op_id != exclude_op_id
                ]
        else:
            victims = [
                op
                for op in self._entries.values()
                if op.kind in (DPO, WB)
                and op.target_line == line
                and op.op_id != exclude_op_id
            ]
        if not victims and not self._pending:
            return 0
        return self._finish_drops(
            victims,
            lambda q: q.kind in (DPO, WB)
            and q.target_line == line
            and q.op_id != exclude_op_id,
        )

    def drop_log_ops_for_rid(self, rid: int) -> int:
        """LPO dropping (Sec. 5.1): remove queued LPO/LOGHDR ops of a
        committed region. Indexed counterpart of the predicate scan."""
        if self._log_by_rid is not None:
            bucket = self._log_by_rid.get(rid)
            victims = list(bucket.values()) if bucket else []
        else:
            victims = [
                op
                for op in self._entries.values()
                if op.rid == rid and op.kind in (LPO, LOGHDR)
            ]
        if not victims and not self._pending:
            return 0
        return self._finish_drops(
            victims, lambda q: q.rid == rid and q.kind in (LPO, LOGHDR)
        )

    def _finish_drops(
        self, victims, predicate: Callable[[PersistOp], bool]
    ) -> int:
        """Shared tail of every drop flavour: process accepted victims (in
        FIFO order), then sweep the backpressured submission queue with the
        full predicate, then refill freed entries."""
        for op in victims:
            del self._entries[op.op_id]
            if self._indexed:
                self._index_remove(op)
            op.dropped = True
            self.dropped += 1
            if self.observer is not None:
                self.observer.wpq_dropped(self, op)
            if op.on_drain is not None:
                # A dropped write is satisfied, not lost: its data is
                # superseded or no longer needed; waiters must not hang.
                self._flush_pending -= 1
                cb, op.on_drain = op.on_drain, None
                cb(op)
        dropped_pending = 0
        if self._pending:
            survivors: Deque[PersistOp] = deque()
            for op in self._pending:
                if not predicate(op):
                    survivors.append(op)
                    continue
                op.dropped = True
                self.dropped_pending += 1
                dropped_pending += 1
                if self.observer is not None:
                    self.observer.wpq_dropped(self, op)
                if op.on_complete is not None:
                    cb, op.on_complete = op.on_complete, None
                    cb(op)
                if op.on_drain is not None:
                    cb, op.on_drain = op.on_drain, None
                    cb(op)
            self._pending = survivors
        if victims:
            if self._pending:
                self._admit_pending()
            if not self._fifo_backpressure:
                for _ in victims:
                    self._backpressure.wake_one()
        return len(victims) + dropped_pending

    def queued_ops(self):
        """Iterate queued ops in FIFO order (oldest first)."""
        return iter(self._entries.values())

    def pending_ops(self):
        """Iterate backpressured (not yet accepted) ops, oldest first."""
        return iter(self._pending)

    # -- crash -------------------------------------------------------------

    def flush_to_pm(self) -> int:
        """Persistence-domain flush: apply every queued entry in order.

        Models ADR draining the WPQ on power failure. Returns the number of
        entries flushed. The queue is left empty; no callbacks fire (the
        machine is dead). Backpressured ops are *not* flushed: they never
        entered the persistence domain, so their writes are lost with the
        caches - which is safe precisely because their ``on_complete`` has
        not fired and no one was told they persisted.
        """
        count = 0
        while self._entries:
            _, op = self._entries.popitem(last=False)
            self._pm_image.apply(op.materialized_payload())
            count += 1
        return count

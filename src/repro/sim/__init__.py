"""Machine assembly and trace-driven execution.

A :class:`~repro.sim.machine.Machine` wires the scheduler, images, heaps,
cache hierarchy, memory controllers, and one persistence scheme together.
Workload threads are Python generators yielding :mod:`~repro.sim.ops`
objects; a :class:`~repro.sim.executor.ThreadExecutor` per thread drives
its generator through the scheme, which charges latencies and enforces the
scheme's persistence semantics.
"""

from repro.sim.ops import (
    Begin,
    End,
    Read,
    Write,
    Compute,
    Lock,
    Unlock,
    Fence,
)
from repro.sim.machine import Machine
from repro.sim.stats import RunResult

__all__ = [
    "Begin",
    "End",
    "Read",
    "Write",
    "Compute",
    "Lock",
    "Unlock",
    "Fence",
    "Machine",
    "RunResult",
]

"""Trace-driven execution of one workload thread.

The executor advances its workload generator one op at a time, dispatching
each op to the persistence scheme (memory/region ops), the lock (isolation
ops), or the scheduler (compute). A fixed ``base_op_cost`` is charged per
op, playing the role of the instructions between memory references.

Region latency accounting (Fig. 8's metric) spans from the cycle a
top-level ``Begin`` is issued to the cycle its ``End`` *retires* - for
synchronous-commit schemes that includes the end-of-region persist wait;
for ASAP it does not, because ``End`` retires immediately.
"""

from __future__ import annotations

from typing import Iterator, Optional, TYPE_CHECKING

from repro.common.address import line_base
from repro.common.errors import SimulationError
from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES
from repro.core.rid import pack_rid
from repro.sim import ops as op_types

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class ThreadExecutor:
    """Drives one generator of ops through the machine."""

    def __init__(self, machine: "Machine", thread_id: int, core_id: int, gen_fn):
        self.machine = machine
        self.thread_id = thread_id
        self.core_id = core_id
        self._gen_fn = gen_fn
        self._gen: Optional[Iterator] = None
        self.scheme_thread = machine.scheme.register_thread(thread_id, core_id)
        self.finished = False
        # region accounting
        self._region_depth = 0
        self._region_start: Optional[int] = None
        self._local_region = 0
        self.regions_completed = 0
        self.region_cycles_total = 0
        self.ops_executed = 0
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None

    # -- identity ------------------------------------------------------------

    @property
    def current_rid(self) -> Optional[int]:
        """Packed id of the region currently executing (oracle convention:
        the n-th top-level region of thread t is ``pack_rid(t, n)``,
        matching the ASAP engine's CurRID assignment)."""
        if self._region_depth <= 0:
            return None
        return pack_rid(self.thread_id, self._local_region)

    @property
    def next_rid(self) -> int:
        """Packed id the next top-level ``Begin`` on this thread will open.

        Service workloads register a request's arrival cycle under this id
        *before* yielding the region, so the durable-commit notification
        (``scheme.on_commit``) can be matched back to the request.
        """
        return pack_rid(self.thread_id, self._local_region + 1)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self._gen = self._gen_fn(self)
        self.start_cycle = self.machine.scheduler.now
        self.machine.scheduler.after(0, lambda: self._step(None))

    def _step(self, result) -> None:
        if self.machine.crashed or self.finished:
            return
        try:
            op = self._gen.send(result)
        except StopIteration:
            self.finished = True
            self.finish_cycle = self.machine.scheduler.now
            return
        self.ops_executed += 1
        self._dispatch(op)

    def _charge_and_step(self, result=None) -> None:
        base = self.machine.config.core.base_op_cost
        self.machine.scheduler.after(base, lambda: self._step(result))

    # -- dispatch ---------------------------------------------------------------

    def _dispatch(self, op) -> None:
        scheme = self.machine.scheme
        if isinstance(op, op_types.Compute):
            self.machine.scheduler.after(
                max(0, op.cycles), lambda: self._step(None)
            )
        elif isinstance(op, op_types.Write):
            self._do_write(op.addr, list(op.values))
        elif isinstance(op, op_types.Read):
            self._do_read(op.addr, op.nwords)
        elif isinstance(op, op_types.Begin):
            self._do_begin()
        elif isinstance(op, op_types.End):
            self._do_end()
        elif isinstance(op, op_types.Lock):
            op.lock.acquire(self.thread_id, lambda: self._charge_and_step())
        elif isinstance(op, op_types.Unlock):
            op.lock.release(self.thread_id, lambda: self._charge_and_step())
        elif isinstance(op, op_types.Fence):
            scheme.fence(self.scheme_thread, lambda: self._charge_and_step())
        elif isinstance(op, op_types.Migrate):
            self._do_migrate(op.core_id)
        else:
            raise SimulationError(f"unknown op {op!r}")

    def _do_migrate(self, new_core: int) -> None:
        if not 0 <= new_core < self.machine.config.num_cores:
            raise SimulationError(f"migrate to nonexistent core {new_core}")

        def switched() -> None:
            self.core_id = new_core
            self._charge_and_step()

        self.machine.scheme.migrate(self.scheme_thread, new_core, switched)

    # -- memory ops (split per cache line) -----------------------------------------

    def _do_write(self, addr: int, values) -> None:
        rid = self.current_rid
        if (
            rid is not None
            and not self.machine.fast_path
            and self.machine.page_table.is_persistent(addr)
        ):
            self.machine.oracle.record_write(rid, addr, values)
        chunks = _split_by_line(addr, values)

        def issue(index: int) -> None:
            if index >= len(chunks):
                self._charge_and_step()
                return
            chunk_addr, chunk_values = chunks[index]
            self.machine.scheme.write(
                self.scheme_thread,
                chunk_addr,
                chunk_values,
                lambda: issue(index + 1),
            )

        issue(0)

    def _do_read(self, addr: int, nwords: int) -> None:
        chunks = _split_read_by_line(addr, nwords)
        collected: list = []

        def issue(index: int) -> None:
            if index >= len(chunks):
                self._charge_and_step(collected)
                return
            chunk_addr, chunk_words = chunks[index]

            def got(values) -> None:
                collected.extend(values)
                issue(index + 1)

            self.machine.scheme.read(self.scheme_thread, chunk_addr, chunk_words, got)

        issue(0)

    # -- region ops -------------------------------------------------------------------

    def _do_begin(self) -> None:
        self._region_depth += 1
        if self._region_depth == 1:
            self._local_region += 1
            self._region_start = self.machine.scheduler.now
        self.machine.scheme.begin(self.scheme_thread, lambda: self._charge_and_step())

    def _do_end(self) -> None:
        if self._region_depth <= 0:
            raise SimulationError(f"thread {self.thread_id}: End without Begin")
        self._region_depth -= 1
        closing_top_level = self._region_depth == 0

        def after_end() -> None:
            if closing_top_level:
                self.regions_completed += 1
                self.region_cycles_total += (
                    self.machine.scheduler.now - self._region_start
                )
                self._region_start = None
            self._charge_and_step()

        self.machine.scheme.end(self.scheme_thread, after_end)


def _split_by_line(addr: int, values):
    """Split a word run into (addr, values) chunks within one line each."""
    chunks = []
    base = addr & ~(WORD_BYTES - 1)
    i = 0
    while i < len(values):
        start = base + i * WORD_BYTES
        line_end = line_base(start) + CACHE_LINE_BYTES
        words_here = min(len(values) - i, (line_end - start) // WORD_BYTES)
        chunks.append((start, values[i : i + words_here]))
        i += words_here
    return chunks


def _split_read_by_line(addr: int, nwords: int):
    chunks = []
    base = addr & ~(WORD_BYTES - 1)
    i = 0
    while i < nwords:
        start = base + i * WORD_BYTES
        line_end = line_base(start) + CACHE_LINE_BYTES
        words_here = min(nwords - i, (line_end - start) // WORD_BYTES)
        chunks.append((start, words_here))
        i += words_here
    return chunks

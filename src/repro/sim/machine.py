"""Machine assembly: one simulated system under one persistence scheme."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.errors import SimulationError
from repro.common.params import SystemConfig
from repro.engine import FastScheduler, Scheduler
from repro.mem.controller import MemorySystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.image import FastMemoryImage, MemoryImage
from repro.persist.base import PersistenceScheme
from repro.runtime.heap import PageTable, PersistentHeap, VolatileHeap
from repro.runtime.locks import SimLock
from repro.sim.executor import ThreadExecutor
from repro.sim.oracle import CommitOracle
from repro.sim.stats import RunResult


class Machine:
    """A full simulated system.

    Construction order matters: images -> memory system -> hierarchy ->
    scheme attach. Workload threads are added with :meth:`spawn` and the
    whole run is driven by :meth:`run`.
    """

    def __init__(
        self,
        config: SystemConfig,
        scheme: PersistenceScheme,
        fast_path: bool = False,
    ):
        """
        Args:
            fast_path: build the payload-free fast simulation core - no
                observers, no crash window, no commit oracle. Produces
                RunResult stats identical to the reference machine (the
                differential-identity gate enforces this) at a fraction of
                the cost; crash injection, recovery, ``--sanitize`` and
                ``--explain`` all require the reference machine
                (docs/PERF.md).
        """
        self.config = config
        self.fast_path = fast_path
        self.scheduler = FastScheduler() if fast_path else Scheduler()
        self.volatile = (
            FastMemoryImage("volatile") if fast_path else MemoryImage("volatile")
        )
        self.pm_image = MemoryImage("pm")
        self.page_table = PageTable()
        self.heap = PersistentHeap(config.address_space, self.page_table)
        self.dram_heap = VolatileHeap(config.address_space)
        self.memory = MemorySystem(
            config, self.scheduler, self.pm_image, fast=fast_path
        )
        self.hierarchy = CacheHierarchy(
            config,
            self.scheduler,
            self.memory,
            self.volatile,
            self.page_table.is_persistent,
            fast=fast_path,
        )
        self.scheme = scheme
        self.oracle = CommitOracle()
        scheme.attach(self)
        if not fast_path:
            scheme.on_commit.append(self.oracle.on_commit)
        self.executors: List[ThreadExecutor] = []
        self.locks: List[SimLock] = []
        self._next_thread_id = 0
        self.crashed = False

    # -- workload wiring -----------------------------------------------------

    def new_lock(self, name: Optional[str] = None) -> SimLock:
        lock = SimLock(self.scheduler, name)
        self.locks.append(lock)
        return lock

    def spawn(self, gen_fn: Callable, core_id: Optional[int] = None) -> ThreadExecutor:
        """Add a workload thread.

        Args:
            gen_fn: called with the executor's :class:`ThreadExecutor` env;
                must return a generator yielding ops.
            core_id: defaults to round-robin over cores.
        """
        thread_id = self._next_thread_id
        self._next_thread_id += 1
        if core_id is None:
            core_id = thread_id % self.config.num_cores
        executor = ThreadExecutor(self, thread_id, core_id, gen_fn)
        self.executors.append(executor)
        return executor

    def bootstrap_write(self, addr: int, values) -> None:
        """Zero-cost initialisation write, as if persisted before the run.

        Applied to the volatile image, the PM image, and the commit oracle's
        committed image - modelling a data structure that was built and made
        durable before the measured (and crash-injected) phase begins.
        """
        self.volatile.write_range(addr, values)
        if not self.fast_path:
            # Fast runs never crash or verify against the oracle, so the PM
            # and committed images are never read.
            self.pm_image.write_range(addr, values)
            self.oracle.committed.write_range(addr, values)

    def adopt_image(self, image) -> None:
        """Resume from a recovered PM image (the restart-after-crash flow).

        Overwrites the volatile, PM, and oracle-committed views with the
        image's contents - call after installing the workload (so its
        address layout matches; heap allocation is deterministic) and
        before :meth:`run`. The continuing run then operates on exactly
        the durable state the crashed machine left behind.
        """
        for word, value in image.items():
            self.volatile.write_word(word, value)
            self.pm_image.write_word(word, value)
            self.oracle.committed.write_word(word, value)

    # -- execution ------------------------------------------------------------

    def run(
        self,
        until: Optional[int] = None,
        max_events: int = 200_000_000,
    ) -> RunResult:
        """Start every thread and drain the event queue.

        Returns the :class:`RunResult` with cycles, region latencies, and
        PM traffic. Raises on deadlock (threads unfinished, no events).
        """
        for executor in self.executors:
            executor.start()
        self.scheduler.run(until=until, max_events=max_events)
        if until is None and not self.crashed:
            unfinished = [e.thread_id for e in self.executors if not e.finished]
            if unfinished:
                raise SimulationError(
                    f"deadlock: threads {unfinished} never finished and the "
                    "event queue is empty"
                )
        return self.result()

    def result(self) -> RunResult:
        return RunResult.collect(self)

"""The commit oracle: ground truth for crash-recovery verification.

The oracle shadows what *should* be durable: it records every region's
write-set as the region executes, and applies a region's writes to the
``committed`` image at the instant the scheme reports that the region
committed. After a crash, a correct recovery must produce a PM image whose
data words match ``committed`` exactly:

* regions that committed are fully present (durability),
* regions that did not commit leave no trace (atomicity),
* and because schemes only commit in dependence order, the committed image
  is always a dependence-consistent prefix (ordering).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.mem.image import MemoryImage


class CommitOracle:
    """Tracks per-region write-sets and the durable ("committed") image."""

    def __init__(self):
        self.committed = MemoryImage("oracle-committed")
        #: rid -> {word addr: last value written by the region}
        self._region_writes: Dict[int, Dict[int, int]] = {}
        self.committed_rids: Set[int] = set()
        #: every PM data word any region ever wrote (the comparison domain)
        self.tracked_words: Set[int] = set()

    def record_write(self, rid: int, addr: int, values) -> None:
        """Called by the executor for every in-region PM store."""
        writes = self._region_writes.setdefault(rid, {})
        base = addr & ~7
        for i, value in enumerate(values):
            word = base + 8 * i
            writes[word] = value
            self.tracked_words.add(word)

    def on_commit(self, rid: int) -> None:
        """The scheme reports ``rid`` durable: fold its writes in."""
        for word, value in self._region_writes.get(rid, {}).items():
            self.committed.write_word(word, value)
        self.committed_rids.add(rid)

    def region_write_set(self, rid: int) -> Dict[int, int]:
        return dict(self._region_writes.get(rid, {}))

    def uncommitted_rids(self):
        return [r for r in self._region_writes if r not in self.committed_rids]

    def mismatches(self, image: MemoryImage, limit: int = 10):
        """Words where ``image`` disagrees with the committed image."""
        diffs = []
        for word in sorted(self.tracked_words):
            expect = self.committed.read_word(word)
            got = image.read_word(word)
            if expect != got:
                diffs.append((word, expect, got))
                if len(diffs) >= limit:
                    break
        return diffs

"""Optional event tracing: a timeline of what the machine did.

Attach a :class:`Tracer` to a machine before running and it records region
lifecycles (begin / end-retired / committed) and persist-op completions,
with cycle stamps. Used by the timeline tests to assert *when* things
happen (e.g. End retires before commit under ASAP, after it under
HWUndo), by the trace-dump CLI, and handy when debugging a scheme.

The tracer hooks the executor layer (region events) and the scheme's
commit notifications; persist-op events come from a WPQ accept/drain
shim. Overhead is one list append per event; leave it off for benchmarks.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.core.rid import unpack_rid

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

#: event kinds
BEGIN = "begin"
END = "end"
COMMIT = "commit"
PERSIST_ACCEPT = "persist_accept"
PERSIST_DRAIN = "persist_drain"
PERSIST_DROP = "persist_drop"


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    kind: str
    thread_id: Optional[int] = None
    rid: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        rid = f" {unpack_rid(self.rid)}" if self.rid is not None else ""
        return f"@{self.cycle:>8} {self.kind:<14}{rid} {self.detail}".rstrip()


class Tracer:
    """Records a machine's timeline. Attach before :meth:`Machine.run`."""

    def __init__(self, machine: "Machine", trace_persists: bool = True):
        self.machine = machine
        self.events: List[TraceEvent] = []
        self._attach_regions()
        if trace_persists:
            self._attach_persists()

    # -- hooks ---------------------------------------------------------------

    def _attach_regions(self) -> None:
        """Wrap the scheme's begin/end so events stamp at *retirement*.

        ``END`` at the cycle the instruction stream proceeds past the
        region - which is what makes synchronous vs asynchronous commit
        visible as a commit-minus-end lag of zero vs positive.
        """
        from repro.core.rid import pack_rid

        machine = self.machine
        scheme = machine.scheme
        machine.scheme.on_commit.append(
            lambda rid: self._record(COMMIT, rid=rid)
        )
        original_begin = scheme.begin
        original_end = scheme.end
        tracer = self

        def traced_begin(thread, done):
            top_level = thread.nest_depth == 0

            def retired():
                if top_level:
                    tracer._record(
                        BEGIN,
                        thread_id=thread.thread_id,
                        rid=pack_rid(thread.thread_id, thread.regions_begun),
                    )
                done()

            original_begin(thread, retired)

        def traced_end(thread, done):
            top_level = thread.nest_depth == 1
            rid = pack_rid(thread.thread_id, thread.regions_begun)

            def retired():
                if top_level:
                    tracer._record(END, thread_id=thread.thread_id, rid=rid)
                done()

            original_end(thread, retired)

        scheme.begin = traced_begin
        scheme.end = traced_end

    def _attach_persists(self) -> None:
        for channel in self.machine.memory.channels:
            wpq = channel.wpq
            original_accept = wpq._accept
            original_drain_hook = wpq._on_drain
            tracer = self

            def traced_accept(op, _orig=original_accept, ch=channel.index):
                tracer._record(
                    PERSIST_ACCEPT, rid=op.rid, detail=f"{op.kind} ch{ch}"
                )
                _orig(op)

            def traced_drain(op, _orig=original_drain_hook, ch=channel.index):
                tracer._record(
                    PERSIST_DRAIN, rid=op.rid, detail=f"{op.kind} ch{ch}"
                )
                if _orig is not None:
                    _orig(op)

            wpq._accept = traced_accept
            wpq._on_drain = traced_drain

    def _record(self, kind: str, thread_id=None, rid=None, detail="") -> None:
        self.events.append(
            TraceEvent(
                cycle=self.machine.scheduler.now,
                kind=kind,
                thread_id=thread_id,
                rid=rid,
                detail=detail,
            )
        )

    # -- queries -----------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def region_timeline(self, rid: int) -> dict:
        """{end: cycle, commit: cycle} for one region (None if absent)."""
        out = {"end": None, "commit": None}
        for e in self.events:
            if e.rid == rid and e.kind in (END, COMMIT):
                out[e.kind] = e.cycle
        return out

    def commit_lags(self) -> List[int]:
        """Commit-minus-end-retire per region: the asynchrony the paper
        buys (zero everywhere would mean synchronous commit)."""
        ends = {e.rid: e.cycle for e in self.of_kind(END) if e.rid is not None}
        return [
            e.cycle - ends[e.rid]
            for e in self.of_kind(COMMIT)
            if e.rid in ends
        ]

    # -- export -----------------------------------------------------------------------

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["cycle", "kind", "thread", "rid", "detail"])
        for e in self.events:
            writer.writerow(
                [e.cycle, e.kind, e.thread_id if e.thread_id is not None else "",
                 e.rid if e.rid is not None else "", e.detail]
            )
        return buf.getvalue()

    def dump(self, limit: int = 50) -> str:
        return "\n".join(str(e) for e in self.events[:limit])

"""The op vocabulary yielded by workload generators.

A workload thread is a generator; each ``yield`` hands one op to the
executor and receives the op's result (read values, or None) back via
``send``. This keeps workloads ordinary Python code whose control flow can
depend on simulated memory contents.

Example::

    def worker(env):
        a = env.heap.alloc(64)
        yield Begin()
        yield Write(a, [1, 2])
        (x,) = yield Read(a, 1)
        yield Write(a + 8, [x + 1])
        yield End()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.runtime.locks import SimLock


@dataclass(frozen=True)
class Begin:
    """``asap_begin()``: open an atomic region (nesting flattens)."""


@dataclass(frozen=True)
class End:
    """``asap_end()``: close the current atomic region."""


@dataclass(frozen=True)
class Read:
    """Load ``nwords`` 8-byte words starting at ``addr``.

    Yields back a list of word values.
    """

    addr: int
    nwords: int = 1


@dataclass(frozen=True)
class Write:
    """Store consecutive words starting at ``addr``.

    ``values`` may span multiple cache lines; the executor issues one
    scheme-level store per touched line, which is the granularity at which
    logging and persistence operate.
    """

    addr: int
    values: Sequence[int]


@dataclass(frozen=True)
class Compute:
    """Pure computation costing ``cycles`` (non-memory instructions)."""

    cycles: int


@dataclass(frozen=True)
class Lock:
    """Acquire a :class:`~repro.runtime.locks.SimLock` (isolation)."""

    lock: SimLock


@dataclass(frozen=True)
class Unlock:
    """Release a :class:`~repro.runtime.locks.SimLock`."""

    lock: SimLock


@dataclass(frozen=True)
class Fence:
    """``asap_fence()``: block until the thread's last region committed.

    For synchronous-commit schemes this is a no-op (regions are already
    durable when ``End`` retires); for ASAP it provides the Sec. 5.2
    synchronous-persistence escape hatch.
    """


@dataclass(frozen=True)
class Migrate:
    """A context switch (Sec. 5.7): resume this thread on another core.

    Thread state registers are saved/restored with the process state; for
    ASAP the suspended thread's CL List entries are drained first so the
    thread can safely continue on a core whose CL List never saw them.
    Must be issued between atomic regions.
    """

    core_id: int

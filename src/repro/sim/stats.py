"""Run-level statistics and derived metrics.

All the paper's evaluation metrics come from here:

* throughput (Figs. 1, 7, 10): committed regions per million cycles,
* cycles per atomic region (Fig. 8): mean Begin-to-End-retire latency,
* PM write traffic (Fig. 9): 64 B lines actually written to PM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    scheme: str
    #: cycle at which the last workload thread finished - the denominator
    #: for throughput. Background activity (lazy WPQ drains) continues past
    #: this point and is captured by ``drain_cycles``.
    cycles: int
    #: cycle at which the event queue fully drained
    drain_cycles: int
    regions_completed: int
    region_cycles_total: int
    ops_executed: int
    pm_writes: int
    pm_writes_by_kind: Dict[str, int]
    pm_reads: int
    dram_writes: int
    llc_misses: int
    cache_accesses: int
    #: secondary misses merged into an in-flight MSHR fetch (0 under the
    #: legacy ``mshrs_per_cache == 0`` hierarchy, which has no fetches to
    #: merge into)
    mshr_merges: int
    wpq_peak_occupancy: int
    #: structural-stall counters (which capacity limits were hit and how
    #: often); keys depend on the scheme - ASAP reports its CL List,
    #: Dependence List, and LH-WPQ pressure here
    stall_breakdown: Dict[str, int] = field(default_factory=dict)
    scheme_stats: Optional[object] = None
    #: service-workload tail-latency data (empty for batch workloads):
    #: fixed-bucket histogram of arrival-to-durable-commit latencies,
    #: keyed by bucket index (see ``repro.workloads.service``)
    latency_histogram: Dict[int, int] = field(default_factory=dict)
    requests_completed: int = 0
    p50_cycles: int = 0
    p90_cycles: int = 0
    p99_cycles: int = 0
    p999_cycles: int = 0
    #: (offered load, achieved load) in requests per kilocycle; the knee
    #: of the throughput-vs-load curve is where achieved < offered
    offered_vs_achieved: Tuple[float, float] = (0.0, 0.0)

    @staticmethod
    def collect(machine: "Machine") -> "RunResult":
        regions = sum(e.regions_completed for e in machine.executors)
        region_cycles = sum(e.region_cycles_total for e in machine.executors)
        ops = sum(e.ops_executed for e in machine.executors)
        finish_cycles = [
            e.finish_cycle for e in machine.executors if e.finish_cycle is not None
        ]
        stalls = {
            "locked_set": machine.hierarchy.locked_set_stalls,
            "mshr": machine.hierarchy.mshr_stalls,
        }
        engine = getattr(machine.scheme, "engine", None)
        if engine is not None:
            stalls.update(
                cl_entry=sum(cl.entry_stalls for cl in engine.cl_lists),
                cl_slot=sum(cl.slot_stalls for cl in engine.cl_lists),
                dep_entry=sum(dl.entry_stalls for dl in engine.dep_lists),
                dep_slot=sum(dl.dep_stalls for dl in engine.dep_lists),
                lh_wpq=sum(lh.stalls for lh in engine.lh_wpqs),
            )
        result = RunResult(
            scheme=machine.scheme.name,
            cycles=max(finish_cycles) if finish_cycles else machine.scheduler.now,
            drain_cycles=machine.scheduler.now,
            regions_completed=regions,
            region_cycles_total=region_cycles,
            ops_executed=ops,
            pm_writes=machine.memory.total_pm_writes(),
            pm_writes_by_kind=machine.memory.pm_writes_by_kind(),
            pm_reads=sum(ch.stats.pm_reads for ch in machine.memory.channels),
            dram_writes=sum(ch.stats.dram_writes for ch in machine.memory.channels),
            llc_misses=machine.hierarchy.llc_misses,
            cache_accesses=machine.hierarchy.accesses,
            mshr_merges=machine.hierarchy.mshr_merges,
            wpq_peak_occupancy=max(
                (ch.wpq.peak_occupancy for ch in machine.memory.channels), default=0
            ),
            stall_breakdown=stalls,
            scheme_stats=getattr(machine.scheme, "stats", None),
        )
        recorder = getattr(machine, "service_recorder", None)
        if recorder is not None:
            recorder.fill(result)
        return result

    # -- derived metrics ------------------------------------------------------

    @property
    def throughput(self) -> float:
        """Committed regions per million cycles (the Fig. 7/10 metric)."""
        if self.cycles <= 0:
            return 0.0
        return self.regions_completed / self.cycles * 1e6

    @property
    def cycles_per_region(self) -> float:
        """Mean region latency as seen by the instruction stream (Fig. 8)."""
        if self.regions_completed <= 0:
            return 0.0
        return self.region_cycles_total / self.regions_completed

    def speedup_over(self, baseline: "RunResult") -> float:
        """Throughput ratio vs another run of the same workload."""
        if baseline.throughput <= 0:
            return float("inf")
        return self.throughput / baseline.throughput

    def traffic_ratio_over(self, baseline: "RunResult") -> float:
        """PM write-traffic ratio vs another run (Fig. 9's metric)."""
        if baseline.pm_writes <= 0:
            return float("inf") if self.pm_writes else 1.0
        return self.pm_writes / baseline.pm_writes

"""Interleaving-aware differential crash fuzzing (``asap-repro fuzz``).

The crashtest sweep replays *one* deterministic schedule and varies only
the crash point. That is blind to the bug class this module exists for:
commit-ordering violations that need a particular thread interleaving x
flush-timing corner to manifest (the cross-thread RMW hazard the property
suite falsified on small WPQs hid exactly there). The fuzzer varies all
three axes at once:

* **schedules** - seeded random multi-thread region programs over a small
  shared array, with per-op ``Compute`` jitter that perturbs the
  interleaving without changing the program's semantics;
* **crash points** - a sweep of crash cycles per schedule, each recovered
  and differentially checked against the commit oracle's durable image;
* **stress configs** - tiny WPQs (1..16 entries) and both log flavours
  (``asap`` undo and ``asap_redo``), where backpressure and drop/coalesce
  decisions are forced to interact.

Every run is checked two ways (the "differential" part): the no-crash run
must leave PM exactly equal to the oracle's folded committed image, and
every crash point must recover to the oracle's durable image and satisfy
the workload validators.

Failures are automatically **shrunk** - greedy delta debugging over
threads, regions, ops, values, and jitter - to a minimal case printed as
an ``@example(threads=...)`` line pasteable straight onto the property
tests, and serialisable as JSON into the regression corpus under
``tests/property/corpus/`` which the property suite replays forever after
(see docs/FUZZING.md).

Determinism: the same ``--seed`` and ``--budget`` always generate and
execute the same runs, so a failure report is a repro recipe.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.sim.ops import Begin, Compute, End, Lock, Read, Unlock, Write

#: shared-array size (lines); matches the property-test strategies so a
#: shrunk case pastes onto them unchanged
NUM_LINES = 12

#: ops are (line index, read-first flag, value) - a read-first op is a
#: cross-thread-visible RMW (read the owner's value, XOR, write back)
FuzzOp = Tuple[int, bool, int]

SCHEMES = ("asap", "asap_redo")


@dataclass
class FuzzCase:
    """One generated schedule plus the machine configuration it runs on."""

    scheme: str
    threads: List[List[List[FuzzOp]]]
    wpq_entries: int = 4
    #: per-thread cycle delays consumed one per executed op (Compute
    #: jitter); exhausted lists mean no further delays
    jitter: List[List[int]] = field(default_factory=list)
    #: False replays the pre-fix WPQ backpressure model (regression/
    #: shrinker self-tests only)
    fifo_backpressure: bool = True
    #: False replays the pre-fix same-line log-persist model, in which a
    #: dependence chain's log entries for one line could become durable
    #: out of order (regression demos only; docs/RECOVERY.md)
    ordered_line_log_persists: bool = True
    #: crash fractions (of total cycles) this case is known to be
    #: sensitive to; corpus replay sweeps these in addition to the
    #: generic evenly-spaced crash points
    crash_fracs: List[float] = field(default_factory=list)
    #: pin the hierarchy's MSHR count (None = the config default). 1
    #: replays the blocking one-outstanding-fetch hierarchy; corpus
    #: entries exercising crashes with misses in flight pin small values
    #: so exhaustion stalls and merges stay live under replay
    mshrs_per_cache: Optional[int] = None
    #: run a registered workload instead of the synthetic RMW schedule:
    #: the workload name (e.g. ``"SVC"``) plus its params as a plain dict.
    #: Workload cases replay verbatim (they are never mutated or shrunk -
    #: the program is the workload's own, not a schedule the fuzzer owns)
    workload: Optional[str] = None
    workload_params: Optional[dict] = None

    # -- serialisation (the corpus format) ---------------------------------

    def to_json(self) -> dict:
        out = {
            "scheme": self.scheme,
            "threads": self.threads,
            "wpq_entries": self.wpq_entries,
            "jitter": self.jitter,
            "fifo_backpressure": self.fifo_backpressure,
            "ordered_line_log_persists": self.ordered_line_log_persists,
            "crash_fracs": self.crash_fracs,
            "mshrs_per_cache": self.mshrs_per_cache,
        }
        if self.workload:
            out["workload"] = self.workload
            out["workload_params"] = dict(self.workload_params or {})
        return out

    @staticmethod
    def from_json(data: dict) -> "FuzzCase":
        return FuzzCase(
            scheme=data["scheme"],
            threads=[
                [[tuple(op) for op in region] for region in thread]
                for thread in data["threads"]
            ],
            wpq_entries=data.get("wpq_entries", 4),
            jitter=[list(j) for j in data.get("jitter", [])],
            fifo_backpressure=data.get("fifo_backpressure", True),
            ordered_line_log_persists=data.get("ordered_line_log_persists", True),
            crash_fracs=[float(f) for f in data.get("crash_fracs", [])],
            mshrs_per_cache=data.get("mshrs_per_cache"),
            workload=data.get("workload"),
            workload_params=data.get("workload_params"),
        )

    # -- shrinking helpers -------------------------------------------------

    @property
    def size(self) -> int:
        """Shrink metric (lexicographic): ops dominate, then thread count,
        then op complexity (RMWs, nonzero values), then jitter mass - so
        every shrinker transformation strictly decreases it."""
        ops = rmws = values = 0
        for t in self.threads:
            for r in t:
                for _line, rmw, value in r:
                    ops += 1
                    rmws += bool(rmw)
                    values += bool(value)
        jit = sum(1 for j in self.jitter for d in j if d)
        return ops * 1000 + len(self.threads) * 50 + rmws * 10 + values * 2 + jit

    def example_line(self) -> str:
        """A pasteable ``@example(...)`` for the scheme's property test."""
        if self.workload:
            return (
                f"# workload-backed case: {self.workload} "
                f"{self.workload_params!r} (replay via the corpus)"
            )
        test = (
            "tests/property/test_prop_recovery.py"
            if self.scheme == "asap"
            else "tests/property/test_prop_redo.py"
        )
        note = ""
        if any(d for j in self.jitter for d in j):
            note = (
                "  # NOTE: original failure also needed Compute jitter "
                f"{self.jitter}; replay via the corpus if the pin passes"
            )
        return f"@example(threads={self.threads!r})  # pin on {test}{note}"


def case_workload(case: FuzzCase):
    """Instantiate the workload a workload-backed case pins (else None)."""
    if not case.workload:
        return None
    from repro.workloads import WorkloadParams, get_workload
    from repro.workloads.service import ServiceParams

    kwargs = dict(case.workload_params or {})
    service_only = {"offered_load", "skew", "read_fraction", "requests"}
    cls = ServiceParams if service_only & set(kwargs) else WorkloadParams
    return get_workload(case.workload, cls(**kwargs))


def install_case(machine, case: FuzzCase) -> None:
    """Install the case's thread programs on any machine-like target.

    ``machine`` needs only ``heap.alloc``, ``new_lock`` and ``spawn`` -
    satisfied by the simulated :class:`~repro.sim.machine.Machine` *and*
    by the linter's :class:`~repro.analysis.linter.LintMachine`, so a
    corpus case replays both as a timed crash-consistency check and as a
    static lint target (the tier-1 corpus-replay suite does both).

    A workload-backed case installs its pinned workload instead of the
    synthetic RMW schedule; everything downstream (oracle differential,
    crash sweep, race tracing, lint) is program-agnostic.
    """
    workload = case_workload(case)
    if workload is not None:
        workload.install(machine)
        return
    base = machine.heap.alloc(64 * NUM_LINES)
    lock = machine.new_lock()

    def worker(env, regions, delays):
        remaining = list(delays)

        def pause():
            if remaining:
                d = remaining.pop(0)
                if d:
                    return Compute(d)
            return None

        for region in regions:
            yield Lock(lock)
            yield Begin()
            for line_idx, read_first, value in region:
                p = pause()
                if p is not None:
                    yield p
                addr = base + 64 * line_idx
                if read_first:
                    (v,) = yield Read(addr, 1)
                    yield Write(addr, [v ^ value])
                else:
                    yield Write(addr, [value])
            yield End()
            yield Unlock(lock)

    for tidx, regions in enumerate(case.threads):
        delays = case.jitter[tidx] if tidx < len(case.jitter) else []
        machine.spawn(lambda env, r=regions, d=delays: worker(env, r, d))


def build_machine(case: FuzzCase) -> Machine:
    """Instantiate the case's program on the case's machine config."""
    config = SystemConfig.small(
        wpq_entries=case.wpq_entries,
        ordered_line_log_persists=case.ordered_line_log_persists,
    )
    if not case.fifo_backpressure:
        config = dc_replace(
            config,
            memory=dc_replace(config.memory, wpq_fifo_backpressure=False),
        )
    if case.mshrs_per_cache is not None:
        config = dc_replace(
            config,
            memory=dc_replace(
                config.memory, mshrs_per_cache=case.mshrs_per_cache
            ),
        )
    m = Machine(config, make_scheme(case.scheme))
    install_case(m, case)
    return m


# -- checks (the differential oracle) --------------------------------------


def check_no_crash(case: FuzzCase) -> List[str]:
    """Run to completion; PM must equal the oracle's committed image."""
    m = build_machine(case)
    m.run()
    failures: List[str] = []
    uncommitted = m.oracle.uncommitted_rids()
    if case.scheme == "asap" and uncommitted:
        failures.append(f"regions never committed: {uncommitted}")
    mismatches = m.oracle.mismatches(m.pm_image)
    if mismatches:
        failures.append(f"committed values missing from PM: {mismatches[:4]}")
    return failures


def check_crash(case: FuzzCase, at_cycle: int) -> List[str]:
    """Crash at ``at_cycle``; recovery must match the oracle's image."""
    m = build_machine(case)
    state = crash_machine(m, at_cycle=at_cycle)
    image, _report = recover(state)
    image2, _ = recover(state)
    failures: List[str] = []
    verdict = verify_recovery(m, image)
    if not verdict.ok:
        failures.append(f"@{at_cycle}: {verdict.explain()}")
    if sorted(image.items()) != sorted(image2.items()):
        failures.append(f"@{at_cycle}: recovery nondeterministic")
    return failures


def case_failures(case: FuzzCase, crash_points: int = 0) -> List[str]:
    """All checks for one case: no-crash plus an optional crash sweep.

    A case's pinned ``crash_fracs`` are always swept on top of the
    ``crash_points`` evenly-spaced ones - corpus entries record the exact
    crash fraction their historical failure needed.
    """
    failures = list(check_no_crash(case))
    if crash_points > 0 or case.crash_fracs:
        total = build_machine(case).run().cycles
        cycles = {
            max(1, ((i + 1) * total) // (crash_points + 1))
            for i in range(crash_points)
        }
        cycles.update(max(1, int(total * frac)) for frac in case.crash_fracs)
        for cycle in sorted(cycles):
            failures.extend(check_crash(case, cycle))
    return failures


# -- generation ------------------------------------------------------------


def generate_case(seed: int, index: int, scheme: str) -> FuzzCase:
    """Deterministically generate case ``index`` of stream ``seed``."""
    rng = random.Random(f"asap-fuzz:{seed}:{index}:{scheme}")
    num_threads = rng.randint(1, 3)
    # Contention bias: commit-ordering hazards need threads to collide on
    # lines, so most cases confine themselves to a small slice of the
    # array. Values are biased tiny so a lost committed write shows up as
    # a crisp 1-vs-0 mismatch rather than noise.
    span = rng.choice((3, 5, 8, NUM_LINES))
    threads: List[List[List[FuzzOp]]] = []
    jitter: List[List[int]] = []
    for _ in range(num_threads):
        regions: List[List[FuzzOp]] = []
        for _ in range(rng.randint(1, 5)):
            region: List[FuzzOp] = []
            for _ in range(rng.randint(1, 4)):
                region.append(
                    (
                        rng.randrange(span),
                        rng.random() < 0.35,  # RMWs are the hard case
                        rng.choice((0, 0, 1, rng.randrange(2**20))),
                    )
                )
            regions.append(region)
        threads.append(regions)
        nops = sum(len(r) for r in regions)
        jitter.append([rng.choice((0, 0, 5, 17, 60, 240)) for _ in range(nops)])
    return FuzzCase(
        scheme=scheme,
        threads=threads,
        wpq_entries=rng.choice((1, 2, 3, 4, 8, 16)),
        jitter=jitter,
    )


def mutate_case(
    base: FuzzCase, rng: random.Random, scheme: Optional[str] = None
) -> FuzzCase:
    """Corpus-seeded mutation: small structured edits of a known case.

    Pure random generation almost never lands in the tiny schedule-space
    pockets where commit-ordering hazards live (the ROADMAP bug sat in a
    ~0.2%-of-schedules corner), but *neighbourhoods* of historical
    failures are dense with them - measured >50% of single-op mutations
    of the original failing schedule still failed pre-fix. So the fuzzer
    spends part of its budget mutating regression-corpus entries and any
    failures found this campaign, AFL-style.
    """
    if base.workload:
        return base  # workload cases have no schedule to edit
    threads = [[list(region) for region in thread] for thread in base.threads]
    jitter = [list(j) for j in base.jitter]
    for _ in range(rng.randint(1, 3)):
        kind = rng.randrange(6)
        t = rng.randrange(len(threads))
        r = rng.randrange(len(threads[t]))
        if kind == 0:  # retarget an op's line
            o = rng.randrange(len(threads[t][r]))
            line, rmw, v = threads[t][r][o]
            threads[t][r][o] = (rng.randrange(NUM_LINES), rmw, v)
        elif kind == 1:  # perturb a value
            o = rng.randrange(len(threads[t][r]))
            line, rmw, _v = threads[t][r][o]
            threads[t][r][o] = (line, rmw, rng.choice((0, 1, rng.randrange(2**20))))
        elif kind == 2:  # toggle RMW-ness
            o = rng.randrange(len(threads[t][r]))
            line, rmw, v = threads[t][r][o]
            threads[t][r][o] = (line, not rmw, v)
        elif kind == 3:  # grow: append a plain write
            threads[t][r].append((rng.randrange(NUM_LINES), False, 0))
        elif kind == 4 and len(threads[t][r]) > 1:  # drop an op
            del threads[t][r][rng.randrange(len(threads[t][r]))]
        else:  # jiggle the interleaving
            while len(jitter) <= t:
                jitter.append([])
            nops = sum(len(rg) for rg in threads[t])
            while len(jitter[t]) < nops:
                jitter[t].append(0)
            if jitter[t]:
                jitter[t][rng.randrange(len(jitter[t]))] = rng.choice(
                    (0, 5, 17, 60, 240)
                )
    return FuzzCase(
        scheme=scheme or base.scheme,
        threads=threads,
        wpq_entries=rng.choice((base.wpq_entries, base.wpq_entries, 2, 3, 4, 8)),
        jitter=jitter,
        fifo_backpressure=base.fifo_backpressure,
        ordered_line_log_persists=base.ordered_line_log_persists,
    )


# -- shrinking -------------------------------------------------------------


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_attempts: int = 400,
) -> FuzzCase:
    """Greedy delta debugging toward a minimal still-failing case.

    Tries, to a fixed point or an attempt budget: dropping whole threads,
    whole regions, single ops; zeroing op values; demoting RMWs to plain
    writes; and clearing jitter. Deterministic: candidates are tried in a
    fixed order and the first improvement restarts the scan.
    """
    if case.workload:
        return case  # workload cases replay verbatim
    attempts = 0

    def accept(candidate: FuzzCase) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        if not candidate.threads or not any(candidate.threads):
            return False
        attempts += 1
        return candidate.size < best.size and still_fails(candidate)

    best = case
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        # 1. drop a whole thread (and its jitter)
        for i in range(len(best.threads)):
            cand = dc_replace(
                best,
                threads=best.threads[:i] + best.threads[i + 1:],
                jitter=[j for k, j in enumerate(best.jitter) if k != i],
            )
            if accept(cand):
                best, improved = cand, True
                break
        if improved:
            continue
        # 2. drop a whole region
        for t in range(len(best.threads)):
            for r in range(len(best.threads[t])):
                threads = [list(th) for th in best.threads]
                del threads[t][r]
                if not threads[t]:
                    del threads[t]
                cand = dc_replace(best, threads=threads)
                if accept(cand):
                    best, improved = cand, True
                    break
            if improved:
                break
        if improved:
            continue
        # 3. drop a single op
        for t in range(len(best.threads)):
            for r in range(len(best.threads[t])):
                for o in range(len(best.threads[t][r])):
                    threads = [[list(rg) for rg in th] for th in best.threads]
                    del threads[t][r][o]
                    if not threads[t][r]:
                        del threads[t][r]
                    if not threads[t]:
                        del threads[t]
                    cand = dc_replace(best, threads=threads)
                    if accept(cand):
                        best, improved = cand, True
                        break
                if improved:
                    break
            if improved:
                break
        if improved:
            continue
        # 4. simplify ops in place: demote RMW to plain write, zero value
        for t in range(len(best.threads)):
            for r in range(len(best.threads[t])):
                for o, (line, rmw, value) in enumerate(best.threads[t][r]):
                    for simpler in (
                        (line, False, value) if rmw else None,
                        (line, rmw, 0) if value else None,
                    ):
                        if simpler is None:
                            continue
                        threads = [[list(rg) for rg in th] for th in best.threads]
                        threads[t][r][o] = simpler
                        cand = dc_replace(best, threads=threads)
                        if accept(cand):
                            best, improved = cand, True
                            break
                    if improved:
                        break
                if improved:
                    break
            if improved:
                break
        if improved:
            continue
        # 5. clear jitter wholesale, then entry by entry
        if any(d for j in best.jitter for d in j):
            cand = dc_replace(best, jitter=[])
            if accept(cand):
                best, improved = cand, True
                continue
            for t in range(len(best.jitter)):
                for i, d in enumerate(best.jitter[t]):
                    if not d:
                        continue
                    jitter = [list(j) for j in best.jitter]
                    jitter[t][i] = 0
                    cand = dc_replace(best, jitter=jitter)
                    if accept(cand):
                        best, improved = cand, True
                        break
                if improved:
                    break
    return best


# -- the campaign ----------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign (deterministic per seed+budget)."""

    seed: int
    budget: int
    runs: int = 0
    cases: int = 0
    crash_points_checked: int = 0
    schemes: List[str] = field(default_factory=list)
    wpq_sizes: List[int] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    failing_cases: List[FuzzCase] = field(default_factory=list)
    shrunk_cases: List[FuzzCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "CLEAN" if self.ok else f"{len(self.failures)} FAILURES"
        wpqs = ",".join(str(w) for w in sorted(set(self.wpq_sizes))) or "-"
        return (
            f"fuzz seed={self.seed}: {status} over {self.runs} runs "
            f"({self.cases} schedules x [no-crash + "
            f"{self.crash_points_checked} crash points], schemes "
            f"{'/'.join(sorted(set(self.schemes))) or '-'}, "
            f"WPQ sizes {{{wpqs}}})"
        )


def run_fuzz(
    seed: int = 0,
    budget: int = 240,
    crash_points: int = 3,
    schemes: Tuple[str, ...] = SCHEMES,
    shrink: bool = True,
    fifo_backpressure: bool = True,
    ordered_line_log_persists: bool = True,
    mshrs_per_cache: Optional[int] = None,
    corpus: Optional[List[FuzzCase]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run a fuzzing campaign of ``budget`` schedule x crash-point runs.

    Each generated schedule costs ``1 + crash_points`` runs (the no-crash
    differential check plus the crash sweep). Schemes round-robin so a
    small budget still covers both log flavours. About a third of the
    budget mutates ``corpus`` entries and this campaign's own failures
    (see :func:`mutate_case`); the rest is fresh random generation. The
    whole campaign is deterministic in ``seed`` and ``budget``.
    """
    report = FuzzReport(seed=seed, budget=budget)
    corpus = list(corpus or [])
    index = 0
    while report.runs < budget:
        scheme = schemes[index % len(schemes)]
        rng = random.Random(f"asap-fuzz:{seed}:{index}:{scheme}:pick")
        pool = [
            c
            for c in corpus + report.failing_cases
            # workload-backed cases replay verbatim; their op streams are
            # the workload's own, so schedule mutation has nothing to edit
            if not c.workload and (c.scheme == scheme or len(schemes) == 1)
        ]
        if pool and rng.random() < 0.35:
            case = mutate_case(rng.choice(pool), rng, scheme=scheme)
        else:
            case = generate_case(seed, index, scheme)
        if not fifo_backpressure:
            case = dc_replace(case, fifo_backpressure=False)
        if not ordered_line_log_persists:
            case = dc_replace(case, ordered_line_log_persists=False)
        if mshrs_per_cache is not None:
            case = dc_replace(case, mshrs_per_cache=mshrs_per_cache)
        index += 1
        report.cases += 1
        report.schemes.append(scheme)
        report.wpq_sizes.append(case.wpq_entries)

        failures = check_no_crash(case)
        report.runs += 1
        crashed_failures: List[str] = []
        if not failures and crash_points > 0:
            total = build_machine(case).run().cycles
            for i in range(crash_points):
                if report.runs >= budget and report.cases > 1:
                    break
                cycle = max(1, ((i + 1) * total) // (crash_points + 1))
                crashed_failures.extend(check_crash(case, cycle))
                report.runs += 1
                report.crash_points_checked += 1
        failures.extend(crashed_failures)

        if failures:
            report.failures.append(
                f"case {index - 1} ({scheme}, wpq={case.wpq_entries}): "
                + "; ".join(failures[:3])
            )
            report.failing_cases.append(case)
            if progress:
                progress(f"FAIL {report.failures[-1]}")
            if shrink:
                minimal = shrink_case(
                    case, lambda c: bool(case_failures(c, crash_points=0))
                )
                if not case_failures(minimal, crash_points=0):
                    # shrank against the no-crash check but the failure was
                    # crash-only: shrink against the full sweep instead
                    minimal = shrink_case(
                        case,
                        lambda c: bool(case_failures(c, crash_points=crash_points)),
                    )
                report.shrunk_cases.append(minimal)
                if progress:
                    progress(f"shrunk to: {minimal.example_line()}")
        elif progress and report.cases % 20 == 0:
            progress(
                f"{report.runs}/{budget} runs, {report.cases} schedules, clean"
            )
    return report


# -- directed mode (--from-races) ------------------------------------------


@dataclass
class DirectedReport:
    """Outcome of a race-directed verification pass.

    Instead of random sweeping, each case gets **one** instrumented run
    through the happens-before race detector
    (:mod:`repro.analysis.races`); every finding's witness (crash window)
    is then verified with a handful of directed crash replays. ``runs``
    counts every simulation run either step consumed, for comparison
    against an undirected sweep's budget.
    """

    runs: int = 0
    cases: int = 0
    findings: int = 0
    confirmed: int = 0
    outcomes: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no race was confirmed."""
        return self.confirmed == 0

    def summary(self) -> str:
        status = (
            "no races" if self.findings == 0
            else f"{self.confirmed}/{self.findings} race(s) CONFIRMED"
        )
        return (
            f"fuzz --from-races: {status} over {self.cases} case(s) in "
            f"{self.runs} simulation runs"
        )


def run_directed(
    cases: List[Tuple[str, FuzzCase]],
    max_points: int = 5,
    progress: Optional[Callable[[str], None]] = None,
) -> DirectedReport:
    """Race-detect each (source, case) pair and verify every witness."""
    from repro.analysis.races import detect_in_case, verify_finding

    report = DirectedReport()
    for source, case in cases:
        result = detect_in_case(case, source=source)
        report.runs += 1
        report.cases += 1
        if progress:
            progress(
                f"{source}: {len(result.findings)} candidate(s) from one "
                f"instrumented run ({result.nodes} persist ops)"
            )
        for finding in result.findings:
            outcome = verify_finding(case, finding, max_points=max_points)
            report.runs += outcome.runs_used
            report.findings += 1
            if outcome.status == "CONFIRMED":
                report.confirmed += 1
            report.outcomes.append(
                {
                    "source": source,
                    "rule_id": finding.rule_id,
                    "status": outcome.status,
                    "window": list(finding.window),
                    "crash_fracs": finding.crash_fracs,
                    "runs_used": outcome.runs_used,
                    "evidence": outcome.evidence,
                }
            )
            if progress:
                progress(
                    f"  {finding.rule_id} -> {outcome.status} "
                    f"(+{outcome.runs_used} directed run(s)): "
                    f"{outcome.evidence}"
                )
    return report


# -- corpus ----------------------------------------------------------------


def save_corpus_entry(case: FuzzCase, path: str, description: str = "") -> None:
    """Write a failing (shrunk) case as a corpus JSON file."""
    entry = case.to_json()
    entry["description"] = description or "fuzzer-found failure (shrunk)"
    entry["example"] = case.example_line()
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2)
        fh.write("\n")


def load_corpus_entry(path: str) -> Tuple[FuzzCase, dict]:
    with open(path) as fh:
        data = json.load(fh)
    return FuzzCase.from_json(data), data


# -- CLI -------------------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="asap-repro fuzz",
        description="Interleaving-aware differential crash fuzzing",
    )
    parser.add_argument("--seed", type=int, default=0, help="PRNG stream id")
    parser.add_argument(
        "--budget",
        type=int,
        default=240,
        help="total schedule x crash-point runs (default 240)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=3,
        help="crash points swept per schedule (default 3)",
    )
    parser.add_argument(
        "--scheme",
        choices=["asap", "asap_redo", "both"],
        default="both",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without delta-debugging them",
    )
    parser.add_argument(
        "--legacy-backpressure",
        action="store_true",
        help="fuzz the pre-fix WPQ backpressure model (expects failures; "
        "kept for shrinker demos and regression archaeology)",
    )
    parser.add_argument(
        "--legacy-line-order",
        action="store_true",
        help="fuzz the pre-fix same-line log-persist model (hardened "
        "recovery defensively skips broken undo chains, so this is "
        "expected to stay clean; see docs/RECOVERY.md)",
    )
    parser.add_argument(
        "--save-failures",
        metavar="DIR",
        default=None,
        help="write each shrunk failing case as corpus JSON into DIR",
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="seed mutations from the corpus JSON files in DIR "
        "(typically tests/property/corpus)",
    )
    parser.add_argument(
        "--mshrs",
        type=int,
        default=None,
        metavar="N",
        help="pin MemoryParams.mshrs_per_cache for every case (1 = the "
        "blocking one-outstanding-fetch hierarchy; default = config "
        "default). Used by CI to replay the corpus under both models",
    )
    parser.add_argument(
        "--from-races",
        action="store_true",
        help="directed mode: race-detect each --corpus case in one "
        "instrumented run, then verify each finding's witness with a "
        "few targeted crash replays instead of random sweeping "
        "(combine with --legacy-* to reproduce the pinned bugs)",
    )
    args = parser.parse_args(argv)

    if args.from_races:
        import glob
        import os

        corpus_dir = args.corpus or os.path.join(
            "tests", "property", "corpus"
        )
        cases: List[Tuple[str, FuzzCase]] = []
        for path in sorted(glob.glob(os.path.join(corpus_dir, "*.json"))):
            case, _meta = load_corpus_entry(path)
            if args.legacy_backpressure:
                case = dc_replace(case, fifo_backpressure=False)
            if args.legacy_line_order:
                case = dc_replace(case, ordered_line_log_persists=False)
            if args.mshrs is not None:
                case = dc_replace(case, mshrs_per_cache=args.mshrs)
            if args.scheme != "both" and case.scheme != args.scheme:
                continue
            cases.append((os.path.basename(path), case))
        directed = run_directed(
            cases,
            progress=lambda msg: print(f"  {msg}", file=sys.stderr, flush=True),
        )
        print(directed.summary())
        print(
            f"  (an undirected sweep of the same cases would spend the "
            f"full --budget of {args.budget} runs)"
        )
        return 0 if directed.ok else 1

    corpus_cases: List[FuzzCase] = []
    if args.corpus:
        import glob
        import os

        for path in sorted(glob.glob(os.path.join(args.corpus, "*.json"))):
            case, _meta = load_corpus_entry(path)
            # corpus entries may pin a legacy model or an MSHR stress
            # count; fuzz the current model (--mshrs re-pins uniformly)
            corpus_cases.append(
                dc_replace(
                    case,
                    fifo_backpressure=True,
                    ordered_line_log_persists=True,
                    crash_fracs=[],
                    mshrs_per_cache=None,
                )
            )

    schemes = SCHEMES if args.scheme == "both" else (args.scheme,)
    report = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        crash_points=args.points,
        schemes=schemes,
        shrink=not args.no_shrink,
        fifo_backpressure=not args.legacy_backpressure,
        ordered_line_log_persists=not args.legacy_line_order,
        mshrs_per_cache=args.mshrs,
        corpus=corpus_cases,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr, flush=True),
    )
    print(report.summary())
    for case in report.shrunk_cases:
        print(f"  minimal repro: {case.example_line()}")
    if args.save_failures and report.shrunk_cases:
        import os

        os.makedirs(args.save_failures, exist_ok=True)
        for i, case in enumerate(report.shrunk_cases):
            path = os.path.join(
                args.save_failures, f"fuzz-seed{args.seed}-fail{i}.json"
            )
            save_corpus_entry(case, path)
            print(f"  wrote {path}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""The experiment harness: regenerate every table and figure.

Each experiment module exposes ``run(quick=...)`` returning an
:class:`~repro.harness.experiment.ExperimentResult` whose rows mirror the
paper's plot series, plus the paper's reference numbers so the output
reads as a paper-vs-measured comparison. The CLI
(``python -m repro.harness.run <experiment>`` or the installed
``asap-repro`` script) prints them as text tables.
"""

from repro.harness.experiment import ExperimentResult, geomean
from repro.harness.runner import run_once, default_config, default_params

__all__ = ["ExperimentResult", "geomean", "run_once", "default_config", "default_params"]

"""The experiment harness: regenerate every table and figure.

Each experiment module declares its run matrix as a list of
:class:`~repro.harness.parallel.RunSpec` cells (``plan()``) and exposes
``run(quick=..., jobs=..., cache=...)`` returning an
:class:`~repro.harness.experiment.ExperimentResult` whose rows mirror the
paper's plot series, plus the paper's reference numbers so the output
reads as a paper-vs-measured comparison. Cells execute serially or across
a process pool (:func:`~repro.harness.parallel.execute`) with an optional
content-addressed on-disk cache
(:class:`~repro.harness.parallel.ResultCache`). The CLI
(``python -m repro.harness.run <experiment>`` or the installed
``asap-repro`` script) prints them as text tables; see docs/HARNESS.md.
"""

from repro.harness.experiment import ExperimentResult, geomean
from repro.harness.parallel import (
    CellResult,
    Plan,
    ResultCache,
    RunSpec,
    execute,
    run_cell,
)
from repro.harness.runner import (
    default_config,
    default_params,
    run_once,
    sanitize_default,
    set_sanitize_default,
)

__all__ = [
    "ExperimentResult",
    "geomean",
    "run_once",
    "default_config",
    "default_params",
    "sanitize_default",
    "set_sanitize_default",
    "RunSpec",
    "CellResult",
    "Plan",
    "ResultCache",
    "execute",
    "run_cell",
]

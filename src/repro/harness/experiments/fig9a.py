"""Figure 9a: incremental benefit of ASAP's memory-traffic optimizations.

PM write traffic of each ablation point, normalized to full ASAP (lower
is better; full ASAP = 1.0 by construction):

* ``ASAP-No-Opt`` - no optimizations,
* ``ASAP+C`` - DPO coalescing (paper: ~8% traffic reduction over No-Opt),
* ``ASAP+C+LP`` - + LPO dropping (further ~33%),
* ``ASAP`` - + DPO dropping (further ~31%).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

ABLATIONS = [
    ("ASAP-No-Opt", "no_opt"),
    ("ASAP+C", "+C"),
    ("ASAP+C+LP", "+C+LP"),
    ("ASAP", "full"),
]

#: successive reductions the paper reports (Sec. 7.2)
PAPER_INCREMENTS = {"+C over No-Opt": 0.08, "+LP over +C": 0.33, "+DP over +C+LP": 0.31}


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        params = default_params(quick)
        for label, ablation in ABLATIONS:
            config = default_config(quick)
            config = config.with_asap(config.asap.ablation(ablation))
            specs.append(
                RunSpec(
                    key=(name, label),
                    workload=name,
                    scheme="asap",
                    config=config,
                    params=params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Fig. 9a",
            title="ASAP traffic-optimization ablation "
            "(PM write traffic normalized to full ASAP, lower is better)",
            columns=[label for label, _ in ABLATIONS],
            paper={"successive reduction": PAPER_INCREMENTS},
        )
        for name in workloads:
            traffic = {
                label: cells[(name, label)].result.pm_writes
                for label, _ in ABLATIONS
            }
            full = traffic["ASAP"] or 1
            result.add_row(name, **{k: v / full for k, v in traffic.items()})
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Ext. 4: ASAP vs an idealized eADR design (the Sec. 8 argument).

"Intel eADR can make caches part of the persistence domain, which
overcomes the latency of persist operations. ... eADR also requires a
large battery, consuming high power. In contrast, ASAP can overcome the
latency of persist operations and achieve near-non-persistence
performance without this requirement."

Both sides of that sentence, measured: throughput of ASAP relative to the
eADR ideal (which is NP-speed by construction), and the battery-backed
SRAM each design needs - the whole cache hierarchy for eADR vs ASAP's
WPQ / LH-WPQ / Dependence List footprint.
"""

from __future__ import annotations

from repro.common.params import SystemConfig
from repro.common.units import CACHE_LINE_BYTES
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names


def asap_persistence_domain_bytes(config: SystemConfig) -> int:
    """Bytes ASAP needs ADR/battery protection for: the WPQs, LH-WPQs,
    and Dependence Lists (Fig. 3's persistence-domain structures)."""
    mem, asap = config.memory, config.asap
    per_channel = (
        mem.wpq_entries * CACHE_LINE_BYTES
        + asap.lh_wpq_entries * 70
        + asap.dependence_list_entries * 21
    )
    return mem.num_channels * per_channel


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        config = default_config(quick)
        params = default_params(quick)
        for scheme in ("asap", "eadr"):
            specs.append(
                RunSpec(
                    key=(name, scheme),
                    workload=name,
                    scheme=scheme,
                    config=config,
                    params=params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Ext. 4",
            title="ASAP vs idealized eADR (battery-backed caches): performance "
            "parity without the battery (Sec. 8)",
            columns=["ASAP/eADR throughput", "ASAP PM writes", "eADR PM writes"],
        )
        for name in workloads:
            asap = cells[(name, "asap")].result
            eadr = cells[(name, "eadr")].result
            result.add_row(
                name,
                **{
                    "ASAP/eADR throughput": asap.throughput / eadr.throughput,
                    # eADR holds nearly everything in the (battery-protected)
                    # caches; ASAP actually drains to the PM medium
                    "ASAP PM writes": float(asap.pm_writes),
                    "eADR PM writes": float(eadr.pm_writes),
                },
            )
        result.geomean_row()
        cfg = SystemConfig()  # the Table 2 machine for the battery comparison
        eadr_bytes = (
            cfg.num_cores * (cfg.l1.size_bytes + cfg.l2.size_bytes)
            + cfg.l3.size_bytes
        )
        asap_bytes = asap_persistence_domain_bytes(cfg)
        battery_note = (
            f"battery-backed SRAM on the Table 2 machine: eADR needs the whole "
            f"hierarchy ({eadr_bytes / 2**20:.1f} MiB); ASAP needs its "
            f"persistence-domain structures ({asap_bytes / 2**10:.0f} KiB) - "
            f"{eadr_bytes / asap_bytes:.0f}x less"
        )
        result.notes = (
            f"{result.notes}; {battery_note}" if result.notes else battery_note
        )
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

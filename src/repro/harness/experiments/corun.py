"""The paper's co-run claim (Sec. 1), quantified.

"Although reducing persistent memory traffic does not significantly
improve performance of a single application because the persist
operations are asynchronous, it still benefits other metrics such as the
lifetime of the persistent memory or throughput of multiple co-running
memory-intensive applications."

Two workloads share one machine (disjoint heaps, disjoint locks) under
4x PM latency so the channels are bandwidth-bound. We compare full ASAP
against the no-optimization ablation: the saved traffic is the only
difference, and under contention it shows up as co-run throughput. The
same tables report total PM writes, whose reciprocal is the
lifetime-benefit proxy.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.workloads import get_workload

PAIRS = [("BN", "Q"), ("HM", "EO")]


def _corun(ablation: str, pair, quick: bool):
    config = default_config(quick, pm_latency_multiplier=4)
    config = config.with_asap(config.asap.ablation(ablation))
    machine = Machine(config, make_scheme("asap"))
    params = default_params(quick)
    for name in pair:
        get_workload(name, params).install(machine)
    return machine.run()


def run(quick: bool = True, workloads=None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="Ext. 3",
        title="Co-running applications at 4x PM latency: full ASAP vs the "
        "no-optimization ablation (normalized to full ASAP)",
        columns=["throughput", "PM writes", "lifetime proxy"],
        notes="the paper's Sec. 1 claim: traffic optimizations pay off in "
        "co-run throughput and device lifetime even though single-app "
        "latency is unaffected (persists are asynchronous)",
    )
    for pair in PAIRS:
        full = _corun("full", pair, quick)
        noopt = _corun("no_opt", pair, quick)
        label = "+".join(pair)
        result.add_row(
            f"{label} no-opt",
            **{
                "throughput": noopt.throughput / full.throughput,
                "PM writes": noopt.pm_writes / max(1, full.pm_writes),
                "lifetime proxy": full.pm_writes / max(1, noopt.pm_writes),
            },
        )
    result.geomean_row()
    return result

"""The paper's co-run claim (Sec. 1), quantified.

"Although reducing persistent memory traffic does not significantly
improve performance of a single application because the persist
operations are asynchronous, it still benefits other metrics such as the
lifetime of the persistent memory or throughput of multiple co-running
memory-intensive applications."

Two workloads share one machine (disjoint heaps, disjoint locks) under
4x PM latency so the channels are bandwidth-bound. We compare full ASAP
against the no-optimization ablation: the saved traffic is the only
difference, and under contention it shows up as co-run throughput. The
same tables report total PM writes, whose reciprocal is the
lifetime-benefit proxy.

The multi-tenant mix cell co-runs an open-loop service tenant (SVC, see
docs/SERVICE.md) with a batch workload: the batch tenant's extra log
traffic under no-opt queues ahead of the service tenant's persists, so
the saved traffic also shows up as service tail latency (``svc p99``).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import (
    default_config,
    default_params,
    default_service_params,
    resolve_sanitize,
)

PAIRS = [("BN", "Q"), ("HM", "EO")]

#: service tenant + batch workload sharing the bandwidth-bound machine
MIX_PAIRS = [("SVC", "HM")]

#: past the quick-machine knee, so service requests queue behind the
#: batch tenant's traffic
MIX_OFFERED_LOAD = 8.0


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    sanitize = resolve_sanitize(sanitize)
    params = default_params(quick)
    mix_params = default_service_params(
        quick,
        offered_load=MIX_OFFERED_LOAD,
        ops_per_thread=params.ops_per_thread,
    )
    specs = []
    for pair in PAIRS + MIX_PAIRS:
        for ablation in ("full", "no_opt"):
            config = default_config(quick, pm_latency_multiplier=4)
            config = config.with_asap(config.asap.ablation(ablation))
            specs.append(
                RunSpec(
                    key=("+".join(pair), ablation),
                    workload=tuple(pair),
                    scheme="asap",
                    config=config,
                    params=mix_params if pair in MIX_PAIRS else params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Ext. 3",
            title="Co-running applications at 4x PM latency: full ASAP vs the "
            "no-optimization ablation (normalized to full ASAP)",
            columns=["throughput", "PM writes", "lifetime proxy"],
            notes="the paper's Sec. 1 claim: traffic optimizations pay off in "
            "co-run throughput and device lifetime even though single-app "
            "latency is unaffected (persists are asynchronous); the SVC mix "
            "row additionally reports the service tenant's p99 "
            "arrival-to-durable latency (no-opt/full)",
        )
        for pair in PAIRS + MIX_PAIRS:
            label = "+".join(pair)
            full = cells[(label, "full")].result
            noopt = cells[(label, "no_opt")].result
            result.add_row(
                f"{label} no-opt",
                **{
                    "throughput": noopt.throughput / full.throughput,
                    "PM writes": noopt.pm_writes / max(1, full.pm_writes),
                    "lifetime proxy": full.pm_writes / max(1, noopt.pm_writes),
                },
            )
        result.geomean_row()
        # The service tail column only exists for mix rows (batch pairs
        # have no open-loop tenant); added after the geomean so missing
        # cells are rendered blank, not flagged as dropped.
        result.columns.append("svc p99")
        for pair in MIX_PAIRS:
            label = "+".join(pair)
            full = cells[(label, "full")].result
            noopt = cells[(label, "no_opt")].result
            result.rows[f"{label} no-opt"]["svc p99"] = (
                noopt.p99_cycles / max(1, full.p99_cycles)
            )
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

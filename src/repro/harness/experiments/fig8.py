"""Figure 8: cycles per atomic region, normalized to NP (lower is better).

The latency an atomic region imposes on the instruction stream: from
``asap_begin`` issuing to ``asap_end`` retiring. Synchronous-commit
schemes pay their persist waits here; ASAP does not.

Paper geomeans: HWRedo 1.69x, HWUndo 1.61x, ASAP 1.08x (NP = 1).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

PAPER_GEOMEAN = {"HWRedo": 1.69, "HWUndo": 1.61, "ASAP": 1.08}

SCHEMES = [("SW", "sw"), ("HWRedo", "hwredo"), ("HWUndo", "hwundo"), ("ASAP", "asap")]
SIZES = [64, 2048]


def plan(quick: bool = True, workloads=None, sizes=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sizes = list(sizes or SIZES)
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        for size in sizes:
            config = default_config(quick)
            params = default_params(quick, value_bytes=size)
            for label, scheme in [("NP", "np")] + SCHEMES:
                specs.append(
                    RunSpec(
                        key=(name, size, label),
                        workload=name,
                        scheme=scheme,
                        config=config,
                        params=params,
                        sanitize=sanitize,
                    )
                )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Fig. 8",
            title="Cycles per atomic region normalized to NP (lower is better)",
            columns=[label for label, _ in SCHEMES] + ["NP"],
            paper={"GeoMean": PAPER_GEOMEAN},
        )
        for name in workloads:
            for size in sizes:
                np_res = cells[(name, size, "NP")].result
                row = {"NP": 1.0}
                for label, _ in SCHEMES:
                    res = cells[(name, size, label)].result
                    row[label] = res.cycles_per_region / np_res.cycles_per_region
                result.add_row(f"{name}/{size}B", **row)
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    sizes=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sizes, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Figure 8: cycles per atomic region, normalized to NP (lower is better).

The latency an atomic region imposes on the instruction stream: from
``asap_begin`` issuing to ``asap_end`` retiring. Synchronous-commit
schemes pay their persist waits here; ASAP does not.

Paper geomeans: HWRedo 1.69x, HWUndo 1.61x, ASAP 1.08x (NP = 1).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once
from repro.workloads import workload_names

PAPER_GEOMEAN = {"HWRedo": 1.69, "HWUndo": 1.61, "ASAP": 1.08}

SCHEMES = [("SW", "sw"), ("HWRedo", "hwredo"), ("HWUndo", "hwundo"), ("ASAP", "asap")]
SIZES = [64, 2048]


def run(quick: bool = True, workloads=None, sizes=None) -> ExperimentResult:
    workloads = workloads or workload_names()
    sizes = sizes or SIZES
    result = ExperimentResult(
        exp_id="Fig. 8",
        title="Cycles per atomic region normalized to NP (lower is better)",
        columns=[label for label, _ in SCHEMES] + ["NP"],
        paper={"GeoMean": PAPER_GEOMEAN},
    )
    for name in workloads:
        for size in sizes:
            config = default_config(quick)
            params = default_params(quick, value_bytes=size)
            np_res = run_once(name, "np", config, params)
            cells = {"NP": 1.0}
            for label, scheme in SCHEMES:
                res = run_once(name, scheme, config, params)
                cells[label] = res.cycles_per_region / np_res.cycles_per_region
            result.add_row(f"{name}/{size}B", **cells)
    result.geomean_row()
    return result

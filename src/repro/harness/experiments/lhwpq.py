"""Section 7.4: sensitivity to LH-WPQ size.

ASAP with a 16-entry LH-WPQ per channel vs the default 128 entries. The
paper finds the small configuration runs at 0.78x of the large one - and
still outperforms HWUndo (1.10x) and HWRedo (1.18x) with their full-size
metadata structures.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

PAPER = {
    "ASAP16/ASAP128": 0.78,
    "ASAP16/HWUndo": 1.10,
    "ASAP16/HWRedo": 1.18,
}


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        params = default_params(quick)
        cells = [
            ("big", "asap", default_config(quick)),
            ("small", "asap", default_config(quick, lh_wpq_entries=1)),
            ("hwundo", "hwundo", default_config(quick)),
            ("hwredo", "hwredo", default_config(quick)),
        ]
        for label, scheme, config in cells:
            specs.append(
                RunSpec(
                    key=(name, label),
                    workload=name,
                    scheme=scheme,
                    config=config,
                    params=params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Sec. 7.4",
            title="Sensitivity to LH-WPQ size (throughput ratios)",
            columns=["ASAP16/ASAP128", "ASAP16/HWUndo", "ASAP16/HWRedo"],
            paper={"paper": PAPER},
            notes="quick mode shrinks the small LH-WPQ to 1 entry/channel so "
            "the structural stall appears within short runs (the full "
            "Table 2 machine uses 16 vs 128)",
        )
        for name in workloads:
            big = cells[(name, "big")].result
            small = cells[(name, "small")].result
            hwundo = cells[(name, "hwundo")].result
            hwredo = cells[(name, "hwredo")].result
            result.add_row(
                name,
                **{
                    "ASAP16/ASAP128": small.throughput / big.throughput,
                    "ASAP16/HWUndo": small.throughput / hwundo.throughput,
                    "ASAP16/HWRedo": small.throughput / hwredo.throughput,
                },
            )
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

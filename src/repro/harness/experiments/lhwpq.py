"""Section 7.4: sensitivity to LH-WPQ size.

ASAP with a 16-entry LH-WPQ per channel vs the default 128 entries. The
paper finds the small configuration runs at 0.78x of the large one - and
still outperforms HWUndo (1.10x) and HWRedo (1.18x) with their full-size
metadata structures.

The ASAP size sweep itself is owned by the design-space exploration
subsystem: the big/small configurations come from a one-axis
:class:`~repro.explore.space.SweepSpace` over ``lh_wpq_entries`` and its
cells from :func:`~repro.explore.engine.point_specs`, so this module only
re-keys them for its table and adds the two fixed-size sync baselines.
A wider version of the same sweep is one command away::

    asap-repro explore --axis lh_wpq_entries=1,4,16,64,128 --workloads HM Q
"""

from __future__ import annotations

from dataclasses import replace

from repro.explore.engine import point_specs
from repro.explore.space import SweepSpace
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

PAPER = {
    "ASAP16/ASAP128": 0.78,
    "ASAP16/HWUndo": 1.10,
    "ASAP16/HWRedo": 1.18,
}

#: the shrunken LH-WPQ: 1 entry/channel so the structural stall appears
#: within short quick-mode runs (the full Table 2 machine uses 16 vs 128)
SMALL_LH_WPQ = 1


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    config = default_config(quick)
    params = default_params(quick)

    big_entries = config.asap.lh_wpq_entries
    space = SweepSpace.build(
        axes={"lh_wpq_entries": [big_entries, SMALL_LH_WPQ]},
        workloads=workloads,
        scheme="asap",
    )
    labels = {
        space.point(lh_wpq_entries=big_entries): "big",
        space.point(lh_wpq_entries=SMALL_LH_WPQ): "small",
    }
    specs = [
        # point_specs keys cells as (point, workload); re-key to this
        # table's (workload, label) without touching what gets simulated
        replace(spec, key=(spec.key[1], labels[spec.key[0]]))
        for spec in point_specs(
            space,
            list(labels),
            config=config,
            params=params,
            sanitize=sanitize,
        )
    ]
    for name in workloads:
        for scheme in ("hwundo", "hwredo"):
            specs.append(
                RunSpec(
                    key=(name, scheme),
                    workload=name,
                    scheme=scheme,
                    config=config,
                    params=params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Sec. 7.4",
            title="Sensitivity to LH-WPQ size (throughput ratios)",
            columns=["ASAP16/ASAP128", "ASAP16/HWUndo", "ASAP16/HWRedo"],
            paper={"paper": PAPER},
            notes="quick mode shrinks the small LH-WPQ to 1 entry/channel so "
            "the structural stall appears within short runs (the full "
            "Table 2 machine uses 16 vs 128)",
        )
        for name in workloads:
            big = cells[(name, "big")].result
            small = cells[(name, "small")].result
            hwundo = cells[(name, "hwundo")].result
            hwredo = cells[(name, "hwredo")].result
            result.add_row(
                name,
                **{
                    "ASAP16/ASAP128": small.throughput / big.throughput,
                    "ASAP16/HWUndo": small.throughput / hwundo.throughput,
                    "ASAP16/HWRedo": small.throughput / hwredo.throughput,
                },
            )
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Section 6.2 experiment wrapper: area overhead of ASAP's structures."""

from __future__ import annotations

from repro.area import estimate_area
from repro.common.params import SystemConfig
from repro.harness.experiment import ExperimentResult

PAPER = {"core %": 0.8, "uncore %": 1.7, "total %": 2.5}


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    # purely analytical - no simulation cells to fan out or cache
    report = estimate_area(SystemConfig())
    result = ExperimentResult(
        exp_id="Sec. 6.2",
        title="ASAP hardware area overhead (SRAM-byte proxy vs McPAT)",
        columns=["core %", "uncore %", "total %"],
        paper={"paper (McPAT)": PAPER},
        notes="structure byte counts match the paper exactly; the "
        "bytes-to-area conversion is a density proxy, not McPAT",
    )
    result.add_row(
        "measured",
        **{
            "core %": report.core_overhead * 100,
            "uncore %": report.uncore_overhead * 100,
            "total %": report.total_overhead * 100,
        },
    )
    return result

"""One module per reproduced table/figure; see DESIGN.md's experiment index."""

from repro.harness.experiments import (
    ablations,
    area,
    corun,
    eadr_cmp,
    extension,
    fig1,
    fig7,
    fig8,
    fig9a,
    fig9b,
    fig10,
    fig10_overlap,
    lhwpq,
    numa,
    serve_bench,
)

#: experiment name -> run(quick=...) callable returning an
#: ExperimentResult or a list of them
REGISTRY = {
    "fig1": fig1.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9a": fig9a.run,
    "fig9b": fig9b.run,
    "fig10": fig10.run,
    "fig10_overlap": fig10_overlap.run,
    "lhwpq": lhwpq.run,
    "area": area.run,
    "ablations": ablations.run,
    "extension": extension.run,
    "numa": numa.run,
    "corun": corun.run,
    "eadr": eadr_cmp.run,
    "serve-bench": serve_bench.run,
}

__all__ = ["REGISTRY"]

"""Figure 1: overhead of LPOs and DPOs in a software approach.

Throughput of the software scheme normalized to no-persistency (NP), per
workload plus geomean. The paper (measured on a 4-socket Xeon server)
reports geomeans of 0.58x for "DPO Only" and 0.31x for "LPO & DPO".
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

PAPER_GEOMEAN = {"DPO Only": 0.58, "LPO & DPO": 0.31}


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        config = default_config(quick)
        params = default_params(quick)
        for scheme in ("np", "sw_dpo_only", "sw"):
            specs.append(
                RunSpec(
                    key=(name, scheme),
                    workload=name,
                    scheme=scheme,
                    config=config,
                    params=params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Fig. 1",
            title="Overhead of LPOs and DPOs in a software approach "
            "(throughput normalized to NP, higher is better)",
            columns=["NP", "DPO Only", "LPO & DPO"],
            paper={"GeoMean": PAPER_GEOMEAN},
            notes="paper numbers measured on a real Xeon server; ours on the "
            "simulator - shapes, not absolutes, are comparable",
        )
        for name in workloads:
            np_res = cells[(name, "np")].result
            dpo = cells[(name, "sw_dpo_only")].result
            full = cells[(name, "sw")].result
            result.add_row(
                name,
                **{
                    "NP": 1.0,
                    "DPO Only": dpo.throughput / np_res.throughput,
                    "LPO & DPO": full.throughput / np_res.throughput,
                },
            )
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

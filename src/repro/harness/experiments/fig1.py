"""Figure 1: overhead of LPOs and DPOs in a software approach.

Throughput of the software scheme normalized to no-persistency (NP), per
workload plus geomean. The paper (measured on a 4-socket Xeon server)
reports geomeans of 0.58x for "DPO Only" and 0.31x for "LPO & DPO".
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once
from repro.workloads import workload_names

PAPER_GEOMEAN = {"DPO Only": 0.58, "LPO & DPO": 0.31}


def run(quick: bool = True, workloads=None) -> ExperimentResult:
    workloads = workloads or workload_names()
    result = ExperimentResult(
        exp_id="Fig. 1",
        title="Overhead of LPOs and DPOs in a software approach "
        "(throughput normalized to NP, higher is better)",
        columns=["NP", "DPO Only", "LPO & DPO"],
        paper={"GeoMean": PAPER_GEOMEAN},
        notes="paper numbers measured on a real Xeon server; ours on the "
        "simulator - shapes, not absolutes, are comparable",
    )
    for name in workloads:
        config = default_config(quick)
        params = default_params(quick)
        np_res = run_once(name, "np", config, params)
        dpo = run_once(name, "sw_dpo_only", config, params)
        full = run_once(name, "sw", config, params)
        result.add_row(
            name,
            **{
                "NP": 1.0,
                "DPO Only": dpo.throughput / np_res.throughput,
                "LPO & DPO": full.throughput / np_res.throughput,
            },
        )
    result.geomean_row()
    return result

"""Extension experiment: undo-ASAP vs redo-ASAP (Sec. 3's design choice).

The paper chooses undo logging for ASAP because, once commits are
asynchronous, redo's old advantage (asynchronous DPOs) vanishes, while
undo keeps two perks: more eager in-place updates and no read
redirection to the log. Having implemented the Fig. 2c redo variant
(``asap_redo``), this experiment measures that trade directly: throughput
and PM write traffic of both asynchronous-commit designs, normalized to
undo-ASAP.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once
from repro.workloads import workload_names


def run(quick: bool = True, workloads=None) -> ExperimentResult:
    workloads = workloads or workload_names()
    result = ExperimentResult(
        exp_id="Ext. 1",
        title="Asynchronous commit: undo (paper) vs redo (Fig. 2c variant), "
        "normalized to undo-ASAP",
        columns=["redo throughput", "redo traffic", "redirected reads"],
        notes="the paper predicts undo >= redo once commits are "
        "asynchronous (Sec. 3): redo pays read redirection and final-value "
        "re-logging, and its in-place updates are less eager",
    )
    for name in workloads:
        from repro.persist import make_scheme
        from repro.sim.machine import Machine
        from repro.workloads import get_workload

        config = default_config(quick)
        params = default_params(quick)
        undo = run_once(name, "asap", config, params)
        machine = Machine(default_config(quick), make_scheme("asap_redo"))
        get_workload(name, params).install(machine)
        redo = machine.run()
        result.add_row(
            name,
            **{
                "redo throughput": redo.throughput / undo.throughput,
                "redo traffic": redo.pm_writes / max(1, undo.pm_writes),
                "redirected reads": float(machine.scheme.reads_redirected),
            },
        )
    result.geomean_row()
    return result

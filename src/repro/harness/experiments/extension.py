"""Extension experiment: undo-ASAP vs redo-ASAP (Sec. 3's design choice).

The paper chooses undo logging for ASAP because, once commits are
asynchronous, redo's old advantage (asynchronous DPOs) vanishes, while
undo keeps two perks: more eager in-place updates and no read
redirection to the log. Having implemented the Fig. 2c redo variant
(``asap_redo``), this experiment measures that trade directly: throughput
and PM write traffic of both asynchronous-commit designs, normalized to
undo-ASAP.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        config = default_config(quick)
        params = default_params(quick)
        specs.append(
            RunSpec(
                key=(name, "undo"),
                workload=name,
                scheme="asap",
                config=config,
                params=params,
                sanitize=sanitize,
            )
        )
        specs.append(
            RunSpec(
                key=(name, "redo"),
                workload=name,
                scheme="asap_redo",
                config=config,
                params=params,
                sanitize=sanitize,
                extras=(("reads_redirected", "scheme.reads_redirected"),),
            )
        )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Ext. 1",
            title="Asynchronous commit: undo (paper) vs redo (Fig. 2c variant), "
            "normalized to undo-ASAP",
            columns=["redo throughput", "redo traffic", "redirected reads"],
            notes="the paper predicts undo >= redo once commits are "
            "asynchronous (Sec. 3): redo pays read redirection and final-value "
            "re-logging, and its in-place updates are less eager",
        )
        for name in workloads:
            undo = cells[(name, "undo")].result
            redo_cell = cells[(name, "redo")]
            redo = redo_cell.result
            result.add_row(
                name,
                **{
                    "redo throughput": redo.throughput / undo.throughput,
                    "redo traffic": redo.pm_writes / max(1, undo.pm_writes),
                    "redirected reads": float(redo_cell.extras["reads_redirected"]),
                },
            )
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""serve-bench: throughput vs offered load with tail-latency percentiles.

The service-regime headline table (docs/SERVICE.md): each service
workload is driven at a ladder of offered loads under several
persistence schemes, and every cell reports both sides of the open-loop
contract - the load actually sustained (``achieved``, requests per
kilocycle) and the arrival-to-durable latency tail (p50/p90/p99/p999
cycles). The knee of the curve is the first row where ``achieved``
falls below ``offered``: beyond it the store is saturated and latency
explodes, which is exactly the regime the ROADMAP's production north
star cares about and the closed-loop figures cannot show.

One table per service workload; rows are ``load/scheme`` cells. All
cells flow through the cached parallel harness, so the table is
byte-identical for any ``--jobs`` value and cache state.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_service_params, resolve_sanitize
from repro.workloads import service_workload_names

SCHEMES = [("ASAP", "asap"), ("ASAP-Redo", "asap_redo"), ("SW", "sw")]

#: offered loads (requests per kilocycle) for the quick and full ladders;
#: chosen so the lowest rung is comfortably sustained and the highest is
#: past the knee for every store
LOADS_QUICK = [1.0, 4.0, 16.0]
LOADS_FULL = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]

#: per-workload load multiplier: New-Order regions are an order of
#: magnitude heavier than KV PUTs, so TPC-C's ladder is scaled down to
#: keep the knee inside the table instead of saturating every rung
LOAD_SCALE = {"SVC_TPCC": 1.0 / 16.0}

COLUMNS = ["offered", "achieved", "p50", "p90", "p99", "p999"]


def _service_workloads(workloads) -> list:
    """Filter a --workloads request down to the service family.

    ``asap-repro all --workloads HM SS`` reaches every experiment with the
    same list; batch names mean nothing here, so unknown/batch names are
    dropped and an empty result falls back to the full service family.
    """
    available = service_workload_names()
    picked = [w for w in (workloads or []) if w in available]
    return picked or available


def plan(quick: bool = True, workloads=None, loads=None, sanitize=None) -> Plan:
    workloads = _service_workloads(workloads)
    loads = list(loads or (LOADS_QUICK if quick else LOADS_FULL))
    sanitize = resolve_sanitize(sanitize)
    config = default_config(quick)
    specs = []
    for name in workloads:
        for load in loads:
            scaled = load * LOAD_SCALE.get(name, 1.0)
            params = default_service_params(quick, offered_load=scaled)
            for label, scheme in SCHEMES:
                specs.append(
                    RunSpec(
                        key=(name, load, label),
                        workload=name,
                        scheme=scheme,
                        config=config,
                        params=params,
                        sanitize=sanitize,
                    )
                )

    def assemble(cells) -> list:
        results = []
        for name in workloads:
            result = ExperimentResult(
                exp_id=f"serve-bench {name}",
                title="Throughput vs offered load (requests/kilocycle) with "
                "arrival-to-durable latency percentiles (cycles)",
                columns=list(COLUMNS),
                notes="open-loop Poisson arrivals; the knee is the first "
                "row where achieved < offered (saturation)",
            )
            for load in loads:
                scaled = load * LOAD_SCALE.get(name, 1.0)
                for label, _scheme in SCHEMES:
                    r = cells[(name, load, label)].result
                    offered, achieved = r.offered_vs_achieved
                    result.add_row(
                        f"{scaled:g}/{label}",
                        offered=offered,
                        achieved=achieved,
                        p50=float(r.p50_cycles),
                        p90=float(r.p90_cycles),
                        p99=float(r.p99_cycles),
                        p999=float(r.p999_cycles),
                    )
            results.append(result)
        return results

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    loads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> list:
    return plan(quick, workloads, loads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Figure 9b: persistent-memory write traffic across schemes.

PM write traffic of SW, HWRedo, and HWUndo normalized to ASAP (lower is
better; ASAP = 1.0). The paper reports ASAP generating 0.39x / 0.62x /
0.52x the traffic of SW / HWRedo / HWUndo, i.e. normalized-to-ASAP bars of
about SW 2.56, HWRedo 1.61, HWUndo 1.92.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once
from repro.workloads import workload_names

PAPER_GEOMEAN = {"SW": 1 / 0.39, "HWRedo": 1 / 0.62, "HWUndo": 1 / 0.52, "ASAP": 1.0}

SCHEMES = [("SW", "sw"), ("HWRedo", "hwredo"), ("HWUndo", "hwundo"), ("ASAP", "asap")]


def run(quick: bool = True, workloads=None) -> ExperimentResult:
    workloads = workloads or workload_names()
    result = ExperimentResult(
        exp_id="Fig. 9b",
        title="PM write traffic normalized to ASAP (lower is better)",
        columns=[label for label, _ in SCHEMES],
        paper={"GeoMean": {k: round(v, 2) for k, v in PAPER_GEOMEAN.items()}},
    )
    for name in workloads:
        config = default_config(quick)
        params = default_params(quick)
        traffic = {
            label: run_once(name, scheme, config, params).pm_writes
            for label, scheme in SCHEMES
        }
        asap = traffic["ASAP"] or 1
        result.add_row(name, **{k: v / asap for k, v in traffic.items()})
    result.geomean_row()
    return result

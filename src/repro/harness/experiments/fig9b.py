"""Figure 9b: persistent-memory write traffic across schemes.

PM write traffic of SW, HWRedo, and HWUndo normalized to ASAP (lower is
better; ASAP = 1.0). The paper reports ASAP generating 0.39x / 0.62x /
0.52x the traffic of SW / HWRedo / HWUndo, i.e. normalized-to-ASAP bars of
about SW 2.56, HWRedo 1.61, HWUndo 1.92.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

PAPER_GEOMEAN = {"SW": 1 / 0.39, "HWRedo": 1 / 0.62, "HWUndo": 1 / 0.52, "ASAP": 1.0}

SCHEMES = [("SW", "sw"), ("HWRedo", "hwredo"), ("HWUndo", "hwundo"), ("ASAP", "asap")]


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        config = default_config(quick)
        params = default_params(quick)
        for label, scheme in SCHEMES:
            specs.append(
                RunSpec(
                    key=(name, label),
                    workload=name,
                    scheme=scheme,
                    config=config,
                    params=params,
                    sanitize=sanitize,
                )
            )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Fig. 9b",
            title="PM write traffic normalized to ASAP (lower is better)",
            columns=[label for label, _ in SCHEMES],
            paper={"GeoMean": {k: round(v, 2) for k, v in PAPER_GEOMEAN.items()}},
        )
        for name in workloads:
            traffic = {
                label: cells[(name, label)].result.pm_writes
                for label, _ in SCHEMES
            }
            asap = traffic["ASAP"] or 1
            result.add_row(name, **{k: v / asap for k, v in traffic.items()})
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

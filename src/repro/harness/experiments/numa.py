"""Section 7.3's NUMA claim, quantified.

"ASAP's low sensitivity to the latency of persist operations also makes
it suitable for NUMA systems where the latency of persist operations may
vary." We mark half the channels as remote and sweep the remote persist
latency; ASAP - whose persist operations are entirely off the critical
path - should stay near NP while the synchronous-commit baselines pay
the remote hop and drain on every region.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize

REMOTE_MULTIPLIERS = [1, 4, 16]
SCHEMES = [("ASAP", "asap"), ("HWUndo", "hwundo"), ("HWRedo", "hwredo")]


def _numa_config(quick: bool, remote_multiplier: float):
    config = default_config(quick)
    num_channels = config.memory.num_channels
    remote = tuple(range(num_channels // 2, num_channels))
    return replace(
        config,
        memory=replace(
            config.memory,
            numa_remote_channels=remote,
            numa_remote_multiplier=remote_multiplier,
        ),
    )


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    workloads = list(workloads or ["BN", "HM", "Q"])
    sanitize = resolve_sanitize(sanitize)
    params = default_params(quick)
    specs = []
    for name in workloads:
        for m in REMOTE_MULTIPLIERS:
            config = _numa_config(quick, m)
            for label, scheme in [("NP", "np")] + SCHEMES:
                specs.append(
                    RunSpec(
                        key=(name, m, label),
                        workload=name,
                        scheme=scheme,
                        config=config,
                        params=params,
                        sanitize=sanitize,
                    )
                )

    def assemble(cells) -> ExperimentResult:
        columns = [f"{label}@{m}x" for m in REMOTE_MULTIPLIERS for label, _ in SCHEMES]
        result = ExperimentResult(
            exp_id="Ext. 2",
            title="NUMA (Sec. 7.3): half the channels remote, persist latency "
            "swept (throughput normalized to NP, higher is better)",
            columns=columns,
            notes="ASAP stays flat as the remote node slows; synchronous "
            "persist waits cross the interconnect on every region",
        )
        for name in workloads:
            row = {}
            for m in REMOTE_MULTIPLIERS:
                np_res = cells[(name, m, "NP")].result
                for label, _ in SCHEMES:
                    res = cells[(name, m, label)].result
                    row[f"{label}@{m}x"] = res.throughput / np_res.throughput
            result.add_row(name, **row)
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Section 7.3's NUMA claim, quantified.

"ASAP's low sensitivity to the latency of persist operations also makes
it suitable for NUMA systems where the latency of persist operations may
vary." We mark half the channels as remote and sweep the remote persist
latency; ASAP - whose persist operations are entirely off the critical
path - should stay near NP while the synchronous-commit baselines pay
the remote hop and drain on every region.
"""

from __future__ import annotations

from dataclasses import replace

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once

REMOTE_MULTIPLIERS = [1, 4, 16]
SCHEMES = [("ASAP", "asap"), ("HWUndo", "hwundo"), ("HWRedo", "hwredo")]


def _numa_config(quick: bool, remote_multiplier: float):
    config = default_config(quick)
    num_channels = config.memory.num_channels
    remote = tuple(range(num_channels // 2, num_channels))
    return replace(
        config,
        memory=replace(
            config.memory,
            numa_remote_channels=remote,
            numa_remote_multiplier=remote_multiplier,
        ),
    )


def run(quick: bool = True, workloads=None) -> ExperimentResult:
    workloads = workloads or ["BN", "HM", "Q"]
    columns = [
        f"{label}@{m}x" for m in REMOTE_MULTIPLIERS for label, _ in SCHEMES
    ]
    result = ExperimentResult(
        exp_id="Ext. 2",
        title="NUMA (Sec. 7.3): half the channels remote, persist latency "
        "swept (throughput normalized to NP, higher is better)",
        columns=columns,
        notes="ASAP stays flat as the remote node slows; synchronous "
        "persist waits cross the interconnect on every region",
    )
    params = default_params(quick)
    for name in workloads:
        cells = {}
        for m in REMOTE_MULTIPLIERS:
            config = _numa_config(quick, m)
            np_res = run_once(name, "np", config, params)
            for label, scheme in SCHEMES:
                res = run_once(name, scheme, config, params)
                cells[f"{label}@{m}x"] = res.throughput / np_res.throughput
        result.add_row(name, **cells)
    result.geomean_row()
    return result

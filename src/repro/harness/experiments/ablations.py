"""Design-choice ablations beyond the paper's own figures.

The paper fixes several constants with one-line justifications; these
sweeps regenerate the evidence on a directed stress pattern (a
"hot-summary" workload: every region interleaves writes to a shared
summary line with writes to streaming data lines - the pattern coalescing
distance, WPQ capacity, and the eviction-spill path all react to):

* **DPO distance** (Sec. 4.6.2): "the number four is empirically
  determined, as no benefit has been observed [at] a distance larger than
  four" - sweep 1/2/4/8 and report DPO initiations and PM write traffic.
* **WPQ size**: Table 2 uses 128 entries/channel - sweep the queue under
  PM-latency pressure and report throughput (backpressure sensitivity).
* **Bloom filter + DRAM spill buffer** (Sec. 5.3): force LLC evictions of
  lines owned by uncommitted regions and verify the spill/reload path
  fires, with the filter screening reloads.

The bespoke machines are built by module-level factories so parallel
``RunSpec`` cells can carry them by reference into worker processes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.params import CacheParams, SystemConfig
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import resolve_sanitize
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.ops import Begin, End, Fence, Read, Write

DISTANCES = [1, 2, 4, 8]
WPQ_SIZES = [2, 4, 8, 32]

_HOT_SUMMARY = "repro.harness.experiments.ablations:_hot_summary_machine"
_FENCE = "repro.harness.experiments.ablations:_fence_machine"


def _hot_summary_machine(
    dpo_distance: int = 4,
    wpq_entries: int = 16,
    pm_latency_multiplier: float = 1.0,
    llc_kb: int = 64,
    bloom_filter_bits: int = 8 * 1024,
    lines_per_region: int = 10,
    regions: int = 60,
    readers: int = 0,
    scheme: str = "asap",
):
    """Regions interleaving hot-summary-line and streaming-line writes."""
    cfg = SystemConfig.small(
        wpq_entries=wpq_entries,
        pm_latency_multiplier=pm_latency_multiplier,
        dpo_distance=dpo_distance,
        bloom_filter_bits=bloom_filter_bits,
    )
    cfg = replace(cfg, l3=CacheParams(llc_kb * 1024, 8, 42))
    machine = Machine(cfg, make_scheme(scheme))
    hot = machine.heap.alloc(64)
    data = machine.heap.alloc(64 * 4096)

    def writer(env):
        for r in range(regions):
            yield Begin()
            for i in range(lines_per_region):
                yield Write(data + 64 * ((r * lines_per_region + i) % 4096), [r, i])
                (v,) = yield Read(hot, 1)
                yield Write(hot, [v + 1])
            yield End()

    def reader(env):
        # stream reads to churn the LLC and reload recently-owned lines
        for r in range(regions * lines_per_region):
            yield Read(data + 64 * (r % 4096), 1)

    machine.spawn(writer, core_id=0)
    for k in range(readers):
        machine.spawn(reader, core_id=1 + k)
    return machine


def _fence_machine(batch: int = 0):
    """Sixty one-line regions with an ``asap_fence`` every ``batch`` of
    them (0 = never fence)."""
    cfg = SystemConfig.small(num_cores=2)
    machine = Machine(cfg, make_scheme("asap"))
    a = machine.heap.alloc(64 * 8)

    def worker(env):
        for i in range(60):
            yield Begin()
            yield Write(a + 64 * (i % 8), [i])
            yield End()
            if batch and (i + 1) % batch == 0:
                yield Fence()

    machine.spawn(worker)
    return machine


def plan_dpo_distance(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    """DPO initiations and PM traffic vs coalescing distance (d=4 = 1.0)."""
    sanitize = resolve_sanitize(sanitize)
    specs = [
        RunSpec(
            key=("dpo", d),
            builder=_HOT_SUMMARY,
            builder_kwargs=(("dpo_distance", d),),
            extras=(("dpos_initiated", "scheme.engine.stats.dpos_initiated"),),
            sanitize=sanitize,
        )
        for d in DISTANCES
    ]

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Abl. 1",
            title="DPO coalescing distance on the hot-summary stress "
            "(normalized to d=4, lower is better)",
            columns=[f"d={d}" for d in DISTANCES],
            notes='paper: "no benefit has been observed [at] a distance larger '
            'than four" (Sec. 4.6.2); the win is d=1 -> d=2..4, then flat',
        )
        dpos = {d: cells[("dpo", d)].extras["dpos_initiated"] for d in DISTANCES}
        traffic = {d: cells[("dpo", d)].result.pm_writes for d in DISTANCES}
        result.add_row(
            "DPOs initiated", **{f"d={d}": dpos[d] / dpos[4] for d in DISTANCES}
        )
        result.add_row(
            "PM writes", **{f"d={d}": traffic[d] / traffic[4] for d in DISTANCES}
        )
        return result

    return Plan(specs, assemble)


def plan_wpq_size(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    """Throughput vs ADR-protected WPQ capacity, per scheme, at 8x PM.

    The interesting finding is a *non*-finding: ASAP sustains its full
    throughput with as few as two persistence-domain entries per channel.
    Asynchronous commit needs no deep battery-backed buffering - the
    contrast the paper draws against eADR/BBB-style designs (Sec. 8),
    which buy the same latency hiding with large batteries.
    """
    sanitize = resolve_sanitize(sanitize)
    schemes = ("asap", "hwundo", "sw")
    specs = [
        RunSpec(
            key=("wpq", scheme, n),
            builder=_HOT_SUMMARY,
            builder_kwargs=(
                ("pm_latency_multiplier", 8),
                ("scheme", scheme),
                ("wpq_entries", n),
            ),
            sanitize=sanitize,
        )
        for scheme in schemes
        for n in WPQ_SIZES
    ]

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Abl. 2",
            title="WPQ capacity at 8x PM latency (throughput normalized to "
            "ASAP at the largest queue; higher is better)",
            columns=[f"wpq={n}" for n in WPQ_SIZES],
            notes="ASAP is flat: asynchronous commit does not rely on deep "
            "ADR buffering (contrast eADR/BBB, Sec. 8)",
        )
        tp = {
            (scheme, n): cells[("wpq", scheme, n)].result.throughput
            for scheme in schemes
            for n in WPQ_SIZES
        }
        base = tp[("asap", WPQ_SIZES[-1])] or 1
        for scheme in schemes:
            result.add_row(
                scheme.upper(),
                **{f"wpq={n}": tp[(scheme, n)] / base for n in WPQ_SIZES},
            )
        return result

    return Plan(specs, assemble)


def plan_bloom(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    """The Sec. 5.3 spill path under LLC pressure.

    A tiny LLC plus a saturated WPQ keeps regions uncommitted while their
    lines are evicted; reloads must recover the OwnerRID via the Bloom
    filter + DRAM buffer. Reported: spills, buffer hits, false positives
    with the paper's 1 KB filter vs a degenerate 1-bit one.
    """
    sanitize = resolve_sanitize(sanitize)
    points = [("1KB filter", 8 * 1024), ("1-bit filter", 1)]
    specs = [
        RunSpec(
            key=("bloom", label),
            builder=_HOT_SUMMARY,
            builder_kwargs=(
                ("wpq_entries", 1),
                ("llc_kb", 4),
                ("bloom_filter_bits", bits),
                ("readers", 1),
            ),
            extras=(
                ("spills", "scheme.engine.spill.spills"),
                ("hits", "scheme.engine.spill.hits"),
                ("false_positives", "scheme.engine.spill.false_positives"),
            ),
            sanitize=sanitize,
        )
        for label, bits in points
    ]

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Abl. 3",
            title="OwnerRID spill/reload path under LLC pressure (Sec. 5.3)",
            columns=["spills", "hits", "false positives"],
        )
        for label, _ in points:
            extras = cells[("bloom", label)].extras
            result.add_row(
                label,
                **{
                    "spills": float(extras["spills"]),
                    "hits": float(extras["hits"]),
                    "false positives": float(extras["false_positives"]),
                },
            )
        return result

    return Plan(specs, assemble)


def plan_fence_batching(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    """Sec. 5.2's guidance, swept: fence per batch of K regions.

    The paper advises calling ``asap_fence()`` once per *batch* of updates
    (e.g. before printing a confirmation) rather than per update. Sweeping
    the batch size shows the cost curve: per-region fencing forfeits most
    of the asynchronous-commit win; even small batches recover it.
    """
    sanitize = resolve_sanitize(sanitize)
    batch_sizes = [1, 4, 16, 0]  # 0 = never fence
    specs = [
        RunSpec(
            key=("fence", k),
            builder=_FENCE,
            builder_kwargs=(("batch", k),),
            sanitize=sanitize,
        )
        for k in batch_sizes
    ]

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Abl. 4",
            title="asap_fence batching (throughput normalized to fence-free, "
            "higher is better)",
            columns=[("no fence" if k == 0 else f"every {k}") for k in batch_sizes],
            notes="Sec. 5.2: fence before the I/O that needs the guarantee, "
            "not after every region",
        )
        tp = {k: cells[("fence", k)].result.throughput for k in batch_sizes}
        base = tp[0] or 1
        result.add_row(
            "throughput",
            **{
                ("no fence" if k == 0 else f"every {k}"): tp[k] / base
                for k in batch_sizes
            },
        )
        return result

    return Plan(specs, assemble)


def _execute(planner, quick, workloads, jobs, cache, progress, sanitize):
    return planner(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )


def run_dpo_distance(
    quick=True, workloads=None, jobs=1, cache=None, progress=None, sanitize=None
) -> ExperimentResult:
    return _execute(plan_dpo_distance, quick, workloads, jobs, cache, progress, sanitize)


def run_wpq_size(
    quick=True, workloads=None, jobs=1, cache=None, progress=None, sanitize=None
) -> ExperimentResult:
    return _execute(plan_wpq_size, quick, workloads, jobs, cache, progress, sanitize)


def run_bloom(
    quick=True, workloads=None, jobs=1, cache=None, progress=None, sanitize=None
) -> ExperimentResult:
    return _execute(plan_bloom, quick, workloads, jobs, cache, progress, sanitize)


def run_fence_batching(
    quick=True, workloads=None, jobs=1, cache=None, progress=None, sanitize=None
) -> ExperimentResult:
    return _execute(plan_fence_batching, quick, workloads, jobs, cache, progress, sanitize)


def plan(quick: bool = True, workloads=None, sanitize=None) -> Plan:
    """All four ablations as one combined matrix (keys are prefixed per
    sub-experiment, so the cells can execute in one shared pool)."""
    subplans = [
        plan_dpo_distance(quick, workloads, sanitize),
        plan_wpq_size(quick, workloads, sanitize),
        plan_bloom(quick, workloads, sanitize),
        plan_fence_batching(quick, workloads, sanitize),
    ]
    specs = [spec for sub in subplans for spec in sub.specs]

    def assemble(cells):
        return [sub.assemble(cells) for sub in subplans]

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
):
    """Run all four ablations; returns the list of results."""
    return plan(quick, workloads, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Figure 7: performance comparison (speedup over SW, higher is better).

Every workload at 64 B and 2 KB data per atomic region, for HWRedo,
HWUndo, ASAP, and NP - all normalized to the SW baseline's throughput.

Paper geomeans (over all workloads and both sizes): HWRedo 1.49x,
HWUndo 1.60x, ASAP 2.25x, NP 2.34x (i.e. NP is only 1.04x over ASAP).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once
from repro.workloads import workload_names

PAPER_GEOMEAN = {"HWRedo": 1.49, "HWUndo": 1.60, "ASAP": 2.25, "NP": 2.34}

SCHEMES = [("HWRedo", "hwredo"), ("HWUndo", "hwundo"), ("ASAP", "asap"), ("NP", "np")]
SIZES = [64, 2048]


def run(quick: bool = True, workloads=None, sizes=None) -> ExperimentResult:
    workloads = workloads or workload_names()
    sizes = sizes or SIZES
    result = ExperimentResult(
        exp_id="Fig. 7",
        title="Speedup over SW (higher is better)",
        columns=["SW"] + [label for label, _ in SCHEMES],
        paper={"GeoMean": PAPER_GEOMEAN},
    )
    for name in workloads:
        for size in sizes:
            config = default_config(quick)
            params = default_params(quick, value_bytes=size)
            sw = run_once(name, "sw", config, params)
            cells = {"SW": 1.0}
            for label, scheme in SCHEMES:
                res = run_once(name, scheme, config, params)
                cells[label] = res.speedup_over(sw)
            result.add_row(f"{name}/{size}B", **cells)
    result.geomean_row()
    return result

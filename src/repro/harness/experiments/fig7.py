"""Figure 7: performance comparison (speedup over SW, higher is better).

Every workload at 64 B and 2 KB data per atomic region, for HWRedo,
HWUndo, ASAP, and NP - all normalized to the SW baseline's throughput.

Paper geomeans (over all workloads and both sizes): HWRedo 1.49x,
HWUndo 1.60x, ASAP 2.25x, NP 2.34x (i.e. NP is only 1.04x over ASAP).
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

PAPER_GEOMEAN = {"HWRedo": 1.49, "HWUndo": 1.60, "ASAP": 2.25, "NP": 2.34}

SCHEMES = [("HWRedo", "hwredo"), ("HWUndo", "hwundo"), ("ASAP", "asap"), ("NP", "np")]
SIZES = [64, 2048]


def plan(quick: bool = True, workloads=None, sizes=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    sizes = list(sizes or SIZES)
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        for size in sizes:
            config = default_config(quick)
            params = default_params(quick, value_bytes=size)
            for label, scheme in [("SW", "sw")] + SCHEMES:
                specs.append(
                    RunSpec(
                        key=(name, size, label),
                        workload=name,
                        scheme=scheme,
                        config=config,
                        params=params,
                        sanitize=sanitize,
                    )
                )

    def assemble(cells) -> ExperimentResult:
        result = ExperimentResult(
            exp_id="Fig. 7",
            title="Speedup over SW (higher is better)",
            columns=["SW"] + [label for label, _ in SCHEMES],
            paper={"GeoMean": PAPER_GEOMEAN},
        )
        for name in workloads:
            for size in sizes:
                sw = cells[(name, size, "SW")].result
                row = {"SW": 1.0}
                for label, _ in SCHEMES:
                    row[label] = cells[(name, size, label)].result.speedup_over(sw)
                result.add_row(f"{name}/{size}B", **row)
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    sizes=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, sizes, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Fig. 10 companion: what the non-blocking memory system is worth.

For each PM latency multiplier (the Fig. 10 x-axis) this experiment runs
ASAP and ASAP-Redo twice - once on the blocking comparator (one MSHR per
cache file, so a second outstanding miss stalls its core, plus lockstep
WPQ drains serialized across channels by the write-bus arbiter) and once
on the default non-blocking hierarchy (16 MSHRs per file with secondary
same-line misses merging, channels draining concurrently). Each cell is
the blocking machine's cycles-per-region over the non-blocking machine's:
the latency recovered by miss- and drain-level memory parallelism.

Expected shape: the ratio grows with the PM multiplier. The longer a
fetch or a drain occupies the memory system, the more cycles serializing
behind it costs - exactly the overlap ASAP's asynchronous persistence
exists to exploit, which the old always-resident cache model silently
gave away for free (see docs/MEMORY.md).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

MULTIPLIERS = [1, 2, 4, 16]
SCHEMES = [("ASAP", "asap"), ("ASAP-Redo", "asap_redo")]


def _variants(quick: bool, multiplier: float):
    """(label, config) pairs for one latency point: blocking vs default."""
    base = default_config(quick, pm_latency_multiplier=multiplier)
    blocking = dc_replace(
        base,
        memory=dc_replace(
            base.memory, mshrs_per_cache=1, overlapped_drains=False
        ),
    )
    return [("blk", blocking), ("ovl", base)]


def plan(quick: bool = True, workloads=None, multipliers=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    multipliers = list(multipliers or MULTIPLIERS)
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        for m in multipliers:
            params = default_params(quick)
            for mode, config in _variants(quick, m):
                for label, scheme in SCHEMES:
                    specs.append(
                        RunSpec(
                            key=(name, m, label, mode),
                            workload=name,
                            scheme=scheme,
                            config=config,
                            params=params,
                            sanitize=sanitize,
                        )
                    )

    def assemble(cells) -> ExperimentResult:
        columns = [f"{label}@{m}x" for m in multipliers for label, _ in SCHEMES]
        result = ExperimentResult(
            exp_id="Fig. 10 overlap",
            title="Blocking-over-non-blocking cycles per region "
            "(higher = more latency recovered by MLP)",
            columns=columns,
            notes="blocking = 1 MSHR/cache + serialized channel drains; "
            "non-blocking = 16 MSHRs + overlapped drains (default); "
            "the gap should widen as PM latency grows",
        )
        for name in workloads:
            row = {}
            for m in multipliers:
                for label, _ in SCHEMES:
                    blk = cells[(name, m, label, "blk")].result
                    ovl = cells[(name, m, label, "ovl")].result
                    row[f"{label}@{m}x"] = (
                        blk.cycles_per_region / ovl.cycles_per_region
                    )
            result.add_row(name, **row)
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    multipliers=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, multipliers, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

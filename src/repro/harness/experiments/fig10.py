"""Figure 10: sensitivity of throughput to persistent-memory latency.

Throughput normalized to NP at the same latency multiplier, for PM access
latencies of 1x, 2x, 4x, and 16x battery-backed DRAM.

The paper's shape: NP is flat at 1.0 by construction; ASAP stays close to
NP across the sweep; HWUndo degrades fastest (synchronous LPOs *and* DPOs
on the critical path); HWRedo degrades more slowly than HWUndo and
overtakes it at high latency.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import Plan, RunSpec
from repro.harness.runner import default_config, default_params, resolve_sanitize
from repro.workloads import workload_names

MULTIPLIERS = [1, 2, 4, 16]
SCHEMES = [("ASAP", "asap"), ("HWUndo", "hwundo"), ("HWRedo", "hwredo")]


def plan(quick: bool = True, workloads=None, multipliers=None, sanitize=None) -> Plan:
    workloads = list(workloads or workload_names())
    multipliers = list(multipliers or MULTIPLIERS)
    sanitize = resolve_sanitize(sanitize)
    specs = []
    for name in workloads:
        for m in multipliers:
            config = default_config(quick, pm_latency_multiplier=m)
            params = default_params(quick)
            for label, scheme in [("NP", "np")] + SCHEMES:
                specs.append(
                    RunSpec(
                        key=(name, m, label),
                        workload=name,
                        scheme=scheme,
                        config=config,
                        params=params,
                        sanitize=sanitize,
                    )
                )

    def assemble(cells) -> ExperimentResult:
        columns = [f"{label}@{m}x" for m in multipliers for label, _ in SCHEMES]
        result = ExperimentResult(
            exp_id="Fig. 10",
            title="Throughput normalized to NP vs PM latency (higher is better)",
            columns=columns,
            notes="paper shape: ASAP tracks NP; HWUndo degrades fastest; "
            "HWRedo crosses over HWUndo at high latency",
        )
        for name in workloads:
            row = {}
            for m in multipliers:
                np_res = cells[(name, m, "NP")].result
                for label, _ in SCHEMES:
                    res = cells[(name, m, label)].result
                    row[f"{label}@{m}x"] = res.throughput / np_res.throughput
            result.add_row(name, **row)
        result.geomean_row()
        return result

    return Plan(specs, assemble)


def run(
    quick: bool = True,
    workloads=None,
    multipliers=None,
    jobs: int = 1,
    cache=None,
    progress=None,
    sanitize=None,
) -> ExperimentResult:
    return plan(quick, workloads, multipliers, sanitize).execute(
        jobs=jobs, cache=cache, progress=progress
    )

"""Figure 10: sensitivity of throughput to persistent-memory latency.

Throughput normalized to NP at the same latency multiplier, for PM access
latencies of 1x, 2x, 4x, and 16x battery-backed DRAM.

The paper's shape: NP is flat at 1.0 by construction; ASAP stays close to
NP across the sweep; HWUndo degrades fastest (synchronous LPOs *and* DPOs
on the critical path); HWRedo degrades more slowly than HWUndo and
overtakes it at high latency.
"""

from __future__ import annotations

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import default_config, default_params, run_once
from repro.workloads import workload_names

MULTIPLIERS = [1, 2, 4, 16]
SCHEMES = [("ASAP", "asap"), ("HWUndo", "hwundo"), ("HWRedo", "hwredo")]


def run(quick: bool = True, workloads=None, multipliers=None) -> ExperimentResult:
    workloads = workloads or workload_names()
    multipliers = multipliers or MULTIPLIERS
    columns = [
        f"{label}@{m}x" for m in multipliers for label, _ in SCHEMES
    ]
    result = ExperimentResult(
        exp_id="Fig. 10",
        title="Throughput normalized to NP vs PM latency (higher is better)",
        columns=columns,
        notes="paper shape: ASAP tracks NP; HWUndo degrades fastest; "
        "HWRedo crosses over HWUndo at high latency",
    )
    for name in workloads:
        cells = {}
        for m in multipliers:
            config = default_config(quick, pm_latency_multiplier=m)
            params = default_params(quick)
            np_res = run_once(name, "np", config, params)
            for label, scheme in SCHEMES:
                res = run_once(name, scheme, config, params)
                cells[f"{label}@{m}x"] = res.throughput / np_res.throughput
        result.add_row(name, **cells)
    result.geomean_row()
    return result

"""Parallel cell execution and content-addressed result caching.

Every experiment in :mod:`repro.harness.experiments` is a matrix of
independent (workload x scheme x size) simulation *cells*. Each module
declares its matrix as a list of :class:`RunSpec` and an ``assemble``
callback that turns the finished cells back into an
:class:`~repro.harness.experiment.ExperimentResult` (see :class:`Plan`).

:func:`execute` runs the cells - serially with ``jobs=1`` (bit-identical
to the historical inline runner) or fanned out across a
``ProcessPoolExecutor`` - and :class:`ResultCache` memoises finished
cells on disk, keyed by the content hash of everything that determines a
cell's outcome (workload, scheme, config, params, sanitize flag, package
version, and a digest of the simulator sources). Because the cache is
content-addressed, identical cells are shared *across* experiments:
Fig. 7 and Fig. 8 both run ``HM/asap`` on the same machine and only pay
for it once.

Specs must be fully picklable: they cross the process boundary, and the
sanitize flag travels inside each spec precisely because a module global
set in the parent does not exist in the workers.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import repro
from repro.common.errors import ConfigError
from repro.common.params import SystemConfig
from repro.sim.stats import RunResult
from repro.workloads import WorkloadParams

#: progress callback: (cells finished, total cells, spec, its CellResult)
ProgressFn = Callable[[int, int, "RunSpec", "CellResult"], None]


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment's run matrix.

    Two flavours:

    * **workload specs** - ``workload`` (one Table 3 name, or a tuple of
      names for co-run cells) plus ``scheme``/``config``/``params``; the
      cell builds the machine via
      :func:`repro.harness.runner.build_machine`.
    * **builder specs** - ``builder`` names a module-level factory as
      ``"package.module:callable"`` invoked with ``builder_kwargs``; used
      by experiments that construct bespoke machines (the ablation
      stress patterns). The factory must be importable from a worker
      process, which is why it is carried by reference, not as a closure.

    ``extras`` harvests scheme-internal counters the
    :class:`~repro.sim.stats.RunResult` does not carry: each
    ``(name, "attr.path")`` pair is resolved against the finished machine
    (e.g. ``("dpos", "scheme.engine.stats.dpos_initiated")``) and lands
    in :attr:`CellResult.extras`.
    """

    key: Tuple
    workload: Union[str, Tuple[str, ...]] = ""
    scheme: str = ""
    config: Optional[SystemConfig] = None
    params: Optional[WorkloadParams] = None
    sanitize: bool = False
    #: run on the payload-free fast simulation core; ignored (reference
    #: machine) when ``sanitize`` is set, since observers need the slow path
    fast: bool = False
    builder: str = ""
    builder_kwargs: Tuple[Tuple[str, object], ...] = ()
    extras: Tuple[Tuple[str, str], ...] = ()

    def describe(self) -> str:
        """Short human-readable cell label for progress output."""
        if self.builder:
            kwargs = ", ".join(f"{k}={v}" for k, v in self.builder_kwargs)
            return f"{self.builder.rsplit(':', 1)[-1]}({kwargs})"
        wl = (
            "+".join(self.workload)
            if isinstance(self.workload, tuple)
            else self.workload
        )
        size = f"/{self.params.value_bytes}B" if self.params is not None else ""
        return f"{wl}{size}:{self.scheme}"

    def cache_token(self) -> str:
        """Content hash of everything that determines this cell's result.

        The ``key`` is deliberately *excluded*: it only names the cell
        within one experiment, so identical cells hit the same cache
        entry across experiments.
        """
        ident = (
            repro.__version__,
            simulator_fingerprint(),
            self.workload,
            self.scheme,
            repr(self.config),
            repr(self.params),
            self.sanitize,
            self.fast,
            self.builder,
            repr(self.builder_kwargs),
            repr(self.extras),
        )
        return hashlib.sha256(repr(ident).encode("utf-8")).hexdigest()


@dataclass
class CellResult:
    """One finished cell: the run's stats plus harvested extras."""

    key: Tuple
    result: RunResult
    extras: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: True when this result came from the on-disk cache, not a fresh run
    cached: bool = False


_FINGERPRINT: Optional[str] = None


#: orchestration-only subpackages excluded from the fingerprint: editing
#: them cannot change a cell's result, so cached cells stay valid
_NON_SIMULATOR_DIRS = ("harness", "explore")


def simulator_fingerprint() -> str:
    """Digest of the simulator sources (everything under ``repro`` except
    the harness and explore layers). Any change to the machine model
    invalidates every cached result; editing an experiment module or a
    sweep driver does not - that is what makes a warm-cache
    ``asap-repro all`` near-instant after touching one experiment."""
    global _FINGERPRINT
    if _FINGERPRINT is None:
        pkg = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(pkg):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d != "__pycache__"
                and not (dirpath == pkg and d in _NON_SIMULATOR_DIRS)
            )
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                digest.update(os.path.relpath(path, pkg).encode("utf-8"))
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _harvest(machine, path: str):
    obj = machine
    for part in path.split("."):
        obj = getattr(obj, part)
    return obj


def run_cell(spec: RunSpec) -> CellResult:
    """Execute one cell; runs in the parent (``jobs=1``) or a worker."""
    from repro.harness import runner

    start = time.perf_counter()
    if spec.builder:
        mod_name, _, fn_name = spec.builder.partition(":")
        builder = getattr(importlib.import_module(mod_name), fn_name)
        machine = builder(**dict(spec.builder_kwargs))
    else:
        machine = runner.build_machine(
            spec.workload,
            spec.scheme,
            spec.config,
            spec.params,
            fast=spec.fast and not spec.sanitize,
        )
    if spec.sanitize:
        from repro.analysis.sanitizer import Sanitizer

        Sanitizer().attach(machine)
    result = machine.run()
    extras = {name: _harvest(machine, path) for name, path in spec.extras}
    return CellResult(
        key=spec.key,
        result=result,
        extras=extras,
        wall_seconds=time.perf_counter() - start,
    )


class ResultCache:
    """Content-addressed on-disk cache of :class:`CellResult` pickles.

    Entries live at ``<root>/<token[:2]>/<token>.pkl``; writes are atomic
    (temp file + rename) so concurrent harness invocations can share a
    cache directory. Unreadable or stale entries count as misses.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(os.path.expanduser(root))
        self.hits = 0
        self.misses = 0

    @staticmethod
    def default_dir() -> str:
        env = os.environ.get("ASAP_CACHE_DIR")
        if env:
            return env
        xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        return os.path.join(xdg, "asap-repro")

    def _path(self, token: str) -> str:
        return os.path.join(self.root, token[:2], token + ".pkl")

    def get(self, spec: RunSpec) -> Optional[CellResult]:
        path = self._path(spec.cache_token())
        try:
            with open(path, "rb") as fh:
                cell = pickle.load(fh)
        except Exception:
            # missing, corrupt, or pickled against moved/renamed classes -
            # all equivalent to a miss; the cell is simply re-run
            self.misses += 1
            return None
        if not isinstance(cell, CellResult):
            self.misses += 1
            return None
        self.hits += 1
        # the stored key belongs to whichever experiment filled the entry;
        # re-label for the requesting spec
        return CellResult(
            key=spec.key,
            result=cell.result,
            extras=cell.extras,
            wall_seconds=cell.wall_seconds,
            cached=True,
        )

    def put(self, spec: RunSpec, cell: CellResult) -> None:
        path = self._path(spec.cache_token())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(cell, fh)
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def execute(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[Tuple, CellResult]:
    """Run every spec; return ``{spec.key: CellResult}`` in spec order.

    ``jobs=1`` runs cells serially in-process, in list order - the
    historical behaviour. ``jobs>1`` fans uncached cells out across a
    process pool; completion order is nondeterministic but the returned
    mapping (and therefore everything assembled from it) is ordered by
    the spec list, so results are identical for any job count.
    """
    specs = list(specs)
    if len({s.key for s in specs}) != len(specs):
        raise ConfigError("duplicate RunSpec keys in one experiment plan")
    total = len(specs)
    done = 0
    results: Dict[Tuple, CellResult] = {}

    def finish(spec: RunSpec, cell: CellResult) -> None:
        nonlocal done
        results[spec.key] = cell
        done += 1
        if progress is not None:
            progress(done, total, spec, cell)

    pending: List[RunSpec] = []
    for spec in specs:
        cell = cache.get(spec) if cache is not None else None
        if cell is not None:
            finish(spec, cell)
        else:
            pending.append(spec)

    if jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            cell = run_cell(spec)
            if cache is not None:
                cache.put(spec, cell)
            finish(spec, cell)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(run_cell, spec): spec for spec in pending}
            for future in as_completed(futures):
                spec = futures[future]
                cell = future.result()
                if cache is not None:
                    cache.put(spec, cell)
                finish(spec, cell)

    return {spec.key: results[spec.key] for spec in specs}


@dataclass
class Plan:
    """An experiment's declared run matrix plus its assembly step.

    ``assemble`` receives the ``{key: CellResult}`` mapping produced by
    :func:`execute` and returns the module's
    :class:`~repro.harness.experiment.ExperimentResult` (or a list of
    them). It runs in the parent process, so it may close over whatever
    plan-time state it likes.
    """

    specs: List[RunSpec]
    assemble: Callable[[Dict[Tuple, CellResult]], object]

    def execute(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
    ):
        return self.assemble(
            execute(self.specs, jobs=jobs, cache=cache, progress=progress)
        )

"""Crash-consistency validation as a harness command.

``asap-repro crashtest`` sweeps crash points over a workload run and
checks three things at every point:

1. the recovered PM image equals the commit oracle's durable image
   (atomicity + durability + ordering),
2. the workload's own structure validators accept the recovered image,
3. recovery is deterministic (running it twice yields the same image).

This is the library's answer to "how do I know the scheme is actually
crash consistent on *my* machine configuration?" - the same machinery the
test suite uses, exposed operationally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.recovery import crash_machine, recover, verify_recovery
from repro.sim.machine import Machine
from repro.workloads import WorkloadParams, get_workload


@dataclass
class CrashTestReport:
    workload: str
    scheme: str
    points_checked: int = 0
    points_with_rollback: int = 0
    regions_rolled_back: int = 0
    #: total cycles of the deterministic reference run the points divide
    total_cycles: int = 0
    #: the exact crash cycles swept, in order - the report is a repro
    #: recipe: ``crash_machine(m, at_cycle=c)`` for any listed ``c``
    crash_cycles: List[int] = field(default_factory=list)
    #: schedules exercised (the crashtest replays one deterministic
    #: interleaving; the fuzzer varies this axis - see docs/FUZZING.md)
    schedules_swept: int = 1
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "CONSISTENT" if self.ok else f"{len(self.failures)} FAILURES"
        if not self.crash_cycles:
            span = "no crash points"
        elif len(self.crash_cycles) <= 6:
            span = f"cycles {self.crash_cycles}"
        else:
            head = ", ".join(str(c) for c in self.crash_cycles[:3])
            span = (
                f"cycles [{head}, ... {self.crash_cycles[-1]}] "
                f"({len(self.crash_cycles)} points)"
            )
        return (
            f"{self.workload}/{self.scheme}: {status} over "
            f"{self.points_checked} crash points at {span} of a "
            f"{self.total_cycles}-cycle run, {self.schedules_swept} "
            f"deterministic schedule "
            f"({self.points_with_rollback} caught in-flight regions, "
            f"{self.regions_rolled_back} regions rolled back in total)"
        )


def run_crashtest(
    workload: str = "HM",
    scheme: str = "asap",
    points: int = 12,
    params: Optional[WorkloadParams] = None,
    config: Optional[SystemConfig] = None,
) -> CrashTestReport:
    """Sweep ``points`` evenly-spaced crash points over one workload run."""
    params = params or WorkloadParams(num_threads=3, ops_per_thread=12, setup_items=16)
    config = config or SystemConfig.small()

    def build():
        machine = Machine(config, make_scheme(scheme))
        wl = get_workload(workload, params)
        wl.install(machine)
        return machine, wl

    report = CrashTestReport(workload=workload, scheme=scheme)
    total = build()[0].run().cycles
    report.total_cycles = total
    for i in range(points):
        cycle = max(1, ((i + 1) * total) // (points + 1))
        report.crash_cycles.append(cycle)
        machine, wl = build()
        state = crash_machine(machine, at_cycle=cycle)
        image, rec_report = recover(state)
        image2, _ = recover(state)  # determinism probe
        report.points_checked += 1
        if state.log_kind == "undo" and rec_report.undone_count:
            report.points_with_rollback += 1
            report.regions_rolled_back += rec_report.undone_count
        verdict = verify_recovery(machine, image)
        if not verdict.ok:
            report.failures.append(f"@{cycle}: {verdict.explain()}")
            continue
        errors = wl.validate_image(image)
        if errors:
            report.failures.append(f"@{cycle}: structure invalid: {errors[:3]}")
        if sorted(image.items()) != sorted(image2.items()):
            report.failures.append(f"@{cycle}: recovery nondeterministic")
    return report

"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    asap-repro fig7                # one experiment, quick mode
    asap-repro all --full --jobs 8 # everything, full machine, 8 workers
    asap-repro fig7 --no-cache     # force every cell to re-run
    asap-repro serve-bench         # open-loop tail latency vs offered load
    asap-repro config              # dump the Table 2 configuration
    asap-repro workloads           # list the Table 3 benchmarks
    python -m repro.harness.run fig9b

Every experiment is a matrix of independent simulation cells; ``--jobs N``
fans them out across worker processes and the on-disk result cache (on by
default; see ``--cache-dir``/``--no-cache``) memoises finished cells, so
re-running ``all`` recomputes only what changed. Results are identical
for any job count and cache state - see docs/HARNESS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.params import SystemConfig
from repro.harness.experiments import REGISTRY
from repro.harness.parallel import ResultCache
from repro.workloads import WorkloadParams, get_workload, workload_names


def _dump_config() -> str:
    cfg = SystemConfig()
    lines = ["Table 2: system configuration"]
    lines.append(f"  cores: {cfg.num_cores}")
    for name, c in (("L1", cfg.l1), ("L2", cfg.l2), ("L3", cfg.l3)):
        lines.append(
            f"  {name}: {c.size_bytes // 1024} KB, {c.assoc}-way, {c.latency} cycles"
        )
    m = cfg.memory
    lines.append(
        f"  memory: {m.num_controllers} MCs x {m.channels_per_controller} "
        f"channels, {m.wpq_entries} WPQ entries/channel"
    )
    a = cfg.asap
    lines.append(
        f"  ASAP: CL List {a.cl_list_entries} entries/core ({a.clptr_slots} "
        f"CLPtrs), Dependence List {a.dependence_list_entries}/channel "
        f"({a.dep_slots} Deps), LH-WPQ {a.lh_wpq_entries}/channel, "
        f"Bloom {a.bloom_filter_bits // 8} B/channel"
    )
    return "\n".join(lines)


def _dump_workloads() -> str:
    from repro.workloads import service_workload_names

    lines = ["Table 3: benchmarks"]
    for name in workload_names():
        wl = get_workload(name, WorkloadParams())
        lines.append(f"  {name:<6s} {wl.description}")
    lines.append("service workloads (open-loop; see serve-bench)")
    for name in service_workload_names():
        wl = get_workload(name)
        lines.append(f"  {name:<9s} {wl.description}")
    return "\n".join(lines)


def _ratio(numerator: float, denominator: float, suffix: str = "x") -> str:
    """``num/den`` to two decimals, or "n/a" when the denominator is zero
    (a quick run can legitimately complete no regions under one scheme)."""
    if not denominator:
        return "n/a"
    return f"{numerator / denominator:.2f}{suffix}"


def _make_progress(exp_name: str, enabled: bool):
    """Per-cell progress/timing printer (stderr keeps tables clean)."""
    if not enabled:
        return None

    def progress(done, total, spec, cell):
        status = "cached" if cell.cached else f"{cell.wall_seconds:.2f}s"
        print(
            f"  [{exp_name} {done}/{total}] {spec.describe()} ({status})",
            file=sys.stderr,
            flush=True,
        )

    return progress


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        # The fuzzer owns its flags (--seed/--budget/--points/...); hand
        # the rest of the command line straight to it.
        from repro.harness.fuzz import main as fuzz_main

        return fuzz_main(list(argv[1:]))
    if argv and argv[0] == "explore":
        # Likewise the design-space explorer (--space/--axis/--driver/...).
        from repro.explore.cli import main as explore_main

        return explore_main(list(argv[1:]))
    if argv and argv[0] == "recover":
        # And the explainable-recovery replayer (--case/--explain/--json/...).
        from repro.recovery.explain import main as recover_main

        return recover_main(list(argv[1:]))
    if argv and argv[0] == "analyze":
        # And the analysis front end (lint/sanitize/races/rules), the same
        # one behind `python -m repro.analysis`.
        from repro.analysis.__main__ import main as analyze_main

        return analyze_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="asap-repro",
        description="Regenerate the ASAP paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        help=f"one of {sorted(REGISTRY)}, 'all', 'config', 'workloads', "
        "'summary', 'crashtest', 'fuzz' (see 'fuzz --help'), "
        "'explore' (see 'explore --help'), 'recover' "
        "(see 'recover --help'), or 'analyze' (see 'analyze --help')",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full Table 2 machine and workload sizes (slow)",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="restrict to these Table 3 workloads",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="run independent simulation cells across N worker processes "
        "(default 1: serial, bit-identical rows either way)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-cache directory (default: $ASAP_CACHE_DIR, else "
        "~/.cache/asap-repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (every cell re-runs)",
    )
    parser.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-cell progress/timing lines on stderr",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also dump every experiment's rows as JSON to FILE",
    )
    parser.add_argument(
        "--csv-dir",
        metavar="DIR",
        default=None,
        help="also write one CSV per experiment into DIR",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run every simulation with the runtime invariant sanitizer "
        "attached (raises on the first WAL-contract violation; see "
        "python -m repro.analysis rules)",
    )
    args = parser.parse_args(argv)

    if args.sanitize:
        from repro.harness import runner

        runner.set_sanitize_default(True)

    jobs = max(1, args.jobs)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or ResultCache.default_dir())

    if args.experiment == "config":
        print(_dump_config())
        return 0
    if args.experiment == "workloads":
        print(_dump_workloads())
        return 0
    if args.experiment == "summary":
        from repro.harness.experiments import fig7, fig8, fig9b
        from repro.area import estimate_area

        workloads = args.workloads or ["BN", "HM", "Q"]
        common = dict(quick=not args.full, workloads=workloads, jobs=jobs, cache=cache)
        f7 = fig7.run(sizes=[64], **common)
        f8 = fig8.run(sizes=[64], **common)
        f9 = fig9b.run(**common)
        area_pct = estimate_area().total_overhead * 100
        gm7, gm8, gm9 = f7.rows["GeoMean"], f8.rows["GeoMean"], f9.rows["GeoMean"]
        print("headline claims (paper -> measured, geomean over "
              f"{', '.join(workloads)}):")
        print(f"  speedup over SW:        ASAP 2.25x -> {gm7['ASAP']:.2f}x")
        print(f"  vs no-persistence:      0.96x NP   -> "
              f"{_ratio(gm7['ASAP'], gm7['NP'], 'x NP')}")
        print(f"  region latency vs NP:   1.08x      -> {gm8['ASAP']:.2f}x")
        print(f"  traffic vs HWUndo:      0.52x      -> {_ratio(1, gm9['HWUndo'])}")
        print(f"  traffic vs HWRedo:      0.62x      -> {_ratio(1, gm9['HWRedo'])}")
        print(f"  area overhead:          ~2.5%      -> {area_pct:.2f}%")
        return 0
    if args.experiment == "crashtest":
        from repro.harness.crashtest import run_crashtest

        targets = args.workloads or workload_names()
        failed = False
        for name in targets:
            for scheme in ("asap", "asap_redo"):
                report = run_crashtest(workload=name, scheme=scheme)
                print(report.summary())
                failed = failed or not report.ok
        return 1 if failed else 0

    names = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    collected = {}
    for name in names:
        if name not in REGISTRY:
            parser.error(f"unknown experiment {name!r}; choose from {sorted(REGISTRY)}")
        start = time.time()
        hits_before = cache.hits if cache else 0
        kwargs = dict(
            quick=not args.full,
            jobs=jobs,
            cache=cache,
            progress=_make_progress(name, not args.no_progress),
        )
        if args.workloads:
            kwargs["workloads"] = args.workloads
        result = REGISTRY[name](**kwargs)
        results = result if isinstance(result, list) else [result]
        for r in results:
            print(r.to_table())
            print()
        collected[name] = [r.to_dict() for r in results]
        if args.csv_dir:
            import pathlib

            out = pathlib.Path(args.csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            for i, r in enumerate(results):
                suffix = f"_{i}" if len(results) > 1 else ""
                (out / f"{name}{suffix}.csv").write_text(r.to_csv())
        cached_note = (
            f", {cache.hits - hits_before} cells from cache" if cache else ""
        )
        print(f"  [{time.time() - start:.1f}s{cached_note}]\n")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

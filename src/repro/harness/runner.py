"""Single-run plumbing shared by every experiment."""

from __future__ import annotations

from typing import Optional, Union

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.stats import RunResult
from repro.workloads import WorkloadParams, get_workload

#: process-wide default for ``run_once(..., sanitize=None)``; the harness
#: CLI's ``--sanitize`` flag flips this so every experiment run validates
#: the WAL contract as it measures (see repro.analysis.sanitizer).
SANITIZE_DEFAULT: bool = False


def set_sanitize_default(enabled: bool) -> None:
    """Enable/disable the runtime invariant sanitizer for subsequent runs."""
    global SANITIZE_DEFAULT
    SANITIZE_DEFAULT = enabled


def default_config(
    quick: bool = True,
    pm_latency_multiplier: float = 1.0,
    **asap_overrides,
) -> SystemConfig:
    """The benchmarking configuration.

    ``quick`` selects the scaled-down machine (smaller caches/WPQs so the
    paper's queueing effects appear within short runs); ``quick=False``
    uses the full Table 2 machine.
    """
    if quick:
        return SystemConfig.small(
            num_cores=8,
            wpq_entries=16,
            pm_latency_multiplier=pm_latency_multiplier,
            **asap_overrides,
        )
    cfg = SystemConfig()
    cfg = cfg.with_pm_multiplier(pm_latency_multiplier)
    if asap_overrides:
        from dataclasses import replace

        cfg = cfg.with_asap(replace(cfg.asap, **asap_overrides))
    return cfg


def default_params(quick: bool = True, value_bytes: int = 64) -> WorkloadParams:
    if quick:
        return WorkloadParams(
            num_threads=4, ops_per_thread=40, value_bytes=value_bytes, setup_items=48
        )
    return WorkloadParams(
        num_threads=8, ops_per_thread=120, value_bytes=value_bytes, setup_items=128
    )


def run_once(
    workload: str,
    scheme: str,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    sanitize: Union[bool, object, None] = None,
) -> RunResult:
    """Build a machine, install one workload under one scheme, run it.

    Args:
        sanitize: None follows :data:`SANITIZE_DEFAULT`; True attaches a
            fresh raising :class:`~repro.analysis.Sanitizer`; a
            ``Sanitizer`` instance is attached as-is (so callers can
            collect violations instead of raising).
    """
    config = config or default_config()
    params = params or default_params()
    machine = Machine(config, make_scheme(scheme))
    get_workload(workload, params).install(machine)
    if sanitize is None:
        sanitize = SANITIZE_DEFAULT
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        sanitizer = sanitize if isinstance(sanitize, Sanitizer) else Sanitizer()
        sanitizer.attach(machine)
    return machine.run()

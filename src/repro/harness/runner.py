"""Single-run plumbing shared by every experiment."""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.common.params import SystemConfig
from repro.persist import make_scheme
from repro.sim.machine import Machine
from repro.sim.stats import RunResult
from repro.workloads import WorkloadParams, get_workload

#: process-local fallback for ``run_once(..., sanitize=None)``. This is a
#: convenience shim only: experiment plans resolve it once (in the parent
#: process) and carry the resolved flag on each
#: :class:`~repro.harness.parallel.RunSpec`, because a module global set
#: here does not propagate to ``--jobs N`` worker processes.
_SANITIZE_DEFAULT: bool = False


def set_sanitize_default(enabled: bool) -> None:
    """Enable/disable the runtime invariant sanitizer for subsequent runs.

    Thin shim over a process-local default; parallel execution relies on
    the sanitize flag carried explicitly by each ``RunSpec``.
    """
    global _SANITIZE_DEFAULT
    _SANITIZE_DEFAULT = enabled


def sanitize_default() -> bool:
    """The current process-local sanitize default."""
    return _SANITIZE_DEFAULT


def resolve_sanitize(sanitize: Optional[bool]) -> bool:
    """Resolve a ``sanitize=None`` request against the process default."""
    return sanitize_default() if sanitize is None else bool(sanitize)


def default_config(
    quick: bool = True,
    pm_latency_multiplier: float = 1.0,
    **asap_overrides,
) -> SystemConfig:
    """The benchmarking configuration.

    ``quick`` selects the scaled-down machine (smaller caches/WPQs so the
    paper's queueing effects appear within short runs); ``quick=False``
    uses the full Table 2 machine.
    """
    if quick:
        return SystemConfig.small(
            num_cores=8,
            wpq_entries=16,
            pm_latency_multiplier=pm_latency_multiplier,
            **asap_overrides,
        )
    cfg = SystemConfig()
    cfg = cfg.with_pm_multiplier(pm_latency_multiplier)
    if asap_overrides:
        from dataclasses import replace

        cfg = cfg.with_asap(replace(cfg.asap, **asap_overrides))
    return cfg


def default_params(quick: bool = True, value_bytes: int = 64) -> WorkloadParams:
    if quick:
        return WorkloadParams(
            num_threads=4, ops_per_thread=40, value_bytes=value_bytes, setup_items=48
        )
    return WorkloadParams(
        num_threads=8, ops_per_thread=120, value_bytes=value_bytes, setup_items=128
    )


def default_service_params(quick: bool = True, **overrides):
    """Service-family defaults (open-loop request workloads).

    Quick mode keeps the request count small enough for CI smokes while
    still queueing visibly once ``offered_load`` passes the knee.
    """
    from repro.workloads.service import ServiceParams

    base = (
        dict(num_threads=4, requests=96, setup_items=48)
        if quick
        else dict(num_threads=8, requests=1024, setup_items=128)
    )
    base.update(overrides)
    return ServiceParams(**base)


def build_machine(
    workload: Union[str, Sequence[str]],
    scheme: str,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    fast: bool = False,
) -> Machine:
    """Build a machine with one scheme and one (or several co-run)
    workloads installed. Accepts a single Table 3 name or a sequence of
    names (co-run experiments install several on disjoint heaps)."""
    config = config or default_config()
    params = params or default_params()
    machine = Machine(config, make_scheme(scheme), fast_path=fast)
    names = (workload,) if isinstance(workload, str) else tuple(workload)
    for name in names:
        get_workload(name, params).install(machine)
    return machine


def run_once(
    workload: str,
    scheme: str,
    config: Optional[SystemConfig] = None,
    params: Optional[WorkloadParams] = None,
    sanitize: Union[bool, object, None] = None,
    fast: bool = False,
) -> RunResult:
    """Build a machine, install one workload under one scheme, run it.

    Args:
        sanitize: None follows the process-local default (see
            :func:`set_sanitize_default`); True attaches a fresh raising
            :class:`~repro.analysis.Sanitizer`; a ``Sanitizer`` instance is
            attached as-is (so callers can collect violations instead of
            raising).
        fast: use the payload-free fast simulation core. Sanitizing forces
            the reference machine - the sanitizer is an observer, and the
            fast core's entry condition is "no observer, no crash window"
            (docs/PERF.md).
    """
    if sanitize is None:
        sanitize = sanitize_default()
    if sanitize:
        fast = False  # observers require the reference (slow) path
    machine = build_machine(workload, scheme, config, params, fast=fast)
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer

        sanitizer = sanitize if isinstance(sanitize, Sanitizer) else Sanitizer()
        sanitizer.attach(machine)
    return machine.run()

"""Experiment result containers and table rendering."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for every figure)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    ``rows`` maps a row label (workload name or "GeoMean") to a mapping of
    column label -> value. ``paper`` holds the paper's reference values for
    the same cells, where the paper states them.
    """

    exp_id: str
    title: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    paper: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, label: str, **cells: float) -> None:
        self.rows[label] = dict(cells)

    def geomean_row(self, labels: Optional[List[str]] = None) -> Dict[str, float]:
        """Append and return a GeoMean row over the given row labels.

        Non-positive cells cannot enter a geometric mean and are excluded;
        excluding them silently would *inflate* the GeoMean row (a zero
        cell usually means a scheme completed no regions in a quick run),
        so every excluded cell is surfaced in :attr:`notes`.
        """
        labels = labels or [r for r in self.rows if r != "GeoMean"]
        gm = {
            col: geomean([self.rows[r].get(col, 0.0) for r in labels])
            for col in self.columns
        }
        self.rows["GeoMean"] = gm
        dropped = [
            f"{r}:{col}"
            for r in labels
            for col in self.columns
            if self.rows[r].get(col, 0.0) <= 0
        ]
        if dropped:
            note = (
                "GeoMean excludes non-positive cells: " + ", ".join(dropped)
            )
            self.notes = f"{self.notes}; {note}" if self.notes else note
        return gm

    def cell(self, row: str, col: str) -> float:
        return self.rows[row][col]

    # -- rendering -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form (for ``asap-repro --json``)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": {label: dict(cells) for label, cells in self.rows.items()},
            "paper": {label: dict(cells) for label, cells in self.paper.items()},
            "notes": self.notes,
        }

    def to_csv(self) -> str:
        """The rows as CSV (header: row label + columns)."""
        lines = ["label," + ",".join(self.columns)]
        for label, cells in self.rows.items():
            values = ",".join(
                f"{cells[c]:.6g}" if c in cells else "" for c in self.columns
            )
            lines.append(f"{label},{values}")
        return "\n".join(lines) + "\n"

    def to_table(self, precision: int = 2) -> str:
        width = max([len(r) for r in self.rows] + [8])
        col_width = max([len(c) for c in self.columns] + [8]) + 2
        header = f"{self.exp_id}: {self.title}\n"
        header += " " * width + "".join(f"{c:>{col_width}}" for c in self.columns) + "\n"
        lines = []
        for label, cells in self.rows.items():
            line = f"{label:<{width}}"
            for col in self.columns:
                v = cells.get(col)
                line += (
                    f"{v:>{col_width}.{precision}f}" if v is not None else " " * col_width
                )
            lines.append(line)
        body = "\n".join(lines)
        out = header + body
        if self.paper:
            out += "\n  paper reference:"
            for label, cells in self.paper.items():
                cellstr = ", ".join(f"{c}={v}" for c, v in cells.items())
                out += f"\n    {label}: {cellstr}"
        if self.notes:
            out += f"\n  note: {self.notes}"
        return out

"""The Log Header WPQ (Fig. 3, Fig. 5b, Sec. 5.5).

Each channel has an LH-WPQ holding, for every uncommitted atomic region,
the LogHeader of its latest (unsealed) log record together with the
header's PM address. Like the WPQ it sits inside the persistence domain:
on a crash its contents are flushed to persistent memory so recovery can
find partially-filled records.

Capacity pressure on this structure is the Sec. 7.4 sensitivity study: a
16-entry LH-WPQ makes regions stall at their first LPO when too many
uncommitted regions are outstanding, costing ASAP 0.78x of its 128-entry
performance.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import SimulationError
from repro.core.log import LogRecord
from repro.engine import Scheduler, WaitQueue
from repro.mem.image import MemoryImage


class LogHeaderWPQ:
    """One channel's LH-WPQ."""

    def __init__(self, name: str, scheduler: Scheduler, capacity: int):
        if capacity <= 0:
            raise SimulationError("LH-WPQ capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._scheduler = scheduler
        #: header_addr -> live record whose header is held here
        self._entries: Dict[int, LogRecord] = {}
        self._backpressure = WaitQueue(scheduler)
        self.peak_occupancy = 0
        self.stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def acquire(self, record: LogRecord, granted: Callable[[], None]) -> None:
        """Install ``record``'s header; calls ``granted`` once there is room.

        A full LH-WPQ parks the requester - this is the structural stall
        that the Sec. 7.4 experiment measures.
        """
        if not self.full:
            self._entries[record.header_addr] = record
            self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
            self._scheduler.after(0, granted)
        else:
            self.stalls += 1
            self._backpressure.park(lambda: self.acquire(record, granted))

    def release(self, header_addr: int) -> Optional[LogRecord]:
        """Remove a header (record sealed and moved to the WPQ, or commit)."""
        record = self._entries.pop(header_addr, None)
        if record is not None:
            self._backpressure.wake_one()
        return record

    def release_region(self, rid: int) -> int:
        """Drop every header belonging to ``rid`` (commit path)."""
        victims = [
            addr for addr, rec in self._entries.items() if rec.rid == rid
        ]
        for addr in victims:
            self.release(addr)
        return len(victims)

    def flush_to_pm(self, pm_image: MemoryImage) -> int:
        """Crash path: write every held header to persistent memory."""
        for record in self._entries.values():
            pm_image.apply(record.header_payload())
        count = len(self._entries)
        self._entries.clear()
        return count

    def records(self):
        return iter(self._entries.values())

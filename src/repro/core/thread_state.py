"""Per-thread state registers (Fig. 3 (1), Sec. 4.4).

``asap_init()`` allocates the thread's log buffer and fills these in. On a
context switch they are saved and restored as part of the process state
(Sec. 5.7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ThreadStateRegisters:
    """The six ASAP registers of one hardware thread.

    Attributes:
        thread_id: identifies the thread inside packed RIDs.
        log_address: base address of the thread's log buffer in PM.
        log_size: size of the log buffer in bytes.
        log_head: index of the oldest live log record.
        log_tail: index one past the newest allocated log record.
        cur_local_rid: LocalRID of the current (or latest) atomic region.
        nest_depth: atomic-region nesting depth; nested regions are
            flattened in hardware, so only the 0 -> 1 and 1 -> 0 transitions
            have architectural effects (Secs. 4.5, 4.7).
    """

    thread_id: int
    log_address: int = 0
    log_size: int = 0
    log_head: int = 0
    log_tail: int = 0
    cur_local_rid: int = 0
    nest_depth: int = 0

    def save(self) -> dict:
        """Snapshot for a context switch (Sec. 5.7)."""
        return {
            "thread_id": self.thread_id,
            "log_address": self.log_address,
            "log_size": self.log_size,
            "log_head": self.log_head,
            "log_tail": self.log_tail,
            "cur_local_rid": self.cur_local_rid,
            "nest_depth": self.nest_depth,
        }

    @staticmethod
    def restore(state: dict) -> "ThreadStateRegisters":
        """Rebuild registers from a :meth:`save` snapshot."""
        return ThreadStateRegisters(**state)

"""The Modified Cache Line List (Fig. 3 (3), Secs. 4.6.2, 4.8).

Each core has a small CL List (4 entries in Table 2). An entry tracks one
atomic region's still-unpersisted modified cache lines in up to 8 CLPtr
slots. The entry is created at ``asap_begin``, marked Done at ``asap_end``,
and removed once every slot has cleared (all DPOs complete) - at which
point the region's Dependence List entry at the memory controller is marked
Done (Fig. 4 transition (3)).

Structural stalls modelled here, as in the paper:

* a new region finding all 4 entries occupied stalls until one clears,
* a write needing a 9th slot stalls until a DPO completes (Sec. 4.6.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.core.states import RegionState
from repro.engine import Scheduler, WaitQueue

#: global creation order for CL entries. Within one CL List this matches
#: dict insertion order (rids are never reused), so sorting by
#: ``(core, seq)`` reproduces the reference "cores ascending, entries in
#: insertion order" iteration that the engine's fast-path slot index
#: replays.
_entry_seq = itertools.count()


@dataclass(slots=True)
class CLSlot:
    """One CLPtr slot: a modified line awaiting its data persist."""

    line: int
    #: bumped on every write by the owning region to this line; a DPO
    #: carries the version it snapshotted, and only a current-version DPO
    #: completion clears the slot (stale ones re-initiate).
    data_version: int = 0
    dpo_inflight: bool = False
    #: True when the line holds data newer than any initiated DPO
    pending: bool = True
    #: value of the entry's write counter at the last write to this line
    #: (drives the distance-4 DPO coalescing policy).
    last_write_stamp: int = 0
    #: writes not yet covered by an issued DPO; with coalescing disabled
    #: (Fig. 9a No-Opt) every backlogged write issues its own DPO.
    eager_backlog: int = 0


class CLEntry:
    """CL List entry for one atomic region."""

    def __init__(self, rid: int, max_slots: int):
        self.rid = rid
        self.seq = next(_entry_seq)
        self.max_slots = max_slots
        self.state = RegionState.IN_PROGRESS
        self.slots: Dict[int, CLSlot] = {}
        #: counts writes by the region to lines other than a given slot's;
        #: incremented once per write op.
        self.write_counter = 0
        #: True while a write is stalled on a free slot: the coalescing
        #: distance is waived so pending DPOs drain and free one
        #: (Sec. 4.6.2's "stalls until ... the corresponding DPO completes")
        self.pressure = False

    @property
    def slots_full(self) -> bool:
        return len(self.slots) >= self.max_slots

    @property
    def drained(self) -> bool:
        return not self.slots

    def slot_for(self, line: int) -> Optional[CLSlot]:
        return self.slots.get(line)

    def add_slot(self, line: int) -> CLSlot:
        if self.slots_full:
            raise SimulationError(f"CL entry {self.rid}: all CLPtr slots occupied")
        slot = CLSlot(line=line)
        self.slots[line] = slot
        return slot

    def clear_slot(self, line: int) -> None:
        self.slots.pop(line, None)


class CLList:
    """One core's CL List with its two wait queues."""

    def __init__(self, core_id: int, scheduler: Scheduler, entries: int, slots: int):
        self.core_id = core_id
        self.max_entries = entries
        self.max_slots = slots
        self._entries: Dict[int, CLEntry] = {}
        #: regions waiting for a free entry (asap_begin stall)
        self.entry_waiters = WaitQueue(scheduler)
        #: writes waiting for a free CLPtr slot (DPO completion frees one)
        self.slot_waiters = WaitQueue(scheduler)
        self.entry_stalls = 0
        self.slot_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.max_entries

    def entry(self, rid: int) -> Optional[CLEntry]:
        return self._entries.get(rid)

    def open_entry(self, rid: int) -> CLEntry:
        """Create the region's entry (caller must have checked ``full``)."""
        if self.full:
            raise SimulationError(f"CL List of core {self.core_id} is full")
        if rid in self._entries:
            raise SimulationError(f"duplicate CL entry for rid {rid}")
        entry = CLEntry(rid, self.max_slots)
        self._entries[rid] = entry
        return entry

    def remove_entry(self, rid: int) -> None:
        """Region reached Done@L1 with all slots drained (Fig. 4 (3))."""
        if rid in self._entries:
            del self._entries[rid]
            self.entry_waiters.wake_one()

    def entries(self):
        return iter(self._entries.values())

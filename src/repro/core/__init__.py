"""ASAP proper: the paper's contribution (Secs. 4-5).

This package implements the hardware structures of Fig. 3 and the
asynchronous-commit protocol of Fig. 4:

* region ids (:mod:`repro.core.rid`),
* per-thread state registers (:mod:`repro.core.thread_state`),
* the per-thread circular undo log and its record/header layout
  (:mod:`repro.core.log`),
* the Log Header WPQ (:mod:`repro.core.lh_wpq`),
* the per-core Modified Cache Line List (:mod:`repro.core.cl_list`),
* the per-channel Dependence List (:mod:`repro.core.dependence`),
* the Bloom filter + DRAM spill buffer for dependence tracking across LLC
  evictions (:mod:`repro.core.bloom`),
* and the engine tying them to the cache hierarchy
  (:mod:`repro.core.engine`).
"""

from repro.core.rid import RID, pack_rid, unpack_rid
from repro.core.states import RegionState
from repro.core.thread_state import ThreadStateRegisters
from repro.core.log import LogRecord, UndoLog
from repro.core.lh_wpq import LogHeaderWPQ
from repro.core.cl_list import CLEntry, CLList, CLSlot
from repro.core.dependence import DependenceEntry, DependenceList
from repro.core.bloom import BloomFilter, OwnerSpillBuffer
from repro.core.engine import AsapEngine

__all__ = [
    "RID",
    "pack_rid",
    "unpack_rid",
    "RegionState",
    "ThreadStateRegisters",
    "LogRecord",
    "UndoLog",
    "LogHeaderWPQ",
    "CLEntry",
    "CLList",
    "CLSlot",
    "DependenceEntry",
    "DependenceList",
    "BloomFilter",
    "OwnerSpillBuffer",
    "AsapEngine",
]

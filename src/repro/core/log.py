"""Per-thread circular undo logs (Sec. 4.4, Sec. 5.5, Fig. 5a).

Each thread owns a distributed log buffer in persistent memory, divided
into fixed-size *records*: one 64 B ``LogHeader`` line followed by up to
seven 64 B data-entry lines. The header line stores the region id and the
data address of every entry, so the addresses of seven log entries persist
with a single cache-line write.

Layout of a record slot (stride = ``(1 + entries_per_record) * 64`` bytes)::

    header_addr + 0   : word0 = packed RID, word(1+i) = data line addr i
    header_addr + 64  : entry 0 (the 64 B old value of data line 0)
    header_addr + 128 : entry 1
    ...

On overflow the hardware raises an exception whose handler allocates more
log space (Sec. 4.4); we model that with an optional ``grow_fn`` that
returns a fresh PM range.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import LogOverflowError, SimulationError
from repro.common.units import CACHE_LINE_BYTES, WORD_BYTES

#: low bit of a header slot word: the logged line's previous writer was an
#: *uncommitted* region when this entry was created, i.e. the entry sits in
#: the middle of a per-line undo chain. Data lines are 64-byte aligned, so
#: the low six bits of a slot word are free for metadata; recovery masks
#: them off (see :func:`decode_slot_word`) and uses the flag to validate
#: chain completeness before restoring (docs/RECOVERY.md).
CHAIN_BIT = 0x1


def encode_slot_word(data_line: int, chained: bool) -> int:
    """Pack a header slot word: line address plus the chain flag."""
    return data_line | (CHAIN_BIT if chained else 0)


def decode_slot_word(word: int) -> Tuple[int, bool]:
    """Unpack a header slot word into ``(data_line, chained)``."""
    return word & ~(CACHE_LINE_BYTES - 1), bool(word & CHAIN_BIT)


class LogRecord:
    """One in-flight log record of an atomic region.

    An entry slot has two states: *reserved* (the LPO was created and is on
    its way to a WPQ) and *confirmed* (the WPQ accepted the LPO, so the old
    value is inside the persistence domain). Only confirmed entries appear
    in the persistable header: a crash must never expose a header entry
    whose logged value did not make it to durability - recovery would
    restore garbage. An unconfirmed entry is safe to drop entirely, because
    the LockBit guarantees no DPO or eviction writeback of that line can
    have persisted either (Sec. 4.6.1).
    """

    __slots__ = (
        "rid",
        "header_addr",
        "capacity",
        "entries",
        "confirmed",
        "chained",
        "sealed",
    )

    def __init__(self, rid: int, header_addr: int, capacity: int):
        self.rid = rid
        self.header_addr = header_addr
        self.capacity = capacity
        #: (data_line, entry_addr) in fill order
        self.entries: List[Tuple[int, int]] = []
        self.confirmed: set = set()
        #: slots whose line had an *uncommitted* previous writer (their
        #: durable header words carry :data:`CHAIN_BIT`)
        self.chained: set = set()
        self.sealed = False

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def entry_addr(self, slot: int) -> int:
        return self.header_addr + (1 + slot) * CACHE_LINE_BYTES

    def add_entry(self, data_line: int, chained: bool = False) -> Tuple[int, int]:
        """Reserve the next entry slot for ``data_line``.

        ``chained`` marks the entry as mid-chain (the line's previous
        writer was uncommitted); its durable header word carries
        :data:`CHAIN_BIT`. Returns ``(slot_index, entry_addr)``.
        """
        if self.full:
            raise SimulationError("appending to a full log record")
        slot = len(self.entries)
        addr = self.entry_addr(slot)
        self.entries.append((data_line, addr))
        if chained:
            self.chained.add(slot)
        return slot, addr

    def confirm(self, slot: int) -> None:
        """Mark entry ``slot``'s LPO as accepted by a WPQ."""
        self.confirmed.add(slot)

    def header_word_addr(self, slot: int) -> int:
        """PM address of the header word naming entry ``slot``."""
        return self.header_addr + (1 + slot) * WORD_BYTES

    def slot_word(self, slot: int) -> int:
        """The durable header word for entry ``slot`` (address + flags)."""
        return encode_slot_word(self.entries[slot][0], slot in self.chained)

    def header_payload(self) -> Dict[int, int]:
        """The header cache line as a {word addr: value} payload.

        Word 0 is the packed RID; word ``1+i`` is the data-line address of
        confirmed entry ``i`` (low bits carry the :data:`CHAIN_BIT` flag).
        Unconfirmed and unused slots are explicit zeros so that writing
        this header scrubs any stale addresses left in a reused record
        slot. This is what recovery parses.
        """
        payload = {self.header_addr: self.rid}
        for i in range(self.capacity):
            word = self.header_word_addr(i)
            if i < len(self.entries) and i in self.confirmed:
                payload[word] = self.slot_word(i)
            else:
                payload[word] = 0
        return payload


class UndoLog:
    """The circular log buffer of one thread.

    Record slots are managed as a free pool: a commit returns the region's
    slots, begin-to-commit lifetimes bound occupancy exactly like the
    paper's LogHead/LogTail window.
    """

    def __init__(
        self,
        thread_id: int,
        base_addr: int,
        num_records: int,
        entries_per_record: int = 7,
        grow_fn: Optional[Callable[[int], int]] = None,
    ):
        """
        Args:
            base_addr: PM base of the initial buffer segment.
            num_records: record slots in the initial segment.
            grow_fn: called with a byte size on overflow; must return the
                base address of a fresh PM range (the overflow handler).
        """
        if entries_per_record < 1 or entries_per_record > 7:
            raise SimulationError(
                "entries_per_record must be 1..7 (header addresses fit one line)"
            )
        self.thread_id = thread_id
        self.entries_per_record = entries_per_record
        self.record_stride = (1 + entries_per_record) * CACHE_LINE_BYTES
        self._grow_fn = grow_fn
        self.segments: List[Tuple[int, int]] = []
        self._free_slots: Deque[int] = deque()
        self._open: Dict[int, LogRecord] = {}  # rid -> unsealed record
        self._records_of: Dict[int, List[LogRecord]] = {}  # rid -> all records
        self.overflows = 0
        self._add_segment(base_addr, num_records)

    # -- space management ----------------------------------------------------

    def _add_segment(self, base_addr: int, num_records: int) -> None:
        if num_records <= 0:
            raise SimulationError("segment must hold at least one record")
        self.segments.append((base_addr, num_records))
        for i in range(num_records):
            self._free_slots.append(base_addr + i * self.record_stride)

    def _allocate_slot(self) -> int:
        if not self._free_slots:
            self.overflows += 1
            if self._grow_fn is None:
                raise LogOverflowError(self.thread_id, self.capacity_records)
            grow_records = max(1, self.capacity_records)
            base = self._grow_fn(grow_records * self.record_stride)
            self._add_segment(base, grow_records)
        return self._free_slots.popleft()

    @property
    def capacity_records(self) -> int:
        return sum(n for _, n in self.segments)

    @property
    def free_records(self) -> int:
        return len(self._free_slots)

    @property
    def live_records(self) -> int:
        return self.capacity_records - self.free_records

    # -- appending -----------------------------------------------------------

    def append(self, rid: int, data_line: int, chained: bool = False):
        """Allocate a log entry for ``data_line`` in region ``rid``.

        ``chained`` is forwarded to :meth:`LogRecord.add_entry`.

        Returns:
            ``(slot, entry_addr, record, opened, sealed_record)`` where
            ``slot`` indexes the entry within its record, ``opened`` is True
            when this entry started a fresh record (a new LH-WPQ entry is
            needed) and ``sealed_record`` is the previously open record if
            this append found it full and sealed it (its header must move
            from the LH-WPQ to the WPQ; Sec. 5.5).
        """
        sealed_record = None
        record = self._open.get(rid)
        if record is not None and record.full:
            record.sealed = True
            sealed_record = record
            record = None
        opened = record is None
        if record is None:
            record = LogRecord(rid, self._allocate_slot(), self.entries_per_record)
            self._open[rid] = record
            self._records_of.setdefault(rid, []).append(record)
        slot, entry_addr = record.add_entry(data_line, chained=chained)
        return slot, entry_addr, record, opened, sealed_record

    def open_record(self, rid: int) -> Optional[LogRecord]:
        return self._open.get(rid)

    def records_of(self, rid: int) -> List[LogRecord]:
        return list(self._records_of.get(rid, ()))

    # -- freeing (commit) ------------------------------------------------------

    def free(self, rid: int) -> List[LogRecord]:
        """Release all of ``rid``'s records back to the pool (on commit)."""
        self._open.pop(rid, None)
        records = self._records_of.pop(rid, [])
        for record in records:
            self._free_slots.append(record.header_addr)
        return records

    # -- recovery support -------------------------------------------------------

    def all_slot_addrs(self):
        """Yield every record-slot header address (recovery scans these)."""
        for base, num_records in self.segments:
            for i in range(num_records):
                yield base + i * self.record_stride

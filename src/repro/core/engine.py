"""The ASAP engine: asynchronous commit with dependence enforcement.

This module wires the hardware structures of Fig. 3 to the cache hierarchy
and memory controllers, implementing:

* ``asap_begin`` / ``asap_end`` with region flattening (Secs. 4.5, 4.7),
* first-write LPO initiation with the LockBit protocol (Sec. 4.6.1),
* CLPtr tracking and the distance-4 DPO initiation policy (Sec. 4.6.2),
* control- and data-dependence capture (Secs. 4.5, 4.6.3),
* the asynchronous commit state machine of Fig. 4 (Sec. 4.8),
* the three traffic optimizations - LPO dropping, DPO coalescing, DPO
  dropping (Sec. 5.1),
* ``asap_fence`` for synchronous persistence on demand (Sec. 5.2),
* OwnerRID spill/reload across LLC evictions via the DRAM buffer and
  Bloom filter (Sec. 5.3),
* log management with the LH-WPQ (Sec. 5.5).

Everything is continuation-passing: an operation's ``done`` callback fires
when the instruction may retire, so structural stalls (full CL List, full
Dep slots, full LH-WPQ, WPQ backpressure) naturally extend instruction
latency exactly where the paper says they do - and *only* there, because
commits are asynchronous.

With the non-blocking hierarchy (docs/MEMORY.md), ``done`` callbacks may
fire out of issue order *across cores*: core 0's early miss can complete
after core 1's later hit, and MSHR merges complete whole waiter lists in
one cycle. The engine is agnostic - each thread's own ops still retire
in program order, and nothing here assumes cross-core completion order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.common.address import line_base, words_of_line
from repro.common.errors import SimulationError
from repro.common.observe import SimObserver
from repro.common.params import SystemConfig
from repro.core.bloom import OwnerSpillBuffer
from repro.core.cl_list import CLEntry, CLList, CLSlot
from repro.core.dependence import DependenceList
from repro.core.lh_wpq import LogHeaderWPQ
from repro.core.log import LogRecord, UndoLog
from repro.core.rid import local_rid_of, pack_rid, previous_rid
from repro.core.states import RegionState
from repro.core.thread_state import ThreadStateRegisters
from repro.engine import Scheduler, Signal
from repro.mem.controller import MemorySystem
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.image import MemoryImage
from repro.mem.tagstore import LineMeta
from repro.mem.wpq import DPO, LOGHDR, LPO, WB, PersistOp


@dataclass
class AsapStats:
    """Engine-level counters (cross-checked by the test suite)."""

    regions_begun: int = 0
    regions_ended: int = 0
    commits: int = 0
    lpos_initiated: int = 0
    dpos_initiated: int = 0
    dpos_reinitiated: int = 0
    lpo_drops: int = 0
    dpo_drops: int = 0
    loghdr_writes: int = 0
    dep_captures: int = 0
    stale_owner_lookups: int = 0
    fence_waits: int = 0
    #: LPOs held at the memory controller until an earlier uncommitted
    #: writer's log entry for the same line became durable (the per-line
    #: chain-ordering rule; docs/RECOVERY.md)
    lpo_order_delays: int = 0


class AsapThread:
    """Engine-side state of one hardware thread."""

    def __init__(self, thread_id: int, core_id: int, regs: ThreadStateRegisters, log: UndoLog):
        self.thread_id = thread_id
        self.core_id = core_id
        self.regs = regs
        self.log = log
        #: packed rid of the currently-executing region, None outside regions
        self.active_rid: Optional[int] = None
        #: packed rid of the latest region begun by this thread
        self.last_rid: Optional[int] = None
        #: per-region commit signals for asap_fence
        self.commit_signals: Dict[int, Signal] = {}


class AsapEngine:
    """The full ASAP mechanism for one machine."""

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Scheduler,
        memory: MemorySystem,
        hierarchy: CacheHierarchy,
        volatile: MemoryImage,
        pm_alloc: Callable[[int], int],
        fast: bool = False,
    ):
        """
        Args:
            pm_alloc: allocates persistent memory (used for log buffers and
                log growth); provided by the runtime heap.
            fast: elide persist-op payloads and undo snapshots - valid only
                when the run has no crash window and no observer, because
                nothing then ever reads the PM image. All control flow,
                structure occupancy, and timing are unchanged; the
                differential-identity gate holds the two modes to identical
                RunResult stats (docs/PERF.md).
        """
        self.config = config
        self.fast = fast
        self.params = config.asap
        self.scheduler = scheduler
        self.memory = memory
        self.hierarchy = hierarchy
        self.volatile = volatile
        self.pm_alloc = pm_alloc
        self.stats = AsapStats()

        self.cl_lists: List[CLList] = [
            CLList(core, scheduler, self.params.cl_list_entries, self.params.clptr_slots)
            for core in range(config.num_cores)
        ]
        num_channels = config.memory.num_channels
        self.dep_lists: List[DependenceList] = [
            DependenceList(ch, scheduler, self.params.dependence_list_entries, self.params.dep_slots)
            for ch in range(num_channels)
        ]
        self.lh_wpqs: List[LogHeaderWPQ] = [
            LogHeaderWPQ(f"lh-wpq[{ch}]", scheduler, self.params.lh_wpq_entries)
            for ch in range(num_channels)
        ]
        self.spill = OwnerSpillBuffer(
            num_channels, self.params.bloom_filter_bits, self.params.bloom_hashes
        )
        self.threads: Dict[int, AsapThread] = {}
        #: per-line LPO ordering (``AsapParams.ordered_line_log_persists``):
        #: for each line with LPOs submitted but not yet accepted/dropped, a
        #: ``[channel_index, count]`` token, plus the FIFO of later same-line
        #: LPOs held back. Submission order equals dependence-chain order
        #: (first writes take ownership under dependence capture), so
        #: releasing waiters oldest-first persists each line's log entries
        #: chain-oldest-first. Same-channel followers ride the in-flight
        #: token (count > 1) instead of waiting: one channel's FIFO already
        #: orders their acceptance.
        self._line_lpo_inflight: Dict[int, List[int]] = {}
        self._line_lpo_waiters: Dict[int, Deque] = {}
        #: fast path only: line -> {entry rid: (core, entry seq, entry,
        #: slot)} for every live CLPtr slot tracking that line, so
        #: ``_try_issue_dpos_for_line`` avoids scanning every core's CL
        #: List. Sorting by (core, entry seq) replays the reference scan
        #: order exactly (see :mod:`repro.core.cl_list`).
        self._slots_by_line: Optional[Dict[int, Dict[int, tuple]]] = (
            {} if fast else None
        )
        self._dpo_distance = config.asap.dpo_distance
        if fast and self.params.dpo_coalescing:
            # Instance-level shadow: every internal caller picks up the
            # flattened scan; the class method (the reference path and the
            # coalescing-off ablation) is untouched.
            self._coalescing_scan = self._coalescing_scan_fast
        #: commit listeners, e.g. the recovery oracle
        self.on_commit: List[Callable[[int], None]] = []
        self._quiescent_waiters: List[Callable[[], None]] = []
        #: optional :class:`SimObserver` (the runtime invariant sanitizer)
        self.observer: Optional[SimObserver] = None

        hierarchy.evict_hook = self._on_llc_evict
        hierarchy.reload_hook = self._on_pm_reload

    # ------------------------------------------------------------------
    # structure lookups
    # ------------------------------------------------------------------

    def dep_list_for(self, rid: int) -> DependenceList:
        """The Dependence List hosting ``rid`` (by LocalRID LSBs, Sec. 5.6)."""
        return self.dep_lists[local_rid_of(rid) % len(self.dep_lists)]

    def lh_wpq_for(self, header_addr: int) -> LogHeaderWPQ:
        return self.lh_wpqs[(header_addr >> 6) % len(self.lh_wpqs)]

    def uncommitted_count(self) -> int:
        return sum(len(dl) for dl in self.dep_lists)

    # ------------------------------------------------------------------
    # thread lifecycle (asap_init)
    # ------------------------------------------------------------------

    def register_thread(self, thread_id: int, core_id: int) -> AsapThread:
        """``asap_init()``: allocate the log buffer, set up the registers."""
        if thread_id in self.threads:
            raise SimulationError(f"thread {thread_id} already registered")
        record_stride = (1 + self.params.log_data_entries_per_record) * 64
        num_records = max(
            1, self.params.initial_log_entries // self.params.log_data_entries_per_record
        )
        base = self.pm_alloc(num_records * record_stride)
        regs = ThreadStateRegisters(
            thread_id=thread_id,
            log_address=base,
            log_size=num_records * record_stride,
        )
        log = UndoLog(
            thread_id,
            base,
            num_records,
            self.params.log_data_entries_per_record,
            grow_fn=self.pm_alloc,
        )
        thread = AsapThread(thread_id, core_id, regs, log)
        self.threads[thread_id] = thread
        return thread

    # ------------------------------------------------------------------
    # asap_begin
    # ------------------------------------------------------------------

    def begin(self, thread: AsapThread, done: Callable[[], None]) -> None:
        thread.regs.nest_depth += 1
        if thread.regs.nest_depth > 1:
            done()  # nested regions are flattened (Sec. 4.5)
            return
        self._begin_top_level(thread, done)

    def _begin_top_level(self, thread: AsapThread, done: Callable[[], None]) -> None:
        cl = self.cl_lists[thread.core_id]
        if cl.full:
            cl.entry_stalls += 1
            cl.entry_waiters.park(lambda: self._begin_top_level(thread, done))
            return
        next_local = thread.regs.cur_local_rid + 1
        rid = pack_rid(thread.thread_id, next_local)
        dl = self.dep_list_for(rid)
        if dl.full:
            dl.entry_stalls += 1
            dl.entry_waiters.park(lambda: self._begin_top_level(thread, done))
            return
        thread.regs.cur_local_rid = next_local
        cl.open_entry(rid)
        entry = dl.open_entry(rid)
        # Control dependence on the thread's previous region (Sec. 4.5).
        prev = previous_rid(rid)
        if prev is not None and self.dep_list_for(prev).contains(prev):
            entry.deps.add(prev)
        thread.active_rid = rid
        thread.last_rid = rid
        thread.commit_signals[rid] = Signal(self.scheduler)
        self.stats.regions_begun += 1
        if self.observer is not None:
            self.observer.region_begun(self, thread, rid)
            if prev is not None and prev in entry.deps:
                self.observer.dep_captured(self, rid, prev)
        done()

    # ------------------------------------------------------------------
    # asap_end
    # ------------------------------------------------------------------

    def end(self, thread: AsapThread, done: Callable[[], None]) -> None:
        if thread.regs.nest_depth <= 0:
            raise SimulationError(
                f"thread {thread.thread_id}: asap_end without matching begin"
            )
        thread.regs.nest_depth -= 1
        if thread.regs.nest_depth > 0:
            done()
            return
        rid = thread.active_rid
        if rid is None:
            raise SimulationError("no active region at top-level asap_end")
        thread.active_rid = None
        self.stats.regions_ended += 1
        if self.observer is not None:
            self.observer.region_ended(self, thread, rid)
        entry = self.cl_lists[thread.core_id].entry(rid)
        if entry is None:
            raise SimulationError(f"missing CL entry for {rid} at asap_end")
        entry.state = RegionState.DONE  # Fig. 4 transition (2)
        self._drain_entry(entry, thread)
        if entry.drained:
            self._finish_at_l1(entry, thread)
        # Asynchronous commit: execution proceeds immediately.
        done()

    # ------------------------------------------------------------------
    # memory accesses
    # ------------------------------------------------------------------

    def write(
        self,
        thread: AsapThread,
        addr: int,
        values,
        done: Callable[[], None],
    ) -> None:
        """A store by ``thread``; ``values`` are the words to write.

        The functional write applies immediately; persistence machinery may
        delay retirement (``done``) on structural stalls only.
        """
        if self.fast:
            self._write_fast(thread, addr, values, done)
            return
        line = line_base(addr)
        pm = self.hierarchy.is_persistent(line)
        old_snapshot = None
        if pm and thread.active_rid is not None and not self.fast:
            old_snapshot = {w: self.volatile.read_word(w) for w in words_of_line(line)}
        self.volatile.write_range(addr, values)
        rid = thread.active_rid

        def after_access(meta: LineMeta) -> None:
            if not pm or rid is None:
                done()
                return
            self._region_write(thread, rid, meta, old_snapshot, done)

        self.hierarchy.access(thread.core_id, addr, True, after_access)

    def read(
        self,
        thread: AsapThread,
        addr: int,
        nwords: int,
        done: Callable[[list], None],
    ) -> None:
        """A load by ``thread``; ``done`` receives the word values."""
        if self.fast:
            self._read_fast(thread, addr, nwords, done)
            return
        line = line_base(addr)
        pm = self.hierarchy.is_persistent(line)
        rid = thread.active_rid

        def after_access(meta: LineMeta) -> None:
            def deliver() -> None:
                values = [
                    self.volatile.read_word(addr + 8 * i) for i in range(nwords)
                ]
                done(values)

            if pm and rid is not None:
                # Sec. 4.6.3: reads also capture data dependences.
                self._capture_dependence(thread, rid, meta, deliver)
            else:
                deliver()

        self.hierarchy.access(thread.core_id, addr, False, after_access)

    # -- the flattened fast-core pipeline ----------------------------------
    #
    # One frame for the happy path of a region write (free CLPtr slot, no
    # cross-region owner) instead of the reference's
    # write -> _region_write -> _capture_dependence -> _ensure_slot ->
    # _after_slot -> _initiate_lpo chain. Every non-happy case falls back
    # to the reference helpers, so stall behaviour, dependence capture,
    # and chain ordering are byte-identical (the differential gate checks
    # this end to end); payloads/snapshots are elided as everywhere in
    # fast mode.

    def _write_fast(self, thread: AsapThread, addr: int, values, done) -> None:
        line = addr & ~63
        hierarchy = self.hierarchy
        pm = hierarchy.is_persistent(line)
        self.volatile.write_range(addr, values)
        rid = thread.active_rid
        if not pm or rid is None:
            hierarchy.access(thread.core_id, addr, True, lambda meta: done())
            return

        def after_access(meta: LineMeta) -> None:
            owner = meta.owner_rid
            if owner is not None and owner != rid:
                # Cross-region owner: dependence capture (possibly a stall
                # or a stale-tag cleanup) - reference pipeline.
                self._region_write(thread, rid, meta, None, done)
                return
            entry = self.cl_lists[thread.core_id]._entries.get(rid)
            if entry is None:
                raise SimulationError(f"no CL entry for active region {rid}")
            slots = entry.slots
            slot = slots.get(line)
            if slot is None:
                if len(slots) >= entry.max_slots:
                    # Slot stall: reference pipeline (parks, applies
                    # pressure, rescans).
                    self._ensure_slot(thread, rid, meta, None, done)
                    return
                entry.pressure = False
                slot = CLSlot(line=line)
                slots[line] = slot
                self._slots_by_line.setdefault(line, {})[rid] = (
                    thread.core_id,
                    entry.seq,
                    entry,
                    slot,
                )
            entry.write_counter += 1
            slot.last_write_stamp = entry.write_counter
            slot.data_version += 1
            slot.pending = True
            slot.eager_backlog += 1
            if owner is None:  # first write by this region
                self._initiate_lpo_fast(thread, rid, meta, entry, done)
            else:
                self._coalescing_scan(entry, thread)
                done()

        hierarchy.access(thread.core_id, addr, True, after_access)

    def _initiate_lpo_fast(
        self,
        thread: AsapThread,
        rid: int,
        meta: LineMeta,
        entry: CLEntry,
        done,
    ) -> None:
        """First-write LPO, unchained case (the fast write path diverts
        owned lines before getting here, so there is no uncommitted
        previous writer)."""
        meta.lock_count += 1
        meta.owner_rid = rid
        line = meta.line
        slot_idx, entry_addr, record, opened, sealed = thread.log.append(
            rid, line, chained=False
        )
        if sealed is not None:
            self._seal_record(sealed, rid)

        def issue() -> None:
            def accepted(op: PersistOp) -> None:
                record.confirm(slot_idx)
                self._lpo_accepted(op, thread)
                self._lpo_chain_advance(line)

            op = PersistOp(
                kind=LPO,
                target_line=entry_addr,
                data_line=line,
                payload=None,
                rid=rid,
                on_complete=accepted,
            )
            self.stats.lpos_initiated += 1
            self._submit_lpo_ordered(op, line)
            self._coalescing_scan(entry, thread)
            done()

        if opened:
            self.lh_wpq_for(record.header_addr).acquire(record, issue)
        else:
            issue()

    def _read_fast(self, thread: AsapThread, addr: int, nwords: int, done) -> None:
        line = addr & ~63
        hierarchy = self.hierarchy
        pm = hierarchy.is_persistent(line)
        rid = thread.active_rid
        words = self.volatile._words

        def after_access(meta: LineMeta) -> None:
            if pm and rid is not None:
                owner = meta.owner_rid
                if owner is not None and owner != rid:
                    self._capture_dependence(
                        thread,
                        rid,
                        meta,
                        lambda: done(
                            [words.get(addr + 8 * i, 0) for i in range(nwords)]
                        ),
                    )
                    return
            done([words.get(addr + 8 * i, 0) for i in range(nwords)])

        hierarchy.access(thread.core_id, addr, False, after_access)

    def _coalescing_scan_fast(self, entry: CLEntry, thread: AsapThread) -> None:
        """Flattened :meth:`_coalescing_scan` for the fast core (coalescing
        enabled): the same boolean as :meth:`_dpo_ready` per slot, with the
        cheap rejections first and the tag lookup last. Pure reads, so the
        reordering cannot change the outcome."""
        done_state = entry.state is RegionState.DONE
        pressure = entry.pressure
        threshold = entry.write_counter - self._dpo_distance
        tags_get = self.hierarchy.tags.get
        for slot in entry.slots.values():
            if not slot.pending or slot.dpo_inflight:
                continue
            if not (done_state or pressure) and slot.last_write_stamp > threshold:
                continue
            meta = tags_get(slot.line)
            if meta is not None and meta.lock_count > 0:
                continue  # LPO still in flight
            self._initiate_dpo(entry, slot, thread)

    # -- the region-write pipeline ----------------------------------------

    def _region_write(
        self,
        thread: AsapThread,
        rid: int,
        meta: LineMeta,
        old_snapshot: Dict[int, int],
        done: Callable[[], None],
    ) -> None:
        def after_dep() -> None:
            self._ensure_slot(thread, rid, meta, old_snapshot, done)

        self._capture_dependence(thread, rid, meta, after_dep)

    def _capture_dependence(
        self,
        thread: AsapThread,
        rid: int,
        meta: LineMeta,
        then: Callable[[], None],
    ) -> None:
        """Sec. 4.6.3: if the line is owned by another region, add a Dep."""
        owner = meta.owner_rid
        if owner is None or owner == rid:
            then()
            return
        owner_dl = self.dep_list_for(owner)
        if not owner_dl.contains(owner):
            # The owner already committed; the tag is stale (Sec. 5.8).
            self.stats.stale_owner_lookups += 1
            meta.owner_rid = None
            self.spill.discard(meta.line)
            then()
            return
        my_dl = self.dep_list_for(rid)
        entry = my_dl.entry(rid)
        if entry is None:
            raise SimulationError(f"no Dependence entry for active region {rid}")
        if owner in entry.deps:
            then()
            return
        if entry.deps_full:
            # Stall until a Dep slot frees (a dependency commits).
            my_dl.dep_stalls += 1
            my_dl.dep_waiters.park(
                lambda: self._capture_dependence(thread, rid, meta, then)
            )
            return
        entry.deps.add(owner)
        self.stats.dep_captures += 1
        if self.observer is not None:
            self.observer.dep_captured(self, rid, owner)
        then()

    def _ensure_slot(
        self,
        thread: AsapThread,
        rid: int,
        meta: LineMeta,
        old_snapshot: Dict[int, int],
        done: Callable[[], None],
    ) -> None:
        """Sec. 4.6.2: track the modified line in a CLPtr slot."""
        cl = self.cl_lists[thread.core_id]
        entry = cl.entry(rid)
        if entry is None:
            raise SimulationError(f"no CL entry for active region {rid}")
        slot = entry.slot_for(meta.line)
        if slot is None:
            if entry.slots_full:
                cl.slot_stalls += 1
                # Waive the coalescing distance while stalled: a pending
                # DPO must drain to free a slot (Sec. 4.6.2).
                entry.pressure = True
                self._coalescing_scan(entry, thread)
                cl.slot_waiters.park(
                    lambda: self._ensure_slot(thread, rid, meta, old_snapshot, done)
                )
                return
            entry.pressure = False
            slot = entry.add_slot(meta.line)
            if self._slots_by_line is not None:
                self._slots_by_line.setdefault(meta.line, {})[entry.rid] = (
                    thread.core_id,
                    entry.seq,
                    entry,
                    slot,
                )
            if self.observer is not None:
                self.observer.slot_opened(self, entry, meta.line)
        self._after_slot(thread, rid, entry, slot, meta, old_snapshot, done)

    def _after_slot(
        self,
        thread: AsapThread,
        rid: int,
        entry: CLEntry,
        slot: CLSlot,
        meta: LineMeta,
        old_snapshot: Dict[int, int],
        done: Callable[[], None],
    ) -> None:
        first_write = meta.owner_rid != rid
        # Per-write bookkeeping (drives coalescing and DPO staleness).
        entry.write_counter += 1
        slot.last_write_stamp = entry.write_counter
        slot.data_version += 1
        slot.pending = True
        slot.eager_backlog += 1

        def finish() -> None:
            self._coalescing_scan(entry, thread)
            done()

        if first_write:
            self._initiate_lpo(thread, rid, meta, old_snapshot, finish)
        else:
            finish()

    # -- LPO path -----------------------------------------------------------

    def _initiate_lpo(
        self,
        thread: AsapThread,
        rid: int,
        meta: LineMeta,
        old_snapshot: Dict[int, int],
        then: Callable[[], None],
    ) -> None:
        """Sec. 4.6.1: lock the line, take ownership, log the old value."""
        # Chain detection must read the owner *before* this region takes
        # ownership: an uncommitted previous writer means this log entry's
        # "old value" is that writer's never-yet-durable data, so the entry
        # is mid-chain - it carries CHAIN_BIT in the durable header and its
        # LPO is ordered behind the predecessor's (the per-line rule).
        prev_owner = meta.owner_rid
        chained = (
            prev_owner is not None
            and prev_owner != rid
            and self.dep_list_for(prev_owner).contains(prev_owner)
        )
        if chained and self.observer is not None:
            self.observer.lpo_chained(self, rid, meta.line, prev_owner)
        meta.lock_count += 1
        meta.owner_rid = rid
        line = meta.line
        slot_idx, entry_addr, record, opened, sealed = thread.log.append(
            rid, line, chained=chained
        )
        if sealed is not None:
            self._seal_record(sealed, rid)

        def issue() -> None:
            # The logged value travels to the WPQ together with the header
            # word that names it (Sec. 5.5: "ASAP sends the logged value to
            # the WPQ and the address to the LH-WPQ"): the entry becomes
            # visible to recovery exactly when its value is durable.
            if self.fast:
                payload = None
            else:
                payload = {
                    entry_addr + (w - line): old_snapshot.get(w, 0)
                    for w in words_of_line(line)
                }
                payload[record.header_addr] = rid
                payload[record.header_word_addr(slot_idx)] = record.slot_word(
                    slot_idx
                )

            def accepted(op: PersistOp) -> None:
                record.confirm(slot_idx)
                if self.observer is not None:
                    self.observer.lpo_logged(self, rid, line)
                self._lpo_accepted(op, thread)
                self._lpo_chain_advance(line)

            op = PersistOp(
                kind=LPO,
                target_line=entry_addr,
                data_line=line,
                payload=payload,
                rid=rid,
                on_complete=accepted,
            )
            self.stats.lpos_initiated += 1
            if self.observer is not None:
                self.observer.lpo_initiated(self, rid, line, entry_addr)
            self._submit_lpo_ordered(op, line)
            # Instruction execution proceeds while the LPO is in flight.
            then()

        if opened:
            # A fresh record needs an LH-WPQ entry; a full LH-WPQ stalls the
            # first write of the record (Sec. 7.4's sensitivity lever).
            self.lh_wpq_for(record.header_addr).acquire(record, issue)
        else:
            issue()

    def _submit_lpo_ordered(self, op: PersistOp, line: int) -> None:
        """Submit an LPO under the per-line chain-ordering rule.

        Same-line log entries of chained uncommitted writers may live in
        *different* records on *different* channels, so nothing in the
        memory system orders their durability - yet recovery's correctness
        depends on it: if a dependent's entry for L is durable while its
        predecessor's is not, the dependent's logged "old value" is data
        that never existed durably, and restoring it corrupts committed
        state. The rule: at most one LPO per line is in flight; later ones
        wait at the controller until it is accepted (durable) or dropped
        (its region committed). Execution never stalls - only the log
        write's durability is deferred, and the LockBit it holds keeps the
        region's own DPO (and hence its commit) behind it.

        One refinement keeps the common case free: when the in-flight
        entry sits on the *same channel* (and backpressure is FIFO), the
        channel itself already orders their acceptance - equal MC hop,
        FIFO scheduler ties, FIFO admission - so the dependent issues
        immediately and merely rides the in-flight token. Only chains
        whose entries interleave across channels (the actual hazard) pay
        a deferral.
        """
        if not self.params.ordered_line_log_persists:
            self.memory.issue_persist(op)
            return
        channel = self.memory.channel_for_line(op.target_line)
        inflight = self._line_lpo_inflight.get(line)
        if inflight is not None:
            if (
                inflight[0] == channel.index
                and self.memory.config.memory.wpq_fifo_backpressure
                and not self._line_lpo_waiters.get(line)
            ):
                inflight[1] += 1
                self.memory.issue_persist(op)
                return
            self.stats.lpo_order_delays += 1
            if self.observer is not None:
                self.observer.lpo_deferred(self, op.rid, line)
            self._line_lpo_waiters.setdefault(line, deque()).append(op)
            return
        self._line_lpo_inflight[line] = [channel.index, 1]
        self.memory.issue_persist(op)

    def _lpo_chain_advance(self, line: int) -> None:
        """One of a line's in-flight LPOs resolved; when the whole in-flight
        group has (all its entries durable or superseded), release the next
        waiter."""
        if not self.params.ordered_line_log_persists:
            return
        inflight = self._line_lpo_inflight.get(line)
        if inflight is None:
            return
        inflight[1] -= 1
        if inflight[1] > 0:
            return
        waiters = self._line_lpo_waiters.get(line)
        if waiters:
            nxt = waiters.popleft()
            if not waiters:
                del self._line_lpo_waiters[line]
            channel = self.memory.channel_for_line(nxt.target_line)
            self._line_lpo_inflight[line] = [channel.index, 1]
            self.memory.issue_persist(nxt)
        else:
            self._line_lpo_inflight.pop(line, None)

    def _seal_record(self, record: LogRecord, rid: int) -> None:
        """A filled record's header moves from the LH-WPQ to the WPQ."""
        self.lh_wpq_for(record.header_addr).release(record.header_addr)
        self._write_header(record, rid)

    def _write_header(self, record: LogRecord, rid: int) -> None:
        # Lazy payload: the set of confirmed entries may still grow while
        # this header write sits in the queue; the durable header must never
        # zero out a word naming an already-accepted LPO.
        op = PersistOp(
            kind=LOGHDR,
            target_line=record.header_addr,
            data_line=record.header_addr,
            payload=record.header_payload,
            rid=rid,
        )
        self.stats.loghdr_writes += 1
        self.memory.issue_persist(op)

    def _lpo_accepted(self, op: PersistOp, thread: AsapThread) -> None:
        """The WPQ accepted an LPO: unlock the line, run DPO dropping."""
        line = op.data_line
        meta = self.hierarchy.tags.get(line)
        if meta is not None and meta.lock_count > 0:
            meta.lock_count -= 1
        if self.params.dpo_dropping:
            # Sec. 5.1: a queued DPO for the same line holds the same bytes
            # this LPO just logged; it need not reach PM.
            dropped = self.memory.channel_for_line(line).wpq.drop_data_ops_for_line(
                line, exclude_op_id=op.op_id
            )
            self.stats.dpo_drops += dropped
        # Slots may have been waiting on the LockBit to issue their DPOs -
        # including slots of *earlier* regions that wrote the same line
        # before this op's region took ownership.
        self._try_issue_dpos_for_line(line)

    def _try_issue_dpos_for_line(self, line: int) -> None:
        if self._slots_by_line is not None:
            bucket = self._slots_by_line.get(line)
            if not bucket:
                return
            for core, seq, entry, slot in sorted(bucket.values()):
                if self._dpo_ready(entry, slot):
                    thread = self.threads.get(entry.rid >> 32)
                    if thread is not None:
                        self._initiate_dpo(entry, slot, thread)
            return
        for cl in self.cl_lists:
            for entry in list(cl.entries()):
                slot = entry.slot_for(line)
                if slot is None:
                    continue
                if self._dpo_ready(entry, slot):
                    thread = self.threads.get(entry.rid >> 32)
                    if thread is not None:
                        self._initiate_dpo(entry, slot, thread)

    # -- DPO path -----------------------------------------------------------

    def _dpo_ready(self, entry: CLEntry, slot: CLSlot) -> bool:
        """The Sec. 4.6.2 initiation policy for one slot.

        Without coalescing (the Fig. 9a ``No-Opt`` ablation) a DPO is
        initiated for every write, even while an earlier DPO for the same
        line is still in flight - that redundancy is exactly what the
        distance-4 policy exists to remove.
        """
        if not slot.pending:
            return False
        meta = self.hierarchy.tags.get(slot.line)
        if meta is not None and meta.lock_bit:
            return False  # LPO still in flight
        if not self.params.dpo_coalescing:
            return True  # ablation: eager DPO on every write
        if slot.dpo_inflight:
            return False
        if entry.state is RegionState.DONE:
            return True  # region ended: drain everything
        if entry.pressure:
            return True  # a write is stalled on a slot: drain eagerly
        distance = entry.write_counter - slot.last_write_stamp
        return distance >= self.config.asap.dpo_distance

    def _coalescing_scan(self, entry: CLEntry, thread: AsapThread) -> None:
        for slot in list(entry.slots.values()):
            if self._dpo_ready(entry, slot):
                self._initiate_dpo(entry, slot, thread)

    def _drain_entry(self, entry: CLEntry, thread: AsapThread) -> None:
        """asap_end: initiate DPOs for every slot whose LPO has completed."""
        for slot in list(entry.slots.values()):
            if self._dpo_ready(entry, slot):
                self._initiate_dpo(entry, slot, thread)

    def _initiate_dpo(self, entry: CLEntry, slot: CLSlot, thread: AsapThread) -> None:
        line = slot.line
        meta = self.hierarchy.tags.get(line)
        if self.fast:
            payload = None
        else:
            payload = {w: self.volatile.read_word(w) for w in words_of_line(line)}
        version = slot.data_version
        if not self.params.dpo_coalescing and slot.eager_backlog > 1:
            # No-Opt ablation: one DPO per write. All but the newest are
            # redundant same-data writebacks; only the newest clears the
            # slot, so they carry no completion callback.
            for _ in range(slot.eager_backlog - 1):
                self.stats.dpos_initiated += 1
                self.memory.issue_persist(
                    PersistOp(
                        kind=DPO,
                        target_line=line,
                        data_line=line,
                        payload=payload,
                        rid=entry.rid,
                    )
                )
        slot.eager_backlog = 0
        slot.dpo_inflight = True
        slot.pending = False
        if meta is not None:
            meta.dirty = False  # the writeback is on its way
        op = PersistOp(
            kind=DPO,
            target_line=line,
            data_line=line,
            payload=payload,
            rid=entry.rid,
            on_complete=lambda op: self._dpo_accepted(entry, slot, version, thread),
        )
        self.stats.dpos_initiated += 1
        if self.observer is not None:
            self.observer.dpo_initiated(self, entry.rid, line)
        self.memory.issue_persist(op)

    def _dpo_accepted(
        self, entry: CLEntry, slot: CLSlot, version: int, thread: AsapThread
    ) -> None:
        slot.dpo_inflight = False
        if slot.data_version != version:
            # The line was rewritten while the DPO was in flight; its data
            # is stale for slot-clearing purposes. Issue a fresh one.
            self.stats.dpos_reinitiated += 1
            self._retry_dpo(entry, slot, thread)
            return
        self._clear_slot(entry, slot, thread)

    def _retry_dpo(self, entry: CLEntry, slot: CLSlot, thread: AsapThread) -> None:
        """Re-issue a DPO once the slot is ready; polls on the rare path
        where the line is transiently locked by a successor region's LPO."""
        if entry.slot_for(slot.line) is not slot or slot.dpo_inflight:
            return
        if not slot.pending:
            return
        if self._dpo_ready(entry, slot) or (
            entry.state is RegionState.DONE and not self._line_locked(slot.line)
        ):
            self._initiate_dpo(entry, slot, thread)
        else:
            self.scheduler.after(50, lambda: self._retry_dpo(entry, slot, thread))

    def _line_locked(self, line: int) -> bool:
        meta = self.hierarchy.tags.get(line)
        return bool(meta and meta.lock_bit)

    def _clear_slot(self, entry: CLEntry, slot: CLSlot, thread: AsapThread) -> None:
        entry.clear_slot(slot.line)
        if self._slots_by_line is not None:
            bucket = self._slots_by_line.get(slot.line)
            if bucket is not None:
                bucket.pop(entry.rid, None)
                if not bucket:
                    del self._slots_by_line[slot.line]
        cl = self.cl_lists[thread.core_id]
        cl.slot_waiters.wake_one()
        if entry.state is RegionState.DONE and entry.drained:
            self._finish_at_l1(entry, thread)

    # -- commit machinery -----------------------------------------------------

    def _finish_at_l1(self, entry: CLEntry, thread: AsapThread) -> None:
        """Fig. 4 transition (3): all DPOs complete, no more writes."""
        rid = entry.rid
        if self.cl_lists[thread.core_id].entry(rid) is not entry:
            return  # already finished (duplicate completion)
        self.cl_lists[thread.core_id].remove_entry(rid)
        dl = self.dep_list_for(rid)
        dep_entry = dl.entry(rid)
        if dep_entry is None:
            raise SimulationError(f"region {rid} lost its Dependence entry")
        dep_entry.state = RegionState.DONE
        if dep_entry.committable:
            self._commit(rid)

    def _commit(self, rid: int) -> None:
        """Fig. 4 transition (4): free the log, clear the entry, broadcast."""
        thread = self.threads[rid >> 32]
        if self.observer is not None:
            self.observer.region_committed(self, rid)
        dl = self.dep_list_for(rid)
        dl.remove_entry(rid)
        open_record = thread.log.open_record(rid)
        records = thread.log.free(rid)
        if self.observer is not None:
            self.observer.log_freed(self, rid, records)
        for lh in self.lh_wpqs:
            lh.release_region(rid)
        if self.params.lpo_dropping:
            # Sec. 5.1: log writes of a committed region still queued in a
            # WPQ need not reach PM.
            dropped = self.memory.drop_log_ops_for_rid(rid)
            self.stats.lpo_drops += dropped
        elif open_record is not None and open_record.entries:
            # Without LPO dropping the final partial record's header is
            # written out like any sealed record's.
            self._write_header(open_record, rid)
        self.stats.commits += 1
        # Broadcast completion to every Dependence List (Sec. 4.8).
        for other_dl in self.dep_lists:
            for ready in other_dl.clear_dependency(rid):
                ready_rid = ready.rid
                self.scheduler.after(0, lambda r=ready_rid: self._commit_if_still_ready(r))
        signal = thread.commit_signals.pop(rid, None)
        if signal is not None:
            signal.fire()
        for listener in self.on_commit:
            listener(rid)
        if self.uncommitted_count() == 0:
            # Safe point to clear the Bloom filters (Sec. 5.3).
            for ch in range(len(self.dep_lists)):
                self.spill.clear_channel(ch)
            waiters, self._quiescent_waiters = self._quiescent_waiters, []
            for resume in waiters:
                self.scheduler.after(0, resume)

    def _commit_if_still_ready(self, rid: int) -> None:
        entry = self.dep_list_for(rid).entry(rid)
        if entry is not None and entry.committable:
            self._commit(rid)

    # ------------------------------------------------------------------
    # asap_fence (Sec. 5.2)
    # ------------------------------------------------------------------

    def fence(self, thread: AsapThread, done: Callable[[], None]) -> None:
        """Block until the thread's last region (and its deps) committed."""
        rid = thread.last_rid
        if rid is None or rid not in thread.commit_signals:
            done()
            return
        self.stats.fence_waits += 1
        thread.commit_signals[rid].wait(done)

    def when_quiescent(self, done: Callable[[], None]) -> None:
        """Run ``done`` once no uncommitted region remains (test harness)."""
        if self.uncommitted_count() == 0:
            self.scheduler.after(0, done)
        else:
            self._quiescent_waiters.append(done)

    # ------------------------------------------------------------------
    # context switching (Sec. 5.7)
    # ------------------------------------------------------------------

    def context_switch(self, thread: AsapThread, new_core: int, done: Callable[[], None]) -> None:
        """Migrate ``thread`` to ``new_core``.

        The thread state registers travel with the process state; the
        suspended thread's CL List entry must be *cleared* first - its
        remaining CLPtr persist operations complete on the old core - so
        the thread can safely resume on a different core (whose CL List
        knows nothing of the old entries). An In-Progress region simply
        continues afterwards: its Dependence List entry lives at the
        memory controller and is core-agnostic.
        """
        if thread.regs.nest_depth > 0 and thread.active_rid is not None:
            raise SimulationError(
                "context switch inside an atomic region is not modelled; "
                "switch between regions (the paper suspends at quantum "
                "boundaries, completing outstanding persist operations)"
            )
        saved = thread.regs.save()
        old_cl = self.cl_lists[thread.core_id]

        def try_drain() -> None:
            # Wait until every CL entry of this thread's regions cleared
            # (all their DPOs complete); they cannot gain new slots since
            # no region is active.
            mine = [
                e for e in old_cl.entries() if (e.rid >> 32) == thread.thread_id
            ]
            if mine:
                for entry in mine:
                    self._drain_entry(entry, thread)
                self.scheduler.after(25, try_drain)
                return
            thread.regs = ThreadStateRegisters.restore(saved)
            thread.core_id = new_core
            done()

        try_drain()

    # ------------------------------------------------------------------
    # LLC eviction hooks (Sec. 5.3)
    # ------------------------------------------------------------------

    def _on_llc_evict(self, meta: LineMeta, wb_op: Optional[PersistOp]) -> None:
        if meta.lock_bit:
            raise SimulationError(
                f"locked line {meta.line:#x} evicted (LPO in flight)"
            )
        owner = meta.owner_rid
        owner_active = owner is not None and self.dep_list_for(owner).contains(owner)
        if owner_active:
            self.spill.spill(meta.line, owner)
            # If the owner still tracks this line in a CLPtr slot, the
            # eviction writeback doubles as the slot's data persist.
            thread = self.threads.get(owner >> 32)
            if thread is not None:
                entry = self.cl_lists[thread.core_id].entry(owner)
                if entry is not None:
                    slot = entry.slot_for(meta.line)
                    if slot is not None and wb_op is not None and not slot.dpo_inflight:
                        version = slot.data_version
                        slot.dpo_inflight = True
                        slot.pending = False
                        wb_op.on_complete = (
                            lambda op: self._dpo_accepted(entry, slot, version, thread)
                        )

    def _on_pm_reload(self, line: int):
        """LLC miss on a persistent line: recover a spilled OwnerRID."""
        owner, extra = self.spill.lookup(line)
        if owner is None:
            return None, extra
        if not self.dep_list_for(owner).contains(owner):
            # Owner committed while the line was in memory: discard.
            self.spill.discard(line)
            return None, extra
        return owner, extra

"""Atomic-region identifiers (Sec. 5.6).

A RID is ``ThreadID`` ++ ``LocalRID``: including the thread id removes any
need to synchronise across threads when assigning ids, and the LocalRID's
LSBs select the memory-controller channel that hosts the region's
Dependence List entry.

We pack RIDs into a single int (thread id in the high bits) so they can be
stored in tag-extension fields, log headers, and WPQ entries uniformly.
"""

from __future__ import annotations

from typing import NamedTuple

_LOCAL_BITS = 32
_LOCAL_MASK = (1 << _LOCAL_BITS) - 1


class RID(NamedTuple):
    """An unpacked region id."""

    thread_id: int
    local_rid: int

    @property
    def packed(self) -> int:
        return pack_rid(self.thread_id, self.local_rid)

    def __str__(self) -> str:  # e.g. "R3.17"
        return f"R{self.thread_id}.{self.local_rid}"


def pack_rid(thread_id: int, local_rid: int) -> int:
    """Pack thread id and LocalRID into one integer."""
    if thread_id < 0 or local_rid < 0:
        raise ValueError(f"negative rid components ({thread_id}, {local_rid})")
    if local_rid > _LOCAL_MASK:
        raise ValueError(f"LocalRID {local_rid} exceeds {_LOCAL_BITS} bits")
    return (thread_id << _LOCAL_BITS) | local_rid


def unpack_rid(packed: int) -> RID:
    """Inverse of :func:`pack_rid`."""
    if packed < 0:
        raise ValueError(f"negative packed rid {packed}")
    return RID(packed >> _LOCAL_BITS, packed & _LOCAL_MASK)


def local_rid_of(packed: int) -> int:
    """Extract the LocalRID (used for channel selection)."""
    return packed & _LOCAL_MASK


def thread_id_of(packed: int) -> int:
    """Extract the ThreadID."""
    return packed >> _LOCAL_BITS


def previous_rid(packed: int):
    """The packed rid of the same thread's previous region, or None.

    Used at ``asap_begin`` to capture the control dependence on the
    thread's previous atomic region (Sec. 4.5).
    """
    local = packed & _LOCAL_MASK
    if local == 0:
        return None
    return packed - 1

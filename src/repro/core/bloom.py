"""Dependence tracking across LLC evictions (Sec. 5.3).

When a persistent line owned by an uncommitted region is evicted from the
LLC, its OwnerRID is saved in a small DRAM buffer so the dependence can
still be detected when the line is reloaded. A per-channel non-counting
Bloom filter tells the memory controller whether a reload needs to consult
the buffer at all; the filter is cleared whenever the channel's Dependence
List becomes empty (no uncommitted regions means no spilled dependences can
matter).
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import SimulationError


class BloomFilter:
    """A non-counting Bloom filter over line addresses."""

    def __init__(self, num_bits: int, num_hashes: int = 4):
        if num_bits <= 0 or num_hashes <= 0:
            raise SimulationError("bloom filter needs positive geometry")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self.insertions = 0
        self.clears = 0

    @staticmethod
    def _mix(x: int) -> int:
        """splitmix64 finalizer: breaks the linearity of line addresses."""
        x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return x ^ (x >> 31)

    def _positions(self, line: int):
        # Double hashing over two independently mixed words.
        h1 = self._mix(line)
        h2 = self._mix(h1) | 1
        for i in range(self.num_hashes):
            yield ((h1 + i * h2) & 0xFFFFFFFFFFFFFFFF) % self.num_bits

    def insert(self, line: int) -> None:
        for pos in self._positions(line):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.insertions += 1

    def maybe_contains(self, line: int) -> bool:
        """False = definitely absent; True = must check the DRAM buffer."""
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(line)
        )

    def clear(self) -> None:
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self.clears += 1


class OwnerSpillBuffer:
    """The DRAM-resident OwnerRID save area plus its Bloom filters.

    The buffer lives in DRAM (not PM) because OwnerRIDs are execution-time
    metadata only - they are never needed by recovery (Sec. 5.3).
    ``lookup`` reports whether the extra concurrent DRAM access was needed
    (a Bloom hit), which the hierarchy charges as added reload latency.
    """

    #: extra cycles for the concurrent DRAM buffer check on a Bloom hit
    LOOKUP_PENALTY = 30

    def __init__(self, num_channels: int, bits_per_channel: int, num_hashes: int):
        self._filters = [
            BloomFilter(bits_per_channel, num_hashes) for _ in range(num_channels)
        ]
        self._saved: Dict[int, int] = {}  # line -> owner rid
        self.spills = 0
        self.hits = 0
        self.false_positives = 0

    def _filter_for(self, line: int) -> BloomFilter:
        return self._filters[(line >> 6) % len(self._filters)]

    def spill(self, line: int, owner_rid: int) -> None:
        """Save an evicted line's OwnerRID (owner still uncommitted)."""
        self._saved[line] = owner_rid
        self._filter_for(line).insert(line)
        self.spills += 1

    def lookup(self, line: int):
        """Return ``(owner_rid_or_None, extra_latency_cycles)`` for a reload."""
        if not self._filter_for(line).maybe_contains(line):
            return None, 0
        owner = self._saved.get(line)
        if owner is None:
            self.false_positives += 1
        else:
            self.hits += 1
        return owner, self.LOOKUP_PENALTY

    def discard(self, line: int) -> None:
        """Drop a saved OwnerRID (owner turned out to be committed)."""
        self._saved.pop(line, None)

    def clear_channel(self, channel_index: int) -> None:
        """Clear one channel's filter (its Dependence List became empty).

        Saved entries whose owner committed are dead weight; dropping the
        filter bits makes future reloads skip the buffer check entirely.
        """
        self._filters[channel_index].clear()
        # Garbage-collect saved entries that map to this channel.
        dead = [
            line
            for line in self._saved
            if (line >> 6) % len(self._filters) == channel_index
        ]
        for line in dead:
            del self._saved[line]

    @property
    def saved_count(self) -> int:
        return len(self._saved)

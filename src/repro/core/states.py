"""The atomic-region state machine (Fig. 4).

A region has two state fields - one in its CL List entry (at the L1) and
one in its Dependence List entry (at the memory controller):

==============  ==============  =======================================
State@L1        State@MC        Meaning
==============  ==============  =======================================
IN_PROGRESS     IN_PROGRESS     between ``asap_begin`` and ``asap_end``
DONE            IN_PROGRESS     past ``asap_end``; DPOs still draining
(entry gone)    DONE            all modified lines persisted; waiting
                                for dependencies
(entry gone)    (entry gone)    committed
==============  ==============  =======================================
"""

import enum


class RegionState(enum.Enum):
    """State value stored in CL List and Dependence List entries."""

    IN_PROGRESS = "InProgress"
    DONE = "Done"

    def __str__(self) -> str:
        return self.value

"""The Dependence List (Fig. 3 (4), Secs. 4.5, 4.6.3, 4.8, 5.5).

Each memory-controller channel hosts a Dependence List (128 entries in
Table 2). An entry exists for every uncommitted atomic region and records
up to 4 outstanding dependencies (Dep slots) on other uncommitted regions:
the control dependence on the thread's previous region plus data
dependences captured when the region touches a line owned by another
region.

The Dependence List is part of the persistence domain: on a crash, active
entries are flushed to PM and recovery uses them to derive the
happens-before order in which uncommitted regions must be undone
(Sec. 5.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.common.errors import SimulationError
from repro.common.observe import SimObserver
from repro.core.states import RegionState
from repro.engine import Scheduler, WaitQueue


class DependenceEntry:
    """Dependence List entry for one uncommitted region."""

    def __init__(self, rid: int, max_deps: int):
        self.rid = rid
        self.max_deps = max_deps
        self.state = RegionState.IN_PROGRESS
        self.deps: Set[int] = set()

    @property
    def deps_full(self) -> bool:
        return len(self.deps) >= self.max_deps

    @property
    def committable(self) -> bool:
        """Fig. 4 transition (4): Done@MC and every Dep slot cleared."""
        return self.state is RegionState.DONE and not self.deps

    def snapshot(self) -> dict:
        """Persistable view (what the crash flush writes; Sec. 5.5)."""
        return {"rid": self.rid, "state": self.state.value, "deps": sorted(self.deps)}


class DependenceList:
    """One channel's Dependence List."""

    def __init__(self, channel_index: int, scheduler: Scheduler, entries: int, dep_slots: int):
        self.channel_index = channel_index
        self.max_entries = entries
        self.dep_slots = dep_slots
        self._entries: Dict[int, DependenceEntry] = {}
        #: regions waiting for a free entry (asap_begin stall)
        self.entry_waiters = WaitQueue(scheduler)
        #: accesses waiting for a free Dep slot (cleared by commits)
        self.dep_waiters = WaitQueue(scheduler)
        self.entry_stalls = 0
        self.dep_stalls = 0
        #: optional :class:`SimObserver` notified on entry open/remove
        self.observer: Optional[SimObserver] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.max_entries

    @property
    def empty(self) -> bool:
        return not self._entries

    def entry(self, rid: int) -> Optional[DependenceEntry]:
        return self._entries.get(rid)

    def contains(self, rid: int) -> bool:
        """The lookup performed before adding a Dep: a missing entry means
        the owner region has already committed (Sec. 5.8)."""
        return rid in self._entries

    def open_entry(self, rid: int) -> DependenceEntry:
        if self.full:
            raise SimulationError(
                f"Dependence List of channel {self.channel_index} is full"
            )
        if rid in self._entries:
            raise SimulationError(f"duplicate Dependence entry for rid {rid}")
        entry = DependenceEntry(rid, self.dep_slots)
        self._entries[rid] = entry
        if self.observer is not None:
            self.observer.dep_entry_opened(self, entry)
        return entry

    def remove_entry(self, rid: int) -> None:
        """Commit: clear the region's entry (Fig. 4 transition (4))."""
        if rid in self._entries:
            del self._entries[rid]
            if self.observer is not None:
                self.observer.dep_entry_removed(self, rid)
            self.entry_waiters.wake_one()

    def clear_dependency(self, committed_rid: int) -> List[DependenceEntry]:
        """Apply a commit broadcast: clear matching Dep slots.

        Returns entries that became committable as a result.
        """
        ready = []
        for entry in self._entries.values():
            if committed_rid in entry.deps:
                entry.deps.discard(committed_rid)
                self.dep_waiters.wake_all()
                if entry.committable:
                    ready.append(entry)
        return ready

    def entries(self):
        return iter(self._entries.values())

    def snapshot(self) -> List[dict]:
        """Flush-to-PM view of every active entry (crash path)."""
        return [entry.snapshot() for entry in self._entries.values()]

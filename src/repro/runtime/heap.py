"""Simulated heaps and the page table's persistent bit.

``asap_malloc()`` sets a page-table bit for the allocated data (Sec. 4.6);
when a line from such a page is cached, its PBit is set and accesses get
the full ASAP treatment. The heap is a simple bump allocator with a
free-list by size class - allocation performance is not part of any
reproduced experiment, but ``asap_free`` must exist and recycle space so
long workloads do not exhaust the simulated address range.
"""

from __future__ import annotations

from collections import defaultdict
from typing import DefaultDict, Dict, List

from repro.common.address import AddressSpace, page_base
from repro.common.errors import SimulationError
from repro.common.units import CACHE_LINE_BYTES, PAGE_BYTES


class PageTable:
    """Tracks which pages carry the persistent bit."""

    def __init__(self):
        self._persistent_pages = set()

    def mark_persistent(self, addr: int, nbytes: int) -> None:
        page = page_base(addr)
        end = addr + max(nbytes, 1)
        while page < end:
            self._persistent_pages.add(page)
            page += PAGE_BYTES

    def is_persistent(self, addr: int) -> bool:
        return page_base(addr) in self._persistent_pages

    @property
    def persistent_page_count(self) -> int:
        return len(self._persistent_pages)


class _BumpHeap:
    """Shared bump-allocator core with size-class free lists."""

    def __init__(self, base: int, size: int, name: str):
        self.name = name
        self._base = base
        self._limit = base + size
        self._brk = base
        self._free: DefaultDict[int, List[int]] = defaultdict(list)
        self.allocated_bytes = 0
        self.freed_bytes = 0
        self._sizes: Dict[int, int] = {}

    @staticmethod
    def _round(nbytes: int, align: int) -> int:
        nbytes = max(nbytes, 1)
        return (nbytes + align - 1) & ~(align - 1)

    def alloc(self, nbytes: int, align: int = CACHE_LINE_BYTES) -> int:
        """Allocate ``nbytes`` aligned to ``align`` (line-aligned by default
        so unrelated allocations never share a cache line)."""
        size = self._round(nbytes, align)
        bucket = self._free.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._round(self._brk, align)
            new_brk = addr + size
            if new_brk > self._limit:
                raise SimulationError(f"{self.name} heap exhausted")
            self._brk = new_brk
        self._sizes[addr] = size
        self.allocated_bytes += size
        return addr

    def free(self, addr: int) -> None:
        size = self._sizes.pop(addr, None)
        if size is None:
            raise SimulationError(f"{self.name}: free of unallocated {addr:#x}")
        self.freed_bytes += size
        self._free[size].append(addr)


class PersistentHeap(_BumpHeap):
    """``asap_malloc`` / ``asap_free`` over the PM address range."""

    def __init__(self, address_space: AddressSpace, page_table: PageTable):
        super().__init__(address_space.pm_base, address_space.pm_size, "PM")
        self._page_table = page_table

    def alloc(self, nbytes: int, align: int = CACHE_LINE_BYTES) -> int:
        addr = super().alloc(nbytes, align)
        self._page_table.mark_persistent(addr, nbytes)
        return addr


class VolatileHeap(_BumpHeap):
    """Ordinary DRAM allocation (intermediate, non-persistent data)."""

    def __init__(self, address_space: AddressSpace):
        # Skip the first page so address 0 is never handed out.
        super().__init__(
            address_space.dram_base + PAGE_BYTES,
            address_space.dram_size - PAGE_BYTES,
            "DRAM",
        )

"""The software-visible runtime: heaps, page table, and locks.

This is the layer the paper's Table 1 interface lives in: ``asap_init`` is
thread registration, ``asap_malloc``/``asap_free`` are
:class:`~repro.runtime.heap.PersistentHeap` operations that mark pages
persistent in the simulated page table, and ``asap_begin`` / ``asap_end`` /
``asap_fence`` are ops interpreted by the active persistence scheme.

Isolation is software's job (Sec. 2.1): :class:`~repro.runtime.locks.SimLock`
provides the critical sections the workloads nest their atomic regions in.
"""

from repro.runtime.heap import PageTable, PersistentHeap, VolatileHeap
from repro.runtime.locks import SimLock

__all__ = ["PageTable", "PersistentHeap", "VolatileHeap", "SimLock"]

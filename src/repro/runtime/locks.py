"""Simulated locks for isolation.

WAL provides atomic durability but not isolation (Sec. 2.1); workloads
guard conflicting atomic regions with these locks. A lock hand-off costs a
couple of coherence round trips, modelled as a fixed latency; contention
cost emerges naturally from queueing - which is how synchronous persist
waits inside critical sections hurt multi-threaded throughput.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.common.errors import SimulationError
from repro.engine import Scheduler

#: cycles for an uncontended acquire/release (atomic RMW on a shared line)
_LOCK_OP_COST = 30


class SimLock:
    """A FIFO mutex living in the simulated machine."""

    _next_id = 0

    def __init__(self, scheduler: Scheduler, name: Optional[str] = None):
        self._scheduler = scheduler
        self.name = name or f"lock{SimLock._next_id}"
        SimLock._next_id += 1
        self.holder: Optional[int] = None
        self._waiters: Deque[Tuple[int, Callable[[], None]]] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.observer = None

    def acquire(self, thread_id: int, done: Callable[[], None]) -> None:
        """Take the lock; ``done`` runs once the thread holds it."""
        if self.holder is None:
            self.holder = thread_id
            self.acquisitions += 1
            if self.observer is not None:
                self.observer.lock_acquired(self, thread_id)
            self._scheduler.after(_LOCK_OP_COST, done)
        else:
            if self.holder == thread_id:
                raise SimulationError(
                    f"{self.name}: thread {thread_id} re-acquiring held lock"
                )
            self.contended_acquisitions += 1
            self._waiters.append((thread_id, done))

    def release(self, thread_id: int, done: Callable[[], None]) -> None:
        """Release the lock and hand it to the oldest waiter, if any."""
        if self.holder != thread_id:
            raise SimulationError(
                f"{self.name}: thread {thread_id} releasing lock held by {self.holder}"
            )
        if self.observer is not None:
            self.observer.lock_released(self, thread_id)
        if self._waiters:
            next_thread, next_done = self._waiters.popleft()
            self.holder = next_thread
            self.acquisitions += 1
            if self.observer is not None:
                self.observer.lock_acquired(self, next_thread)
            self._scheduler.after(_LOCK_OP_COST, next_done)
        else:
            self.holder = None
        self._scheduler.after(_LOCK_OP_COST, done)

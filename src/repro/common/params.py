"""System configuration (Table 2 of the paper) and scheme parameters.

The defaults mirror the paper's evaluated system:

* 18 out-of-order cores (we model them as trace-driven in-order executors),
* 32 KB 8-way L1 (4 cycles), 1 MB 16-way L2 (14 cycles), 8 MB 16-way shared
  L3 (42 cycles),
* 2 memory controllers x 2 channels, 128 WPQ entries per channel,
* battery-backed-DRAM persistent memory by default, with a latency
  multiplier for the Fig. 10 sensitivity sweep,
* ASAP structures: 4-entry CL List per core (8 CLPtr slots each), 128-entry
  Dependence List per channel (4 Dep slots each), 128-entry LH-WPQ per
  channel, 1 KB Bloom filter per channel.

Scaled-down configurations for tests and pytest benchmarks are provided by
:func:`SystemConfig.small`.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Tuple

from repro.common.address import AddressSpace
from repro.common.errors import ConfigError
from repro.common.units import KIB, MIB


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    latency: int  # access latency in cycles

    def __post_init__(self):
        if self.size_bytes <= 0 or self.assoc <= 0 or self.latency < 0:
            raise ConfigError(f"invalid cache parameters: {self}")
        if self.size_bytes % (self.assoc * 64) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.assoc}-way 64B sets"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * 64)


@dataclass(frozen=True)
class MemoryParams:
    """Memory-controller and device timing parameters.

    ``pm_latency_multiplier`` scales both the PM read latency and the PM
    write service time, reproducing the Fig. 10 sweep (1x battery-backed
    DRAM up to 16x slower technologies).
    """

    num_controllers: int = 2
    channels_per_controller: int = 2
    wpq_entries: int = 128  # per channel
    dram_read_latency: int = 150  # cycles, row-buffer-agnostic service time
    dram_write_service: int = 60  # cycles per line drained to DRAM
    pm_read_latency: int = 150  # battery-backed DRAM baseline
    pm_write_service: int = 60  # cycles per line drained from the WPQ to PM
    pm_latency_multiplier: float = 1.0
    #: one-way latency from the L1 to a memory controller, charged to persist
    #: operations travelling to the WPQ.
    mc_hop_latency: int = 40
    #: Memory controllers prioritise reads: queued writes drain at full rate
    #: only once WPQ occupancy reaches this watermark; below it, entries
    #: linger and drain lazily. The lingering window is what makes LPO/DPO
    #: dropping (Sec. 5.1) effective.
    wpq_drain_watermark: int = 8
    #: below the watermark, one entry drains every
    #: ``pm_write_service * wpq_lazy_drain_multiplier`` cycles
    wpq_lazy_drain_multiplier: int = 16
    #: NUMA (Sec. 7.3): channel indices on a remote node - their MC hop
    #: and PM write service are scaled by ``numa_remote_multiplier``
    numa_remote_channels: tuple = ()
    #: latency multiplier applied to remote channels' persist path
    numa_remote_multiplier: float = 1.0
    #: WPQ backpressure admits ops in arrival order and exposes them to
    #: LPO/DPO dropping. False restores the pre-fix model in which a
    #: backpressured persist op could be overtaken by later same-line ops
    #: and escape dropping - the cross-thread commit-ordering hazard the
    #: crash fuzzer demonstrates. Keep True outside regression tests.
    wpq_fifo_backpressure: bool = True
    #: Miss Status Holding Registers per cache array (each core's L1 and
    #: L2, and the shared LLC). A primary LLC miss allocates a register at
    #: every level it missed in and starts one memory fetch; secondary
    #: misses to the same line merge into that fetch and are replayed, in
    #: arrival order, when the fill completes; a primary miss that finds
    #: no free register stalls the requesting core until a fill frees one.
    #: ``1`` reproduces a classic blocking cache (one outstanding fetch
    #: system-wide - the fig10-overlap experiment's comparator). ``0``
    #: selects the legacy pre-MSHR functional model (lines installed
    #: immediately at access time, no outstanding-miss tracking), kept for
    #: regression demos recorded under the old timing.
    mshrs_per_cache: int = 16
    #: Channels drain their WPQs concurrently - each PM device services
    #: writes independently. False serializes write service across all
    #: channels behind a single global bus token (the legacy lockstep
    #: drain model, kept as the fig10-overlap experiment's comparator).
    overlapped_drains: bool = True

    def __post_init__(self):
        if self.num_controllers <= 0 or self.channels_per_controller <= 0:
            raise ConfigError("need at least one controller and channel")
        if self.wpq_entries <= 0:
            raise ConfigError("WPQ must have at least one entry")
        if self.pm_latency_multiplier <= 0:
            raise ConfigError("pm_latency_multiplier must be positive")
        if self.mshrs_per_cache < 0:
            raise ConfigError(
                "mshrs_per_cache must be >= 0 (0 selects the legacy "
                "blocking hierarchy)"
            )

    @property
    def num_channels(self) -> int:
        return self.num_controllers * self.channels_per_controller

    @property
    def effective_pm_read_latency(self) -> int:
        return max(1, round(self.pm_read_latency * self.pm_latency_multiplier))

    @property
    def effective_pm_write_service(self) -> int:
        return max(1, round(self.pm_write_service * self.pm_latency_multiplier))


@dataclass(frozen=True)
class AsapParams:
    """Sizes of the ASAP hardware structures and optimization switches.

    The three optimization flags map to the Fig. 9a ablation:

    * ``ASAP-No-Opt``: all three off,
    * ``ASAP+C``: only ``dpo_coalescing``,
    * ``ASAP+C+LP``: ``dpo_coalescing`` + ``lpo_dropping``,
    * ``ASAP`` (full): all three on.
    """

    cl_list_entries: int = 4  # per core
    clptr_slots: int = 8  # per CL List entry
    dependence_list_entries: int = 128  # per channel
    dep_slots: int = 4  # per Dependence List entry
    lh_wpq_entries: int = 128  # per channel
    bloom_filter_bits: int = 8 * KIB  # 1 KB per channel
    bloom_hashes: int = 4
    #: DPO initiation distance: a DPO is initiated once this many *other*
    #: cache lines have been updated since the last write to the line
    #: (Sec. 4.6.2; "the number four is empirically determined").
    dpo_distance: int = 4
    log_data_entries_per_record: int = 7  # Fig. 5a: 1 header + 7 entries
    initial_log_entries: int = 4096  # per-thread circular buffer entries
    lpo_dropping: bool = True
    dpo_coalescing: bool = True
    dpo_dropping: bool = True
    #: Same-line log persists become durable in dependence-chain order: a
    #: region's LPO for line L is held at the memory controller until every
    #: earlier uncommitted writer of L has a durable log entry for L. False
    #: restores the pre-fix model in which chained entries could persist
    #: out of order across channels, leaving recovery an incomplete undo
    #: chain whose restore corrupts committed state (the ROADMAP repro at
    #: crash cycle 1085). Keep True outside regression tests; see
    #: docs/RECOVERY.md.
    ordered_line_log_persists: bool = True

    def __post_init__(self):
        if self.cl_list_entries <= 0 or self.clptr_slots <= 0:
            raise ConfigError("CL List geometry must be positive")
        if self.dependence_list_entries <= 0 or self.dep_slots <= 0:
            raise ConfigError("Dependence List geometry must be positive")
        if self.lh_wpq_entries <= 0:
            raise ConfigError("LH-WPQ must have at least one entry")
        if self.dpo_distance < 1:
            raise ConfigError("dpo_distance must be >= 1")
        if self.log_data_entries_per_record < 1:
            raise ConfigError("log records need at least one data entry")

    def ablation(self, name: str) -> "AsapParams":
        """Return a copy configured for one of the Fig. 9a ablation points.

        Args:
            name: one of ``"no_opt"``, ``"+C"``, ``"+C+LP"``, ``"full"``.
        """
        table = {
            "no_opt": dict(lpo_dropping=False, dpo_coalescing=False, dpo_dropping=False),
            "+C": dict(lpo_dropping=False, dpo_coalescing=True, dpo_dropping=False),
            "+C+LP": dict(lpo_dropping=True, dpo_coalescing=True, dpo_dropping=False),
            "full": dict(lpo_dropping=True, dpo_coalescing=True, dpo_dropping=True),
        }
        if name not in table:
            raise ConfigError(f"unknown ablation {name!r}; use {sorted(table)}")
        return replace(self, **table[name])


@dataclass(frozen=True)
class CoreParams:
    """Trace-driven core model parameters.

    The paper's cores are 5-wide out-of-order; our executor is trace driven
    and charges every op serially, so ``base_op_cost`` plays the role of an
    effective CPI for the non-memory work between memory references.
    """

    base_op_cost: int = 1  # cycles charged per non-memory op bundle
    lock_spin_recheck: int = 20  # cycles between lock re-acquisition attempts

    def __post_init__(self):
        if self.base_op_cost < 0 or self.lock_spin_recheck <= 0:
            raise ConfigError(f"invalid core parameters: {self}")


@dataclass(frozen=True)
class SystemConfig:
    """Full machine description; the Table 2 configuration by default."""

    num_cores: int = 18
    l1: CacheParams = field(default_factory=lambda: CacheParams(32 * KIB, 8, 4))
    l2: CacheParams = field(default_factory=lambda: CacheParams(1 * MIB, 16, 14))
    l3: CacheParams = field(default_factory=lambda: CacheParams(8 * MIB, 16, 42))
    memory: MemoryParams = field(default_factory=MemoryParams)
    asap: AsapParams = field(default_factory=AsapParams)
    core: CoreParams = field(default_factory=CoreParams)
    address_space: AddressSpace = field(default_factory=AddressSpace)

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ConfigError("need at least one core")

    @staticmethod
    def small(
        num_cores: int = 4,
        wpq_entries: int = 16,
        pm_latency_multiplier: float = 1.0,
        **asap_overrides,
    ) -> "SystemConfig":
        """A scaled-down configuration for tests and pytest benchmarks.

        Smaller caches make capacity effects visible with short workloads and
        a smaller WPQ makes persist-op backpressure visible without running
        millions of operations.
        """
        return SystemConfig(
            num_cores=num_cores,
            l1=CacheParams(4 * KIB, 4, 4),
            l2=CacheParams(16 * KIB, 8, 14),
            l3=CacheParams(64 * KIB, 8, 42),
            memory=MemoryParams(
                num_controllers=2,
                channels_per_controller=1,
                wpq_entries=wpq_entries,
                pm_latency_multiplier=pm_latency_multiplier,
            ),
            asap=replace(
                AsapParams(
                    dependence_list_entries=32,
                    lh_wpq_entries=32,
                    initial_log_entries=1024,
                ),
                **asap_overrides,
            ),
        )

    def with_pm_multiplier(self, multiplier: float) -> "SystemConfig":
        """Return a copy with a scaled persistent-memory latency (Fig. 10)."""
        return replace(
            self, memory=replace(self.memory, pm_latency_multiplier=multiplier)
        )

    def with_asap(self, asap: AsapParams) -> "SystemConfig":
        """Return a copy with different ASAP structure parameters."""
        return replace(self, asap=asap)


# -- sweepable axes ----------------------------------------------------------
#
# The design-space exploration subsystem (:mod:`repro.explore`) names
# configuration fields as *axes*. The registry below is derived from the
# real dataclasses, so an axis name that drifts from the parameter
# definitions fails at sweep-construction time, not after hours of runs.

#: evaluation shorthand accepted by sweep specs -> canonical "group.field"
AXIS_ALIASES: Dict[str, str] = {
    "dep_list_entries": "asap.dependence_list_entries",
    "pm_write_latency": "memory.pm_write_service",
    "bloom_bits": "asap.bloom_filter_bits",
    "cores": "system.num_cores",
    "threads": "workload.num_threads",
    "mshrs": "memory.mshrs_per_cache",
}


@dataclass(frozen=True)
class AxisTarget:
    """One sweepable configuration field."""

    name: str  # canonical "group.field" path
    group: str  # "asap" | "memory" | "core" | "workload" | "system"
    field: str  # attribute on the group's dataclass
    kind: type  # int, float, or bool
    default: object  # the dataclass default (documentation + baselines)


_AXIS_REGISTRY: Dict[str, AxisTarget] = {}


def _scalar_fields(cls, group: str, defaults) -> Dict[str, AxisTarget]:
    out = {}
    for f in dataclasses.fields(cls):
        default = getattr(defaults, f.name)
        if type(default) not in (int, float, bool):
            continue
        name = f"{group}.{f.name}"
        out[name] = AxisTarget(
            name=name,
            group=group,
            field=f.name,
            kind=type(default),
            default=default,
        )
    return out


def sweepable_axes() -> Dict[str, AxisTarget]:
    """Canonical axis name -> :class:`AxisTarget`, for every scalar field of
    :class:`AsapParams`, :class:`MemoryParams`, :class:`CoreParams`,
    ``WorkloadParams``, plus ``system.num_cores`` and the service-only
    fields of ``ServiceParams`` (group ``service``). Tuple- and
    object-valued fields (NUMA channel sets, the address space) are not
    sweepable."""
    if not _AXIS_REGISTRY:
        # WorkloadParams lives in repro.workloads.base, which imports the
        # simulator (and hence this module); resolve it lazily.
        from repro.workloads.base import WorkloadParams

        from repro.workloads.service import ServiceParams

        _AXIS_REGISTRY.update(_scalar_fields(AsapParams, "asap", AsapParams()))
        _AXIS_REGISTRY.update(_scalar_fields(MemoryParams, "memory", MemoryParams()))
        _AXIS_REGISTRY.update(_scalar_fields(CoreParams, "core", CoreParams()))
        _AXIS_REGISTRY.update(
            _scalar_fields(WorkloadParams, "workload", WorkloadParams())
        )
        # service-only knobs (offered_load, skew, ...) get their own group:
        # applying one to plain WorkloadParams upgrades them to ServiceParams
        shared = {f.name for f in dataclasses.fields(WorkloadParams)}
        _AXIS_REGISTRY.update(
            {
                name: target
                for name, target in _scalar_fields(
                    ServiceParams, "service", ServiceParams()
                ).items()
                if target.field not in shared
            }
        )
        _AXIS_REGISTRY["system.num_cores"] = AxisTarget(
            name="system.num_cores",
            group="system",
            field="num_cores",
            kind=int,
            default=SystemConfig.__dataclass_fields__["num_cores"].default,
        )
    return _AXIS_REGISTRY


def resolve_axis(name: str) -> AxisTarget:
    """Resolve an axis name - canonical ``group.field``, a bare field name
    (when unambiguous), or an :data:`AXIS_ALIASES` shorthand - to its
    target. Unknown or ambiguous names raise :class:`ConfigError` naming
    the nearest valid axes, so a sweep-spec typo fails fast."""
    registry = sweepable_axes()
    if name in registry:
        return registry[name]
    if name in AXIS_ALIASES:
        return registry[AXIS_ALIASES[name]]
    bare = [t for t in registry.values() if t.field == name]
    if len(bare) == 1:
        return bare[0]
    if len(bare) > 1:
        raise ConfigError(
            f"ambiguous axis {name!r}: could be "
            + " or ".join(sorted(t.name for t in bare))
        )
    candidates = sorted(set(registry) | set(AXIS_ALIASES))
    near = difflib.get_close_matches(name, candidates, n=3, cutoff=0.5)
    hint = f"; did you mean {', '.join(near)}?" if near else ""
    raise ConfigError(f"unknown axis {name!r}{hint}")


def apply_axis_values(
    config: "SystemConfig",
    params,
    values: Mapping[str, object],
) -> Tuple["SystemConfig", object]:
    """Return ``(config, params)`` copies with the given axis values applied.

    Keys are resolved through :func:`resolve_axis`; the rebuilt dataclasses
    re-run their ``__post_init__`` validation, so an out-of-range value
    (``lh_wpq_entries=0``) raises :class:`ConfigError` immediately.
    """
    by_group: Dict[str, Dict[str, object]] = {}
    for name, value in values.items():
        target = resolve_axis(name)
        if isinstance(value, bool):
            ok = target.kind is bool
        else:
            ok = not target.kind is bool and isinstance(value, (int, float))
        if not ok:
            raise ConfigError(
                f"axis {target.name} expects {target.kind.__name__}, "
                f"got {value!r}"
            )
        if target.kind is int and not isinstance(value, int):
            raise ConfigError(
                f"axis {target.name} expects int, got {value!r}"
            )
        by_group.setdefault(target.group, {})[target.field] = value
    if "asap" in by_group:
        config = replace(config, asap=replace(config.asap, **by_group["asap"]))
    if "memory" in by_group:
        config = replace(config, memory=replace(config.memory, **by_group["memory"]))
    if "core" in by_group:
        config = replace(config, core=replace(config.core, **by_group["core"]))
    if "system" in by_group:
        config = replace(config, **by_group["system"])
    if "workload" in by_group:
        if params is None:
            raise ConfigError(
                "sweep names workload axes but no WorkloadParams was given: "
                + ", ".join(sorted(by_group["workload"]))
            )
        params = replace(params, **by_group["workload"])
    if "service" in by_group:
        from repro.workloads.service import ServiceParams

        if params is None:
            raise ConfigError(
                "sweep names service axes but no WorkloadParams was given: "
                + ", ".join(sorted(by_group["service"]))
            )
        if isinstance(params, ServiceParams):
            params = replace(params, **by_group["service"])
        else:
            params = ServiceParams.from_base(params, **by_group["service"])
    return config, params

"""Exception hierarchy for the ASAP reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the simulator raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent :class:`~repro.common.params.SystemConfig`."""


class SimulationError(ReproError):
    """An internal invariant of the simulator was violated at run time."""


class LogOverflowError(ReproError):
    """A thread's circular undo-log buffer ran out of space.

    The paper handles this with a hardware exception whose handler allocates
    more log space (Sec. 4.4); the runtime layer catches this exception and
    grows the buffer, so user code normally never sees it.
    """

    def __init__(self, thread_id: int, capacity_entries: int):
        self.thread_id = thread_id
        self.capacity_entries = capacity_entries
        super().__init__(
            f"undo log of thread {thread_id} overflowed "
            f"({capacity_entries} entries)"
        )


class RecoveryError(ReproError):
    """The post-crash recovery procedure found corrupt or impossible state."""


class DeadlockError(SimulationError):
    """Every runnable thread is blocked and no event can unblock them."""


class AnalysisError(ReproError):
    """The correctness-analysis tooling itself could not proceed.

    Raised by :mod:`repro.analysis` when a lint run cannot be completed
    (e.g. every lint thread is functionally blocked) - distinct from a
    *violation*, which is a finding about the analysed program.
    """


class SanitizerError(SimulationError):
    """A runtime persistency invariant was violated (sanitizer finding).

    Carries the structured :class:`~repro.analysis.rules.Violation` record
    that triggered it, so tests and tooling can match on the exact rule ID
    instead of parsing the message.
    """

    def __init__(self, violation):
        self.violation = violation
        super().__init__(f"[{violation.rule_id}] {violation.message}")

"""Shared foundations: configuration, units, addresses, and error types.

Everything in this package is dependency-free and imported by every other
subpackage. Keep it small and stable.
"""

from repro.common.errors import (
    ReproError,
    AnalysisError,
    ConfigError,
    LogOverflowError,
    SanitizerError,
    SimulationError,
    RecoveryError,
)
from repro.common.observe import SimObserver
from repro.common.units import (
    CACHE_LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    KIB,
    MIB,
    GIB,
    PAGE_BYTES,
)
from repro.common.address import (
    line_base,
    line_offset,
    line_index,
    page_base,
    words_of_line,
    split_words,
    AddressSpace,
)
from repro.common.params import (
    CacheParams,
    MemoryParams,
    AsapParams,
    CoreParams,
    SystemConfig,
)

__all__ = [
    "ReproError",
    "AnalysisError",
    "ConfigError",
    "LogOverflowError",
    "SanitizerError",
    "SimulationError",
    "RecoveryError",
    "SimObserver",
    "CACHE_LINE_BYTES",
    "WORD_BYTES",
    "WORDS_PER_LINE",
    "KIB",
    "MIB",
    "GIB",
    "PAGE_BYTES",
    "line_base",
    "line_offset",
    "line_index",
    "page_base",
    "words_of_line",
    "split_words",
    "AddressSpace",
    "CacheParams",
    "MemoryParams",
    "AsapParams",
    "CoreParams",
    "SystemConfig",
]

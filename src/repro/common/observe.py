"""Lightweight observation hooks for the simulated machine.

The core and memory layers each expose an optional ``observer`` attribute
(default ``None``) and notify it at a handful of well-defined event points.
:class:`SimObserver` is the no-op base: every method does nothing, so the
hot paths pay one ``is not None`` test when observation is off and a plain
method call when it is on.

The runtime invariant sanitizer (:mod:`repro.analysis.sanitizer`) is the
primary consumer; tests may subclass this to record event traces. This
module lives in :mod:`repro.common` so that :mod:`repro.core` and
:mod:`repro.mem` can reference the protocol without importing the analysis
package (which imports them).
"""

from __future__ import annotations


class SimObserver:
    """No-op base class for machine-event observers.

    Subclass and override the events of interest. Handlers must not mutate
    the structures they are handed; they exist to *check* and *account*.
    """

    # -- write pending queue (mem/wpq.py) ---------------------------------

    def wpq_submitted(self, wpq, op) -> None:
        """``op`` arrived at ``wpq`` (may be backpressured before entry).

        Submission order per channel is the arrival order the FIFO
        admission guarantee (``wpq_fifo_backpressure``) turns into an
        acceptance order; the race detector keys its per-channel
        happens-before edges off this event."""

    def wpq_accepted(self, wpq, op) -> None:
        """``op`` entered ``wpq`` (the ADR durability point)."""

    def wpq_drained(self, wpq, op) -> None:
        """``op`` reached the persistent medium."""

    def wpq_dropped(self, wpq, op) -> None:
        """``op`` was removed before drain (LPO/DPO dropping, Sec. 5.1)."""

    # -- cache hierarchy (mem/hierarchy.py) -------------------------------

    def line_evicted(self, meta, wb_op) -> None:
        """A persistent line left the LLC; ``wb_op`` is its writeback
        persist op (None when the line was clean)."""

    def mshr_allocated(self, hierarchy, line, core_id) -> None:
        """A primary LLC miss allocated an MSHR and started a memory
        fetch for ``line`` on behalf of ``core_id``."""

    def mshr_merged(self, hierarchy, line, core_id) -> None:
        """A secondary miss from ``core_id`` merged into the in-flight
        fetch for ``line`` (no second memory read is issued)."""

    def mshr_filled(self, hierarchy, line, waiters) -> None:
        """The fetch for ``line`` completed: the line was installed and
        the ``waiters`` queued requesters' completions replayed."""

    def mshr_stalled(self, hierarchy, line, core_id) -> None:
        """A primary miss found every needed MSHR file full; ``core_id``
        stalls until an in-flight fill frees a register."""

    # -- dependence list (core/dependence.py) -----------------------------

    def dep_entry_opened(self, dep_list, entry) -> None:
        """A Dependence List entry was created for a new region."""

    def dep_entry_removed(self, dep_list, rid) -> None:
        """A Dependence List entry was cleared (region committed)."""

    # -- ASAP engine (core/engine.py) -------------------------------------

    def region_begun(self, engine, thread, rid) -> None:
        """A top-level ``asap_begin`` allocated CL/Dependence entries."""

    def region_ended(self, engine, thread, rid) -> None:
        """A top-level ``asap_end`` retired (commit is still pending)."""

    def dep_captured(self, engine, rid, owner) -> None:
        """Region ``rid`` recorded a dependence on region ``owner``."""

    def slot_opened(self, engine, entry, line) -> None:
        """A CLPtr slot started tracking ``line`` for ``entry``'s region."""

    def lpo_initiated(self, engine, rid, line, entry_addr) -> None:
        """A Log Persist Operation for ``line`` was sent towards a WPQ."""

    def lpo_deferred(self, engine, rid, line) -> None:
        """An LPO was held at the controller behind an earlier uncommitted
        writer's in-flight LPO for the same line (the per-line
        chain-ordering rule, ``AsapParams.ordered_line_log_persists``)."""

    def lpo_chained(self, engine, rid, line, prev_owner) -> None:
        """Region ``rid``'s log entry for ``line`` is mid-chain: its
        logged "old value" is uncommitted data of ``prev_owner``. Fired at
        LPO initiation whether or not ``ordered_line_log_persists`` will
        actually order the two entries' durability - the race detector
        uses it to enumerate conflicting same-line log persists."""

    def lpo_logged(self, engine, rid, line) -> None:
        """The WPQ accepted the LPO: ``line``'s old value is durable."""

    def dpo_initiated(self, engine, rid, line) -> None:
        """A Data Persist Operation for ``line`` was sent towards a WPQ."""

    def region_committed(self, engine, rid) -> None:
        """Fig. 4 transition (4): the region became durable."""

    def log_freed(self, engine, rid, records) -> None:
        """The committed region's log records returned to the free pool."""

    # -- redo commit markers (persist/asap_redo.py) ------------------------

    def marker_issued(self, scheme, rid, seq, op) -> None:
        """Region ``rid``'s durable commit marker (commit sequence ``seq``)
        was sent towards a WPQ; ``op`` is the marker persist op."""

    def marker_accepted(self, scheme, rid, seq, op) -> None:
        """The WPQ accepted region ``rid``'s commit marker: the region is
        durably committed and redo recovery will replay it."""

    # -- locks (runtime/locks.py) ------------------------------------------

    def lock_acquired(self, lock, thread_id) -> None:
        """``thread_id`` now holds ``lock`` (uncontended grant or FIFO
        hand-off). Together with :meth:`lock_released` this reconstructs
        the synchronizes-with order the race detector attributes
        cross-thread execution ordering to."""

    def lock_released(self, lock, thread_id) -> None:
        """``thread_id`` released ``lock``."""

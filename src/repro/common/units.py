"""Size and granularity constants used across the simulator."""

#: Bytes per cache line. All logging, persistence, and traffic accounting in
#: the paper is done at cache-line granularity (64 B, Sec. 4.6).
CACHE_LINE_BYTES = 64

#: Bytes per machine word. The functional memory images store integers at
#: word granularity.
WORD_BYTES = 8

#: Words in one cache line.
WORDS_PER_LINE = CACHE_LINE_BYTES // WORD_BYTES

#: Bytes per virtual-memory page; the persistent bit lives in the page table
#: at this granularity (Sec. 4.6).
PAGE_BYTES = 4096

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

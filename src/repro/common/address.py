"""Address arithmetic helpers and the simulated physical address map.

Addresses are plain Python integers. The address space is split into a DRAM
region and a persistent-memory (PM) region; the
:class:`~repro.runtime.heap.PersistentHeap` allocates from the PM region and
marks pages persistent in the simulated page table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import CACHE_LINE_BYTES, PAGE_BYTES, WORD_BYTES, WORDS_PER_LINE


def line_base(addr: int) -> int:
    """Return the address of the first byte of ``addr``'s cache line."""
    return addr & ~(CACHE_LINE_BYTES - 1)


def line_offset(addr: int) -> int:
    """Return the byte offset of ``addr`` within its cache line."""
    return addr & (CACHE_LINE_BYTES - 1)


def line_index(addr: int) -> int:
    """Return the global index of ``addr``'s cache line."""
    return addr >> 6  # log2(CACHE_LINE_BYTES)


def page_base(addr: int) -> int:
    """Return the address of the first byte of ``addr``'s page."""
    return addr & ~(PAGE_BYTES - 1)


def words_of_line(addr: int):
    """Yield the word-aligned addresses belonging to ``addr``'s cache line."""
    base = line_base(addr)
    for i in range(WORDS_PER_LINE):
        yield base + i * WORD_BYTES


def split_words(addr: int, nbytes: int):
    """Yield word-aligned addresses covering ``[addr, addr + nbytes)``.

    The functional images operate on 8-byte words; a byte range is modelled
    as touching every word it overlaps.
    """
    if nbytes <= 0:
        return
    start = addr & ~(WORD_BYTES - 1)
    end = addr + nbytes
    word = start
    while word < end:
        yield word
        word += WORD_BYTES


@dataclass(frozen=True)
class AddressSpace:
    """The simulated physical address map.

    Attributes:
        dram_base: first byte of volatile DRAM.
        dram_size: bytes of DRAM.
        pm_base: first byte of persistent memory.
        pm_size: bytes of persistent memory.
    """

    dram_base: int = 0x0000_0000_0000
    dram_size: int = 1 << 36  # 64 GiB of simulated DRAM addresses
    pm_base: int = 0x1000_0000_0000
    pm_size: int = 1 << 36  # 64 GiB of simulated PM addresses

    def is_pm(self, addr: int) -> bool:
        """True when ``addr`` falls inside the persistent-memory range."""
        return self.pm_base <= addr < self.pm_base + self.pm_size

    def is_dram(self, addr: int) -> bool:
        """True when ``addr`` falls inside the DRAM range."""
        return self.dram_base <= addr < self.dram_base + self.dram_size

    def contains(self, addr: int) -> bool:
        """True when ``addr`` is mapped at all."""
        return self.is_pm(addr) or self.is_dram(addr)

"""ASAP-Redo: asynchronous commit applied to redo logging (Fig. 2c).

The paper builds ASAP on undo logging but states that "the principles
underlying our design can also by applied to enable asynchronous commit
for redo logging" and sketches the required rule in Fig. 2c: *the later
region's in-place updates (DPOs) are delayed until the earlier region's
log persists (LPOs complete)*. This module is that design, as an
extension beyond the paper's evaluated system:

* writes log their **new** values (redo LPOs), asynchronously; a line
  rewritten after its LPO is re-logged with its final value at region end;
* ``asap_end`` retires immediately - asynchronous commit;
* control and data dependencies are tracked exactly as in undo-ASAP
  (OwnerRID tags + per-channel Dependence Lists);
* a region becomes durable ("commits") once all its LPOs are in the
  persistence domain **and** every region it depends on has committed;
  a durable **commit marker** ``[rid, commit_seq]`` is then persisted -
  redo recovery replays only marked regions, in marker order;
* in-place updates happen lazily after the marker persists (off the
  critical path); the log is reclaimed once they are in the persistence
  domain;
* uncommitted data never reaches its home address: eviction writebacks of
  lines owned by uncommitted regions are suppressed (the log already
  holds the data), and recovery simply ignores unmarked regions.

Simplifications vs a full hardware proposal (documented, not hidden): the
commit-sequence counter is global (one extra broadcast at commit), and
log-record headers piggyback on LPO payloads instead of a dedicated
LH-WPQ (the undo engine models that structure already).

The per-line log-persist ordering rule of the undo schemes
(``AsapParams.ordered_line_log_persists``; docs/RECOVERY.md) is **not
applicable** here and is deliberately not wired in: redo recovery replays
only regions whose commit marker persisted, and a marker is issued only
after every LPO of the region has been *accepted* and every dependency
has committed - so a replayed entry's logged (new) value is durable by
construction, and unmarked regions' entries are ignored no matter in
what order they persisted. There is no cross-region undo chain to keep
complete.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.common.address import line_base, words_of_line
from repro.common.errors import SimulationError
from repro.common.units import CACHE_LINE_BYTES
from repro.core.dependence import DependenceList
from repro.core.log import UndoLog
from repro.core.rid import local_rid_of, pack_rid, previous_rid
from repro.core.states import RegionState
from repro.engine import Signal
from repro.mem.wpq import DPO, LOGHDR, LPO, PersistOp
from repro.persist.base import PersistenceScheme, SchemeThread

#: marker slots per thread (circular; reuse is safe because markers of
#: freed logs are no-ops at recovery)
_MARKER_SLOTS = 64

#: persist-op kind for commit markers (counted as log-header traffic)
MARKER = LOGHDR


class _RedoRegion:
    """Commit-tracking state of one in-flight region."""

    __slots__ = (
        "rid",
        "state",
        "outstanding_lpos",
        "lines",
        "rewritten",
        "values",
        "committing",
    )

    def __init__(self, rid: int):
        self.rid = rid
        self.state = RegionState.IN_PROGRESS
        self.outstanding_lpos = 0
        self.lines: Set[int] = set()
        self.rewritten: Set[int] = set()
        #: True once the commit marker has been issued; the region stays in
        #: its Dependence List until the marker is durably accepted
        self.committing = False
        #: line -> the region's own logged words; the in-place update must
        #: install *these*, never the current cache line, which may hold a
        #: later uncommitted region's data (redo's no-force rule)
        self.values: Dict[int, Dict[int, int]] = {}


class _RedoThread(SchemeThread):
    def __init__(self, thread_id: int, core_id: int, log: UndoLog, marker_base: int):
        super().__init__(thread_id, core_id)
        self.log = log
        self.marker_base = marker_base
        self.active: Optional[_RedoRegion] = None
        self.last_rid: Optional[int] = None
        self.commit_signals: Dict[int, Signal] = {}


class AsapRedoLogging(PersistenceScheme):
    """Asynchronous-commit redo logging (the Fig. 2c extension)."""

    name = "asap_redo"

    #: redo variant: marker gating replaces LockBit log-before-data (no
    #: in-place writes before commit) and the per-line chain rule
    ORDERING_EDGES = frozenset({"wpq-fifo", "marker-gate", "dep-commit-gate"})

    #: cycles committed data may linger cached before its in-place
    #: writeback is attempted (shared lazy-window rationale with HWRedo)
    REDO_DPO_DELAY = 1500

    def __init__(self):
        super().__init__()
        self.dep_lists: List[DependenceList] = []
        self.regions: Dict[int, _RedoRegion] = {}
        self._commit_seq = 0
        self._last_writer: Dict[int, int] = {}
        self.dpos_filtered = 0
        self.wbs_suppressed = 0
        self.reads_redirected = 0
        self._threads: Dict[int, _RedoThread] = {}

    # -- lifecycle -------------------------------------------------------------

    def attach(self, machine) -> None:
        super().attach(machine)
        params = machine.config.asap
        self.dep_lists = [
            DependenceList(
                ch,
                machine.scheduler,
                params.dependence_list_entries,
                params.dep_slots,
            )
            for ch in range(machine.config.memory.num_channels)
        ]
        machine.hierarchy.evict_hook = self._on_evict
        machine.hierarchy.reload_hook = None

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        params = self.machine.config.asap
        stride = (1 + params.log_data_entries_per_record) * 64
        num_records = max(
            1, params.initial_log_entries // params.log_data_entries_per_record
        )
        base = self.machine.heap.alloc(num_records * stride)
        log = UndoLog(
            thread_id,
            base,
            num_records,
            params.log_data_entries_per_record,
            grow_fn=self.machine.heap.alloc,
        )
        marker_base = self.machine.heap.alloc(_MARKER_SLOTS * CACHE_LINE_BYTES)
        thread = _RedoThread(thread_id, core_id, log, marker_base)
        self._threads[thread_id] = thread
        return thread

    def dep_list_for(self, rid: int) -> DependenceList:
        return self.dep_lists[local_rid_of(rid) % len(self.dep_lists)]

    # -- regions -----------------------------------------------------------------

    def begin(self, thread: _RedoThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth > 1:
            done()
            return
        thread.regions_begun += 1
        rid = pack_rid(thread.thread_id, thread.regions_begun)
        dl = self.dep_list_for(rid)
        if dl.full:
            thread.nest_depth -= 1
            thread.regions_begun -= 1
            dl.entry_stalls += 1
            dl.entry_waiters.park(lambda: self.begin(thread, done))
            return
        entry = dl.open_entry(rid)
        prev = previous_rid(rid)
        if prev is not None and self.dep_list_for(prev).contains(prev):
            entry.deps.add(prev)
            if self.observer is not None:
                self.observer.dep_captured(self, rid, prev)
        region = _RedoRegion(rid)
        self.regions[rid] = region
        thread.active = region
        thread.last_rid = rid
        thread.commit_signals[rid] = Signal(self.machine.scheduler)
        if self.observer is not None:
            self.observer.region_begun(self, thread, rid)
        done()

    def end(self, thread: _RedoThread, done: Callable[[], None]) -> None:
        if thread.nest_depth <= 0:
            raise SimulationError("end without begin")
        thread.nest_depth -= 1
        if thread.nest_depth > 0:
            done()
            return
        region = thread.active
        if region is None:
            raise SimulationError("no active region at asap_end")
        thread.active = None
        # Final-value re-logs for rewritten lines, still asynchronous.
        for line in sorted(region.rewritten):
            self._issue_lpo(thread, region, line)
        region.rewritten.clear()
        region.state = RegionState.DONE
        if self.observer is not None:
            self.observer.region_ended(self, thread, region.rid)
        self._try_commit(region, thread)
        done()  # asynchronous commit: retire immediately

    # -- commit machinery -----------------------------------------------------------

    def _try_commit(self, region: _RedoRegion, thread: _RedoThread) -> None:
        if region.state is not RegionState.DONE or region.outstanding_lpos > 0:
            return
        if region.committing:
            return  # marker already in flight
        entry = self.dep_list_for(region.rid).entry(region.rid)
        if entry is None:
            return  # already committed
        entry.state = RegionState.DONE
        if entry.deps:
            return  # Fig. 2c: wait for earlier regions' logs to persist
        self._commit(region, thread)

    def _commit(self, region: _RedoRegion, thread: _RedoThread) -> None:
        rid = region.rid
        # The Dependence List entry stays until the marker is *accepted*:
        # the region is not committed while its marker can still be lost.
        # Removing it here (the pre-fix behaviour) opened a window in which
        # a successor region - same thread via CurRID, or another thread
        # via an OwnerRID lookup - saw the region as already committed,
        # skipped the dependence, and raced its own marker into a WPQ ahead
        # of this one: commits (and hence the recovery replay order and the
        # no-crash durable image) came out of dependence order.
        region.committing = True
        self._commit_seq += 1
        seq = self._commit_seq
        marker_addr = thread.marker_base + (
            (local_rid_of(rid) % _MARKER_SLOTS) * CACHE_LINE_BYTES
        )

        def marker_accepted(op) -> None:
            # Durable: recovery will replay this region from its log.
            if self.observer is not None:
                self.observer.marker_accepted(self, rid, seq, op)
            self.dep_list_for(rid).remove_entry(rid)
            self._notify_commit(rid)
            if self.observer is not None:
                self.observer.region_committed(self, rid)
            signal = thread.commit_signals.pop(rid, None)
            if signal is not None:
                signal.fire()
            # Only now may dependents commit: broadcasting earlier would
            # let a dependent's marker persist while this one is still in
            # flight - the Fig. 2a ordering violation all over again.
            for dl in self.dep_lists:
                for ready in dl.clear_dependency(rid):
                    ready_region = self.regions.get(ready.rid)
                    if ready_region is not None:
                        owner = self._threads[ready.rid >> 32]
                        self.machine.scheduler.after(
                            0, lambda r=ready_region, t=owner: self._try_commit(r, t)
                        )
            # Lazy in-place updates, then log reclamation.
            self.machine.scheduler.after(
                self.REDO_DPO_DELAY,
                lambda: self._issue_post_commit_dpos(region, thread),
            )

        marker_op = PersistOp(
            kind=MARKER,
            target_line=marker_addr,
            data_line=marker_addr,
            payload={marker_addr: rid, marker_addr + 8: seq},
            rid=rid,
            on_complete=marker_accepted,
        )
        if self.observer is not None:
            self.observer.marker_issued(self, rid, seq, marker_op)
        self.machine.memory.issue_persist(marker_op)

    def _issue_post_commit_dpos(self, region: _RedoRegion, thread: _RedoThread) -> None:
        pending = {"n": 1}

        def one_done(_op=None) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                # Every surviving byte of this region is now in the
                # persistence domain in place (or covered by a *committed*
                # successor's log); the log may be reclaimed and its slots
                # reused.
                thread.log.free(region.rid)
                self.regions.pop(region.rid, None)

        for line in sorted(region.lines):
            writer = self._last_writer.get(line)
            if writer != region.rid and not self.dep_list_for(writer).contains(writer):
                # A *committed* later region re-logged this line: its log
                # (and replay order via commit_seq) covers it.
                self.dpos_filtered += 1
                continue
            payload = region.values[line]
            meta = self.machine.hierarchy.tags.get(line)
            if meta is not None and self._last_writer.get(line) == region.rid:
                meta.dirty = False
            pending["n"] += 1
            if self.observer is not None:
                self.observer.dpo_initiated(self, region.rid, line)
            self.machine.memory.issue_persist(
                PersistOp(
                    kind=DPO,
                    target_line=line,
                    data_line=line,
                    payload=payload,
                    rid=region.rid,
                    on_complete=one_done,
                )
            )
        one_done()

    # -- accesses --------------------------------------------------------------------

    def write(self, thread: _RedoThread, addr: int, values, done: Callable[[], None]) -> None:
        line = line_base(addr)
        pm = self.machine.page_table.is_persistent(addr)
        region = thread.active
        self.machine.volatile.write_range(addr, values)

        def after_access(meta) -> None:
            if not pm or region is None:
                done()
                return

            def after_dep() -> None:
                meta.owner_rid = region.rid
                if line not in region.lines:
                    region.lines.add(line)
                    self._issue_lpo(thread, region, line)
                else:
                    region.rewritten.add(line)
                done()

            self._capture_dependence(region, meta, after_dep)

        self.machine.hierarchy.access(thread.core_id, addr, True, after_access)

    def read(self, thread: _RedoThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        line = line_base(addr)
        region = thread.active
        redirect = region is not None and line in region.lines

        def after_access(meta) -> None:
            def deliver() -> None:
                values = [
                    self.machine.volatile.read_word(addr + 8 * i)
                    for i in range(nwords)
                ]
                if redirect:
                    # reads of modified data are redirected to the log
                    # (Sec. 2.3)
                    self.reads_redirected += 1
                    self.machine.scheduler.after(12, lambda: done(values))
                else:
                    done(values)

            if region is not None and self.machine.page_table.is_persistent(addr):
                self._capture_dependence(region, meta, deliver)
            else:
                deliver()

        self.machine.hierarchy.access(thread.core_id, addr, False, after_access)

    def _capture_dependence(
        self, region: _RedoRegion, meta, then: Callable[[], None]
    ) -> None:
        """Record a data dependence on the line's owner before proceeding.

        Mirrors the undo engine: when every Dep slot is taken the access
        *stalls* until a dependency commits and frees one. The pre-fix code
        silently skipped the dependence instead - an unordered commit
        waiting to happen whenever a region accumulated more than
        ``dep_slots`` cross-region dependencies.
        """
        owner = meta.owner_rid
        if owner is None or owner == region.rid:
            then()
            return
        owner_dl = self.dep_list_for(owner)
        if not owner_dl.contains(owner):
            meta.owner_rid = None
            then()
            return
        my_dl = self.dep_list_for(region.rid)
        entry = my_dl.entry(region.rid)
        if entry is None or owner in entry.deps:
            then()
            return
        if entry.deps_full:
            my_dl.dep_stalls += 1
            my_dl.dep_waiters.park(
                lambda: self._capture_dependence(region, meta, then)
            )
            return
        entry.deps.add(owner)
        if self.observer is not None:
            self.observer.dep_captured(self, region.rid, owner)
        then()

    def _issue_lpo(self, thread: _RedoThread, region: _RedoRegion, line: int) -> None:
        slot, entry_addr, record, _opened, sealed = thread.log.append(region.rid, line)
        if sealed is not None:
            self.machine.memory.issue_persist(
                PersistOp(
                    kind=LOGHDR,
                    target_line=sealed.header_addr,
                    data_line=sealed.header_addr,
                    payload=sealed.header_payload,
                    rid=region.rid,
                )
            )
        if self.fast:
            # Payload-free mode: region.values is only ever read as a DPO
            # payload, so a None placeholder keeps the control flow (which
            # keys off region.lines) identical.
            region.values[line] = None
            payload = None
        else:
            logged = {
                w: self.machine.volatile.read_word(w) for w in words_of_line(line)
            }
            region.values[line] = logged
            payload = {entry_addr + (w - line): v for w, v in logged.items()}
            payload[record.header_addr] = region.rid
            payload[record.header_word_addr(slot)] = line
        region.outstanding_lpos += 1
        self._last_writer[line] = region.rid
        if self.observer is not None:
            self.observer.lpo_initiated(self, region.rid, line, entry_addr)

        def accepted(_op) -> None:
            record.confirm(slot)
            region.outstanding_lpos -= 1
            if self.observer is not None:
                self.observer.lpo_logged(self, region.rid, line)
            self._try_commit(region, self._threads[region.rid >> 32])

        self.machine.memory.issue_persist(
            PersistOp(
                kind=LPO,
                target_line=entry_addr,
                data_line=line,
                payload=payload,
                rid=region.rid,
                on_complete=accepted,
            )
        )

    # -- eviction (redo's no-force rule) ------------------------------------------------

    def _on_evict(self, meta, wb_op: Optional[PersistOp]) -> None:
        owner = meta.owner_rid
        if owner is None or wb_op is None:
            return
        if self.dep_list_for(owner).contains(owner):
            # Uncommitted data must not reach its home address; its bytes
            # are already safe in the redo log.
            wb_op.dropped = True
            self.wbs_suppressed += 1

    # -- fence / quiescence / crash -----------------------------------------------------

    def fence(self, thread: _RedoThread, done: Callable[[], None]) -> None:
        rid = thread.last_rid
        if rid is None or rid not in thread.commit_signals:
            done()
            return
        thread.commit_signals[rid].wait(done)

    def when_quiescent(self, done: Callable[[], None]) -> None:
        if not self.regions:
            done()
            return
        self.machine.scheduler.after(100, lambda: self.when_quiescent(done))

    def crash_flush(self) -> None:
        """Nothing beyond the WPQs: headers and markers ride persist ops."""

    def dependence_snapshot(self) -> List[dict]:
        snap: List[dict] = []
        for dl in self.dep_lists:
            snap.extend(dl.snapshot())
        return snap

    def thread_logs(self) -> Dict[int, UndoLog]:
        return {tid: t.log for tid, t in self._threads.items()}

    def marker_directory(self) -> Dict[int, List[tuple]]:
        """thread id -> [(marker base, slots, stride)] for recovery."""
        return {
            tid: [(t.marker_base, _MARKER_SLOTS, CACHE_LINE_BYTES)]
            for tid, t in self._threads.items()
        }

"""The ASAP scheme: a thin adapter over :class:`repro.core.engine.AsapEngine`.

All of the paper's machinery lives in :mod:`repro.core`; this class maps
the generic :class:`~repro.persist.base.PersistenceScheme` interface onto
it and forwards commit notifications and crash flushes. That includes the
per-line log-persist ordering rule (``ordered_line_log_persists``,
enforced in :meth:`AsapEngine._submit_lpo_ordered`): the crash snapshot
records whether it was active so recovery knows which chain-completeness
guarantees the surviving log carries (docs/RECOVERY.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.engine import AsapEngine, AsapThread
from repro.persist.base import PersistenceScheme, SchemeThread


class _AsapSchemeThread(SchemeThread):
    def __init__(self, thread_id: int, core_id: int, engine_thread: AsapThread):
        super().__init__(thread_id, core_id)
        self.engine_thread = engine_thread


class AsapScheme(PersistenceScheme):
    """Asynchronous commit with hardware dependence enforcement."""

    name = "asap"

    #: the paper's full asynchronous-persistence ordering machinery
    ORDERING_EDGES = frozenset(
        {"wpq-fifo", "line-chain", "lockbit-gate", "dep-commit-gate"}
    )

    def __init__(self):
        super().__init__()
        self.engine: Optional[AsapEngine] = None

    def attach(self, machine) -> None:
        super().attach(machine)
        self.engine = AsapEngine(
            config=machine.config,
            scheduler=machine.scheduler,
            memory=machine.memory,
            hierarchy=machine.hierarchy,
            volatile=machine.volatile,
            pm_alloc=machine.heap.alloc,
            fast=self.fast,
        )
        self.engine.on_commit.append(self._notify_commit)

    @property
    def stats(self):
        return self.engine.stats if self.engine else None

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        engine_thread = self.engine.register_thread(thread_id, core_id)
        return _AsapSchemeThread(thread_id, core_id, engine_thread)

    def begin(self, thread: _AsapSchemeThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth == 1:
            thread.regions_begun += 1
        self.engine.begin(thread.engine_thread, done)

    def end(self, thread: _AsapSchemeThread, done: Callable[[], None]) -> None:
        thread.nest_depth -= 1
        self.engine.end(thread.engine_thread, done)

    def write(self, thread: _AsapSchemeThread, addr: int, values, done: Callable[[], None]) -> None:
        self.engine.write(thread.engine_thread, addr, values, done)

    def read(self, thread: _AsapSchemeThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        self.engine.read(thread.engine_thread, addr, nwords, done)

    def fence(self, thread: _AsapSchemeThread, done: Callable[[], None]) -> None:
        self.engine.fence(thread.engine_thread, done)

    def migrate(self, thread: _AsapSchemeThread, new_core: int, done: Callable[[], None]) -> None:
        def switched() -> None:
            thread.core_id = new_core
            done()

        self.engine.context_switch(thread.engine_thread, new_core, switched)

    def when_quiescent(self, done: Callable[[], None]) -> None:
        self.engine.when_quiescent(done)

    # -- crash support (Sec. 5.5) ------------------------------------------

    def crash_flush(self) -> None:
        """Flush the LH-WPQs to the PM image (the ADR crash path)."""
        for lh in self.engine.lh_wpqs:
            lh.flush_to_pm(self.machine.pm_image)

    def dependence_snapshot(self) -> List[dict]:
        """The persisted Dependence List contents used by recovery."""
        snap: List[dict] = []
        for dl in self.engine.dep_lists:
            snap.extend(dl.snapshot())
        return snap

    def thread_logs(self) -> Dict[int, object]:
        """Thread-id -> UndoLog (recovery scans their record slots)."""
        return {tid: t.log for tid, t in self.engine.threads.items()}

"""Hardware redo logging with synchronous LPOs (the HWRedo baseline).

Modelled on Jeong et al. [33] as described in Secs. 2.3 and 6.3:

* LPOs log the *new* values and are initiated in hardware at the first
  write to a line, overlapped with the region's execution; a line written
  again after its LPO is re-logged with its final value at region end;
* commit is synchronous in the LPOs only: at ``asap_end`` the thread
  stalls until every log write has drained to NVM (the durability point
  the design predates ADR-WPQ persistence domains for);
* DPOs (installing the logged values in place) happen after commit,
  asynchronously, off the critical path;
* unnecessary DPOs are filtered: if a later region has re-written (and
  therefore re-logged) a line before the DPO is issued, the earlier DPO is
  skipped - the later region's log already carries newer data (this is the
  "uses DRAM on commit to filter out unnecessary DPOs" advantage the paper
  credits HWRedo with in Sec. 7.2).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.address import line_base, words_of_line
from repro.common.errors import SimulationError
from repro.core.log import UndoLog
from repro.core.rid import pack_rid
from repro.mem.wpq import DPO, LOGHDR, LPO, PersistOp
from repro.persist.base import PersistenceScheme, SchemeThread


class _HwRedoThread(SchemeThread):
    def __init__(self, thread_id: int, core_id: int, log: UndoLog):
        super().__init__(thread_id, core_id)
        self.log = log
        self.rid: Optional[int] = None
        #: line -> True when the line was written again after its LPO
        self.write_set: Dict[int, bool] = {}
        self.outstanding_lpos = 0
        self.resume: Optional[Callable[[], None]] = None
        self.waiting = False


class HardwareRedoLogging(PersistenceScheme):
    """Synchronous-LPO hardware redo logging with post-commit DPOs."""

    name = "hwredo"

    #: end blocks on LPO acceptance, so commit order is program order
    ORDERING_EDGES = frozenset({"sync-commit"})

    def __init__(self):
        super().__init__()
        #: line -> rid of the latest region to log it (the DPO filter)
        self._last_writer: Dict[int, int] = {}
        self.dpos_filtered = 0
        self._outstanding_async = 0
        self._quiescent_waiters = []

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        params = self.machine.config.asap
        stride = (1 + params.log_data_entries_per_record) * 64
        num_records = max(
            1, params.initial_log_entries // params.log_data_entries_per_record
        )
        base = self.machine.heap.alloc(num_records * stride)
        log = UndoLog(
            thread_id,
            base,
            num_records,
            params.log_data_entries_per_record,
            grow_fn=self.machine.heap.alloc,
        )
        return _HwRedoThread(thread_id, core_id, log)

    # -- regions ---------------------------------------------------------------

    def begin(self, thread: _HwRedoThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth == 1:
            thread.regions_begun += 1
            thread.rid = pack_rid(thread.thread_id, thread.regions_begun)
            thread.write_set.clear()
        done()

    def end(self, thread: _HwRedoThread, done: Callable[[], None]) -> None:
        if thread.nest_depth <= 0:
            raise SimulationError("end without begin")
        thread.nest_depth -= 1
        if thread.nest_depth > 0:
            done()
            return
        # Re-log every line whose final value postdates its LPO.
        for line, rewritten in thread.write_set.items():
            if rewritten:
                self._issue_lpo(thread, line)
                thread.write_set[line] = False
        thread.resume = done
        thread.waiting = True
        self._check_commit(thread)

    def _check_commit(self, thread: _HwRedoThread) -> None:
        if not thread.waiting or thread.outstanding_lpos > 0:
            return
        thread.waiting = False
        rid = thread.rid
        lines = sorted(thread.write_set)
        self._notify_commit(rid)
        resume, thread.resume = thread.resume, None
        # Post-commit DPOs are asynchronous: schedule them lazily, retire
        # anyway. The lazy window is what gives redo logging its DPO
        # filtering: a later region that re-logs a line before the window
        # expires supersedes the pending DPO entirely.
        self._outstanding_async += 1
        self.machine.scheduler.after(
            self.REDO_DPO_DELAY,
            lambda: self._issue_post_commit_dpos(rid, lines, thread),
        )
        resume()

    #: cycles a committed region's data may linger in DRAM/cache before its
    #: in-place writeback is attempted (the commit-time DPO lazy window)
    REDO_DPO_DELAY = 1500

    def _issue_post_commit_dpos(self, rid: int, lines, thread: _HwRedoThread) -> None:
        for line in lines:
            if self._last_writer.get(line) != rid:
                # A later region re-logged the line: its DPO supersedes ours.
                self.dpos_filtered += 1
                continue
            if self.fast:
                payload = None
            else:
                payload = {
                    w: self.machine.volatile.read_word(w) for w in words_of_line(line)
                }
            meta = self.machine.hierarchy.tags.get(line)
            if meta is not None:
                meta.dirty = False

            def dpo_accepted(_op) -> None:
                self._async_done()

            self._outstanding_async += 1
            self.machine.memory.issue_persist(
                PersistOp(
                    kind=DPO,
                    target_line=line,
                    data_line=line,
                    payload=payload,
                    rid=rid,
                    on_complete=dpo_accepted,
                )
            )
        # The log is reclaimed once the data is safely in the persistence
        # domain; modelled as reclamation at writeback-issue time.
        thread.log.free(rid)
        self._async_done()

    def _async_done(self) -> None:
        self._outstanding_async -= 1
        if self._outstanding_async == 0:
            waiters, self._quiescent_waiters = self._quiescent_waiters, []
            for resume in waiters:
                self.machine.scheduler.after(0, resume)

    def when_quiescent(self, done: Callable[[], None]) -> None:
        if self._outstanding_async == 0:
            done()
        else:
            self._quiescent_waiters.append(done)

    # -- accesses -----------------------------------------------------------------

    def write(self, thread: _HwRedoThread, addr: int, values, done: Callable[[], None]) -> None:
        line = line_base(addr)
        pm = self.machine.page_table.is_persistent(addr)
        in_region = thread.nest_depth > 0
        self.machine.volatile.write_range(addr, values)

        def after_access(meta) -> None:
            if pm and in_region:
                if line not in thread.write_set:
                    thread.write_set[line] = False
                    self._issue_lpo(thread, line)
                else:
                    thread.write_set[line] = True  # needs re-log at end
            done()

        self.machine.hierarchy.access(thread.core_id, addr, True, after_access)

    def _issue_lpo(self, thread: _HwRedoThread, line: int) -> None:
        """Log the line's *current* (new) value - redo logging."""
        slot, entry_addr, record, _opened, sealed = thread.log.append(thread.rid, line)
        record.confirm(slot)  # synchronous schemes persist entries in order
        if sealed is not None:
            self.machine.memory.issue_persist(
                PersistOp(
                    kind=LOGHDR,
                    target_line=sealed.header_addr,
                    data_line=sealed.header_addr,
                    payload=sealed.header_payload(),
                    rid=thread.rid,
                )
            )
        if self.fast:
            payload = None
        else:
            payload = {
                entry_addr + (w - line): self.machine.volatile.read_word(w)
                for w in words_of_line(line)
            }
        thread.outstanding_lpos += 1
        self._last_writer[line] = thread.rid

        def lpo_drained(_op) -> None:
            thread.outstanding_lpos -= 1
            self._check_commit(thread)

        # Redo logging's durability point is the NVM write of the log
        # entry (the design predates ADR-WPQ persistence domains), so the
        # commit wait is for the drain, not the accept.
        self.machine.memory.issue_persist(
            PersistOp(
                kind=LPO,
                target_line=entry_addr,
                data_line=line,
                payload=payload,
                rid=thread.rid,
                on_drain=lpo_drained,
            )
        )

    #: extra cycles when a read inside a region targets a line the region
    #: has already logged: redo logging redirects such reads to the log
    #: (Sec. 2.3), adding an indirection on the load path.
    READ_REDIRECT_PENALTY = 12

    def read(self, thread: _HwRedoThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        line = line_base(addr)
        redirect = thread.nest_depth > 0 and line in thread.write_set

        def after(meta) -> None:
            values = [self.machine.volatile.read_word(addr + 8 * i) for i in range(nwords)]
            if redirect:
                self.machine.scheduler.after(
                    self.READ_REDIRECT_PENALTY, lambda: done(values)
                )
            else:
                done(values)

        self.machine.hierarchy.access(thread.core_id, addr, False, after)

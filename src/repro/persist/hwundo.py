"""Hardware undo logging with synchronous commit (the HWUndo baseline).

Modelled on Proteus [61] as described in Secs. 2.3 and 6.3:

* LPOs are initiated automatically in hardware at the first write to a
  line and proceed in the background, overlapped with the region's own
  execution;
* the durability point is the NVM write itself (Proteus predates treating
  the ADR WPQ as the persistence domain): an LPO or DPO completes when it
  *drains* to persistent memory - this is what puts PM latency on the
  commit path and makes HWUndo the most latency-sensitive scheme in the
  Fig. 10 sweep;
* a line's DPO is initiated eagerly, as soon as its LPO has drained
  (undo logging's eager in-place update); a line rewritten after its DPO
  was issued gets a fresh DPO so the region's final values persist;
* commit is synchronous: at ``asap_end`` the thread stalls until every
  LPO and every DPO has drained (Sec. 2.3: "a region commits when all
  LPOs and DPOs complete");
* LPO dropping is applied where possible (Sec. 5.1 notes Proteus does
  this too), though with drain-completion a committing region's LPOs have
  already left the queue, so in practice its log traffic reaches PM;
* same-line log persists are ordered (``ordered_line_log_persists``): two
  concurrently-executing regions that write the same line place their log
  entries in different records - potentially on different channels - so
  nothing else orders the entries' drains. The scheme holds a later LPO
  for a line at the controller until the earlier one has drained (or was
  dropped), the drain-granularity analogue of the ASAP engine's
  acceptance-granularity rule (docs/RECOVERY.md). HWUndo tracks no
  cross-region ownership, so the gate applies to *all* same-line LPO
  pairs, a conservative superset of the uncommitted-writer chains.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.common.address import line_base, words_of_line
from repro.common.errors import SimulationError
from repro.core.log import UndoLog
from repro.core.rid import pack_rid
from repro.mem.wpq import DPO, LOGHDR, LPO, PersistOp
from repro.persist.base import PersistenceScheme, SchemeThread

#: per-line persistence state within the current region
_WAIT_LPO = "wait_lpo"  # undo log write still draining
_DPO_INFLIGHT = "dpo_inflight"  # in-place update draining
_CLEAN = "clean"  # line's latest DPO drained


class _LineState:
    __slots__ = ("state", "dirty")

    def __init__(self):
        self.state = _WAIT_LPO
        self.dirty = False  # written again since the last DPO was issued


class _HwUndoThread(SchemeThread):
    def __init__(self, thread_id: int, core_id: int, log: UndoLog):
        super().__init__(thread_id, core_id)
        self.log = log
        self.rid: Optional[int] = None
        self.lines: Dict[int, _LineState] = {}
        self.outstanding = 0  # LPO + DPO drains still pending
        self.resume: Optional[Callable[[], None]] = None


class HardwareUndoLogging(PersistenceScheme):
    """Synchronous-commit hardware undo logging (drain durability)."""

    name = "hwundo"

    #: synchronous commit orders per-thread persists across regions; the
    #: per-line drain gate orders same-line LPOs within a region
    ORDERING_EDGES = frozenset({"sync-commit", "line-chain"})

    def __init__(self):
        super().__init__()
        #: per-line LPO ordering at drain granularity (the scheme's
        #: durability point): line -> an LPO is submitted but not drained
        self._line_lpo_inflight: Dict[int, bool] = {}
        #: line -> FIFO of held-back (op, issue) submissions
        self._line_lpo_waiters: Dict[int, Deque[PersistOp]] = {}
        #: LPOs held behind an earlier same-line LPO's drain
        self.lpo_order_delays = 0

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        params = self.machine.config.asap
        stride = (1 + params.log_data_entries_per_record) * 64
        num_records = max(
            1, params.initial_log_entries // params.log_data_entries_per_record
        )
        base = self.machine.heap.alloc(num_records * stride)
        log = UndoLog(
            thread_id,
            base,
            num_records,
            params.log_data_entries_per_record,
            grow_fn=self.machine.heap.alloc,
        )
        return _HwUndoThread(thread_id, core_id, log)

    # -- regions ---------------------------------------------------------------

    def begin(self, thread: _HwUndoThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth == 1:
            thread.regions_begun += 1
            thread.rid = pack_rid(thread.thread_id, thread.regions_begun)
            thread.lines.clear()
        done()

    def end(self, thread: _HwUndoThread, done: Callable[[], None]) -> None:
        if thread.nest_depth <= 0:
            raise SimulationError("end without begin")
        thread.nest_depth -= 1
        if thread.nest_depth > 0:
            done()
            return
        # Flush rewritten lines whose DPO already drained.
        for line, ls in thread.lines.items():
            if ls.state == _CLEAN and ls.dirty:
                self._issue_dpo(thread, line, ls)
        thread.resume = done
        self._maybe_commit(thread)

    def _maybe_commit(self, thread: _HwUndoThread) -> None:
        if thread.resume is None or thread.outstanding > 0:
            return
        if any(ls.state != _CLEAN or ls.dirty for ls in thread.lines.values()):
            return
        rid = thread.rid
        thread.log.free(rid)
        # LPO dropping (any log writes still queued are unneeded now).
        self.machine.memory.drop_log_ops_for_rid(rid)
        self._notify_commit(rid)
        resume, thread.resume = thread.resume, None
        resume()

    # -- accesses -----------------------------------------------------------------

    def write(self, thread: _HwUndoThread, addr: int, values, done: Callable[[], None]) -> None:
        line = line_base(addr)
        pm = self.machine.page_table.is_persistent(addr)
        in_region = thread.nest_depth > 0
        first_write = pm and in_region and line not in thread.lines
        old_snapshot = None
        if first_write and not self.fast:
            old_snapshot = {
                w: self.machine.volatile.read_word(w) for w in words_of_line(line)
            }
        self.machine.volatile.write_range(addr, values)

        def after_access(meta) -> None:
            if pm and in_region:
                if first_write:
                    thread.lines[line] = _LineState()
                    self._issue_lpo(thread, line, old_snapshot)
                else:
                    ls = thread.lines[line]
                    ls.dirty = True
            done()  # persist ops are hardware-initiated: no stall here

        self.machine.hierarchy.access(thread.core_id, addr, True, after_access)

    def _issue_lpo(self, thread: _HwUndoThread, line: int, old_snapshot: Dict[int, int]) -> None:
        slot, entry_addr, record, _opened, sealed = thread.log.append(thread.rid, line)
        record.confirm(slot)
        if sealed is not None:
            self.machine.memory.issue_persist(
                PersistOp(
                    kind=LOGHDR,
                    target_line=sealed.header_addr,
                    data_line=sealed.header_addr,
                    payload=sealed.header_payload(),
                    rid=thread.rid,
                )
            )
        if self.fast:
            payload = None
        else:
            payload = {
                entry_addr + (w - line): old_snapshot.get(w, 0)
                for w in words_of_line(line)
            }
            payload[record.header_addr] = thread.rid
            payload[record.header_word_addr(slot)] = line
        thread.outstanding += 1

        def lpo_drained(_op, rid=thread.rid) -> None:
            thread.outstanding -= 1
            if thread.rid == rid:
                # The log entry is durable in NVM: the eager in-place
                # update (undo logging's hallmark) may now proceed.
                ls = thread.lines.get(line)
                if ls is not None and ls.state == _WAIT_LPO:
                    self._issue_dpo(thread, line, ls)
            self._maybe_commit(thread)
            self._lpo_chain_advance(line)

        self._submit_lpo_ordered(
            PersistOp(
                kind=LPO,
                target_line=entry_addr,
                data_line=line,
                payload=payload,
                rid=thread.rid,
                on_drain=lpo_drained,
            ),
            line,
        )

    def _submit_lpo_ordered(self, op: PersistOp, line: int) -> None:
        """At most one LPO per line between submission and drain.

        Drain is HWUndo's durability point, so this is the per-line
        chain-ordering rule at drain granularity: a later region's log
        entry for a line can never be durable while an earlier region's
        entry for the same line is still in flight. ``on_drain`` also
        fires for dropped ops, so the chain always advances.
        """
        if not self.machine.config.asap.ordered_line_log_persists:
            self.machine.memory.issue_persist(op)
            return
        if self._line_lpo_inflight.get(line):
            self.lpo_order_delays += 1
            self._line_lpo_waiters.setdefault(line, deque()).append(op)
            return
        self._line_lpo_inflight[line] = True
        self.machine.memory.issue_persist(op)

    def _lpo_chain_advance(self, line: int) -> None:
        if not self.machine.config.asap.ordered_line_log_persists:
            return
        waiters = self._line_lpo_waiters.get(line)
        if waiters:
            nxt = waiters.popleft()
            if not waiters:
                del self._line_lpo_waiters[line]
            self.machine.memory.issue_persist(nxt)  # line stays in flight
        else:
            self._line_lpo_inflight.pop(line, None)

    def _issue_dpo(self, thread: _HwUndoThread, line: int, ls: _LineState) -> None:
        ls.state = _DPO_INFLIGHT
        ls.dirty = False
        if self.fast:
            payload = None
        else:
            payload = {
                w: self.machine.volatile.read_word(w) for w in words_of_line(line)
            }
        meta = self.machine.hierarchy.tags.get(line)
        if meta is not None:
            meta.dirty = False
        thread.outstanding += 1

        def dpo_drained(_op, rid=thread.rid) -> None:
            thread.outstanding -= 1
            if thread.rid == rid:
                if ls.dirty:
                    self._issue_dpo(thread, line, ls)  # rewritten: refresh
                else:
                    ls.state = _CLEAN
            self._maybe_commit(thread)

        self.machine.memory.issue_persist(
            PersistOp(
                kind=DPO,
                target_line=line,
                data_line=line,
                payload=payload,
                rid=thread.rid,
                on_drain=dpo_drained,
            )
        )

    def read(self, thread: _HwUndoThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        def after(meta) -> None:
            done([self.machine.volatile.read_word(addr + 8 * i) for i in range(nwords)])

        self.machine.hierarchy.access(thread.core_id, addr, False, after)

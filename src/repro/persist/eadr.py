"""Idealized eADR baseline (the Sec. 8 contrast).

Intel eADR extends the persistence domain over the entire cache
hierarchy: a store is durable the moment it hits the cache, so no LPOs or
DPOs ever stall execution and no flush instructions exist. Atomic
durability still requires write-ahead logging (the paper: "it still
requires a WAL technique to provide failure-atomicity") - but the log
writes, too, are just cache writes.

The catch the paper leans on: eADR "requires a large battery, consuming
high power" - the battery must be able to flush every dirty line in the
hierarchy on power failure. :meth:`battery_backed_bytes` quantifies that
requirement so the Ext. 4 experiment can put it next to ASAP's ~70 KB of
persistence-domain structures.

Model: regions commit instantaneously at ``asap_end`` (all their writes
are already durable, and the in-cache undo log makes in-flight regions
rollbackable). On a crash the battery flushes the caches: the volatile
image *is* the durable image, minus the rollback of in-flight regions
from their in-cache logs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.address import line_base, words_of_line
from repro.common.errors import SimulationError
from repro.core.rid import pack_rid
from repro.persist.base import PersistenceScheme, SchemeThread


class _EadrThread(SchemeThread):
    def __init__(self, thread_id: int, core_id: int):
        super().__init__(thread_id, core_id)
        self.rid: Optional[int] = None
        #: in-cache undo log of the active region: line -> old words
        self.undo: Dict[int, Dict[int, int]] = {}


class EadrLogging(PersistenceScheme):
    """WAL over battery-backed caches: zero persist ops, big battery."""

    name = "eadr"

    #: caches are in the persistence domain: every store is durable at
    #: retirement, so program/coherence order is durability order
    ORDERING_EDGES = frozenset({"sync-commit"})

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        return _EadrThread(thread_id, core_id)

    # -- the cost side of the trade (Sec. 8) --------------------------------

    def battery_backed_bytes(self) -> int:
        """SRAM the battery must be able to flush on power failure."""
        cfg = self.machine.config
        return (
            cfg.num_cores * (cfg.l1.size_bytes + cfg.l2.size_bytes)
            + cfg.l3.size_bytes
        )

    # -- regions -------------------------------------------------------------

    def begin(self, thread: _EadrThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth == 1:
            thread.regions_begun += 1
            thread.rid = pack_rid(thread.thread_id, thread.regions_begun)
            thread.undo.clear()
        done()

    def end(self, thread: _EadrThread, done: Callable[[], None]) -> None:
        if thread.nest_depth <= 0:
            raise SimulationError("end without begin")
        thread.nest_depth -= 1
        if thread.nest_depth == 0:
            # Everything the region wrote is already inside the (cache)
            # persistence domain: the region is durable the instant the
            # in-cache log is dropped. Commit is free and immediate.
            thread.undo.clear()
            self._notify_commit(thread.rid)
        done()

    # -- accesses ----------------------------------------------------------------

    def write(self, thread: _EadrThread, addr: int, values, done: Callable[[], None]) -> None:
        line = line_base(addr)
        in_region = thread.nest_depth > 0
        if (
            in_region
            and self.machine.page_table.is_persistent(addr)
            and line not in thread.undo
        ):
            # Fast mode keeps the membership (first-write detection) but
            # skips the snapshot: no crash window means no rollback reads.
            thread.undo[line] = (
                None
                if self.fast
                else {
                    w: self.machine.volatile.read_word(w)
                    for w in words_of_line(line)
                }
            )
        self.machine.volatile.write_range(addr, values)
        self.machine.hierarchy.access(thread.core_id, addr, True, lambda meta: done())

    def read(self, thread: _EadrThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        def after(meta) -> None:
            done([
                self.machine.volatile.read_word(addr + 8 * i) for i in range(nwords)
            ])

        self.machine.hierarchy.access(thread.core_id, addr, False, after)

    # -- crash ----------------------------------------------------------------------

    def crash_flush(self) -> None:
        """The battery flushes every dirty line: durable state = volatile
        state, with in-flight regions rolled back from their in-cache
        logs (which the battery flushes too)."""
        pm = self.machine.pm_image
        for word, value in self.machine.volatile.items():
            if self.machine.page_table.is_persistent(word):
                pm.write_word(word, value)
        for thread in self._threads():
            for line, old_words in thread.undo.items():
                for w in words_of_line(line):
                    pm.write_word(w, old_words.get(w, 0))

    def _threads(self):
        for executor in self.machine.executors:
            yield executor.scheme_thread

"""The persistence-scheme interface.

A scheme interprets the five persistence-relevant ops (begin, end, read,
write, fence) in continuation-passing style: the ``done`` callback fires
when the instruction may retire. Synchronous-commit schemes delay ``End``'s
``done``; ASAP never does.

Schemes also expose commit notifications (for the recovery oracle) and a
``crash()`` hook that flushes their share of the persistence domain.
"""

from __future__ import annotations

import abc
from typing import Callable, FrozenSet, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.common.params import SystemConfig
    from repro.sim.machine import Machine

#: The ordering-edge kinds a scheme may guarantee between persist
#: operations (docs/RACES.md has the full semantics):
#:
#: - ``"wpq-fifo"``: same-channel persists are accepted in submission
#:   order (requires ``MemoryParams.wpq_fifo_backpressure``).
#: - ``"line-chain"``: chained same-line log persists are accepted in
#:   chain order (requires ``AsapParams.ordered_line_log_persists``).
#: - ``"lockbit-gate"``: a line's LPO is accepted before any DPO/WB of
#:   that line is submitted (the LockBit log-before-data protocol).
#: - ``"dep-commit-gate"``: a region commits only after all its persists
#:   are accepted and every Dependence-List predecessor has committed.
#: - ``"marker-gate"``: a durable commit marker is submitted only after
#:   the region's LPOs are accepted and predecessors' markers accepted.
#: - ``"sync-commit"``: ``end`` blocks until the region is durable, so
#:   program order fully orders each thread's persists across regions.
EDGE_KINDS = frozenset(
    {
        "wpq-fifo",
        "line-chain",
        "lockbit-gate",
        "dep-commit-gate",
        "marker-gate",
        "sync-commit",
    }
)


class SchemeThread:
    """Base per-thread scheme state; schemes subclass or use as-is."""

    def __init__(self, thread_id: int, core_id: int):
        self.thread_id = thread_id
        self.core_id = core_id
        #: region nesting depth (all schemes flatten nested regions)
        self.nest_depth = 0
        #: regions begun by this thread (used as a LocalRID for oracle ids)
        self.regions_begun = 0


class PersistenceScheme(abc.ABC):
    """Interface implemented by NP, SW, HWUndo, HWRedo, and ASAP."""

    #: evaluation name ("np", "sw", "hwundo", "hwredo", "asap")
    name: str = "abstract"

    #: the durability-ordering guarantees this scheme provides between
    #: persist operations, as a subset of :data:`EDGE_KINDS`. This is the
    #: scheme's self-description for the happens-before race detector
    #: (:mod:`repro.analysis.races`) - and the first concrete piece of the
    #: pluggable-scheme interface: a new scheme declares what it orders,
    #: and the detector checks that declaration against observed traces.
    ORDERING_EDGES: FrozenSet[str] = frozenset()

    def __init__(self):
        self.machine: Optional["Machine"] = None
        #: optional :class:`repro.common.observe.SimObserver` notified of
        #: scheme-level events (markers, redo LPOs, dependences).
        self.observer = None
        #: listeners called with a packed region id when a region becomes
        #: durable (commits); the machine's oracle subscribes here.
        self.on_commit: List[Callable[[int], None]] = []
        #: mirrors ``machine.fast_path`` after attach: schemes elide
        #: persist-op payloads and undo snapshots when set (docs/PERF.md)
        self.fast = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        """Bind the scheme to a machine (images, hierarchy, controllers)."""
        self.machine = machine
        self.fast = getattr(machine, "fast_path", False)

    @abc.abstractmethod
    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        """``asap_init`` equivalent: create per-thread scheme state."""

    # -- the five ops ----------------------------------------------------------

    @abc.abstractmethod
    def begin(self, thread: SchemeThread, done: Callable[[], None]) -> None:
        """Open an atomic region."""

    @abc.abstractmethod
    def end(self, thread: SchemeThread, done: Callable[[], None]) -> None:
        """Close the current atomic region; ``done`` fires when execution
        may proceed past the region (NOT necessarily when it commits)."""

    @abc.abstractmethod
    def write(self, thread: SchemeThread, addr: int, values, done: Callable[[], None]) -> None:
        """Store words at ``addr`` (all within one cache line)."""

    @abc.abstractmethod
    def read(self, thread: SchemeThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        """Load ``nwords`` words at ``addr``; ``done`` receives the values."""

    def fence(self, thread: SchemeThread, done: Callable[[], None]) -> None:
        """Block until the thread's last region is durable.

        Synchronous-commit schemes are already durable at ``end``; the
        default is therefore a no-op.
        """
        done()

    def migrate(self, thread: SchemeThread, new_core: int, done: Callable[[], None]) -> None:
        """Context-switch the thread to ``new_core`` (Sec. 5.7).

        The default just repoints the thread; ASAP additionally drains the
        suspended thread's CL List entries first.
        """
        thread.core_id = new_core
        done()

    # -- quiescence and crash ----------------------------------------------------

    def when_quiescent(self, done: Callable[[], None]) -> None:
        """Run ``done`` once no region's persistence work is outstanding.

        The default assumes synchronous commit (nothing outstanding after
        the last ``end`` retires).
        """
        done()

    def crash_flush(self) -> None:
        """Flush scheme-private persistence-domain state to the PM image
        (the machine flushes the WPQs itself)."""

    # -- ordering self-description -----------------------------------------------

    def ordering_edges(self, config: "SystemConfig") -> FrozenSet[str]:
        """The ordering guarantees in force under ``config``.

        Starts from the class-level :attr:`ORDERING_EDGES` and removes the
        guarantees whose enabling knob is off: ``"wpq-fifo"`` needs
        ``config.memory.wpq_fifo_backpressure`` and ``"line-chain"`` needs
        ``config.asap.ordered_line_log_persists``. Both pinned historical
        bugs were exactly these edges missing (ROADMAP PR 3 / PR 5), which
        is why the race detector keys off this method, not the class attr.
        """
        edges = set(self.ORDERING_EDGES)
        if not config.memory.wpq_fifo_backpressure:
            edges.discard("wpq-fifo")
        if not config.asap.ordered_line_log_persists:
            edges.discard("line-chain")
        return frozenset(edges)

    # -- helpers -----------------------------------------------------------------

    def _notify_commit(self, rid: int) -> None:
        for listener in self.on_commit:
            listener(rid)

"""Software persistency (SW): undo logging with flush/fence instructions.

This is the Sec. 6.3 SW baseline (and the Fig. 1 motivational experiment):

* distributed per-thread logs,
* hand-coalesced persist operations (one log entry and one data flush per
  modified cache line per region),
* but every persist operation sits on the critical path: the thread stalls
  for the log flush + fence at each first write to a line, and for the
  data flushes + fence plus a commit record at region end.

``dpo_only=True`` builds the Fig. 1 "DPO Only" variant: no logging at all,
just the end-of-region data flushes and fence.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.common.address import line_base, words_of_line
from repro.common.errors import SimulationError
from repro.core.log import UndoLog
from repro.core.rid import pack_rid
from repro.mem.wpq import DPO, LOGHDR, LPO, PersistOp
from repro.persist.base import PersistenceScheme, SchemeThread

#: cycles of instruction work to construct one log entry in software
_LOG_CONSTRUCT_COST = 12


class _SwThread(SchemeThread):
    def __init__(self, thread_id: int, core_id: int, log: Optional[UndoLog]):
        super().__init__(thread_id, core_id)
        self.log = log
        #: lines written by the current region (flush targets)
        self.write_set: Set[int] = set()
        #: lines already logged by the current region (coalescing)
        self.logged: Set[int] = set()
        self.rid: Optional[int] = None


class SoftwareLogging(PersistenceScheme):
    """Software undo logging (or flush-only when ``dpo_only``)."""

    #: end blocks on every persist draining, so commit order is program
    #: order (and within a region, clwb+sfence orders log before data)
    ORDERING_EDGES = frozenset({"sync-commit"})

    def __init__(self, dpo_only: bool = False):
        super().__init__()
        self.dpo_only = dpo_only
        self.name = "sw_dpo_only" if dpo_only else "sw"

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        log = None
        if not self.dpo_only:
            params = self.machine.config.asap
            stride = (1 + params.log_data_entries_per_record) * 64
            num_records = max(
                1, params.initial_log_entries // params.log_data_entries_per_record
            )
            base = self.machine.heap.alloc(num_records * stride)
            log = UndoLog(
                thread_id,
                base,
                num_records,
                params.log_data_entries_per_record,
                grow_fn=self.machine.heap.alloc,
            )
        return _SwThread(thread_id, core_id, log)

    # -- regions ---------------------------------------------------------------

    def begin(self, thread: _SwThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth == 1:
            thread.regions_begun += 1
            thread.rid = pack_rid(thread.thread_id, thread.regions_begun)
            thread.write_set.clear()
            thread.logged.clear()
        done()

    def end(self, thread: _SwThread, done: Callable[[], None]) -> None:
        if thread.nest_depth <= 0:
            raise SimulationError("end without begin")
        thread.nest_depth -= 1
        if thread.nest_depth > 0:
            done()
            return
        self._flush_data(thread, done)

    def _flush_data(self, thread: _SwThread, done: Callable[[], None]) -> None:
        """clwb each modified line, then mfence (wait for the NVM drains)."""
        lines = sorted(thread.write_set)
        rid = thread.rid
        remaining = len(lines)

        def after_fence() -> None:
            if self.dpo_only:
                self._commit(thread, done)
            else:
                self._write_commit_record(thread, done)

        if remaining == 0:
            after_fence()
            return
        state = {"left": remaining}

        def one_accepted(_op) -> None:
            state["left"] -= 1
            if state["left"] == 0:
                after_fence()

        for line in lines:
            if self.fast:
                payload = None
            else:
                payload = {
                    w: self.machine.volatile.read_word(w) for w in words_of_line(line)
                }
            meta = self.machine.hierarchy.tags.get(line)
            if meta is not None:
                meta.dirty = False
            self.machine.memory.issue_persist(
                PersistOp(
                    kind=DPO,
                    target_line=line,
                    data_line=line,
                    payload=payload,
                    rid=rid,
                    on_drain=one_accepted,
                )
            )

    def _write_commit_record(self, thread: _SwThread, done: Callable[[], None]) -> None:
        """Persist the commit record (the final record header), then free."""
        record = thread.log.open_record(thread.rid)
        payload = (
            record.header_payload()
            if record is not None
            else {thread.log.segments[0][0]: thread.rid}
        )
        target = next(iter(payload))
        self.machine.memory.issue_persist(
            PersistOp(
                kind=LOGHDR,
                target_line=line_base(target),
                data_line=line_base(target),
                payload=payload,
                rid=thread.rid,
                on_drain=lambda op: self._commit(thread, done),
            )
        )

    def _commit(self, thread: _SwThread, done: Callable[[], None]) -> None:
        if thread.log is not None:
            thread.log.free(thread.rid)
        self._notify_commit(thread.rid)
        done()

    # -- accesses -----------------------------------------------------------------

    def write(self, thread: _SwThread, addr: int, values, done: Callable[[], None]) -> None:
        line = line_base(addr)
        pm = self.machine.page_table.is_persistent(addr)
        in_region = thread.nest_depth > 0
        need_log = (
            pm and in_region and not self.dpo_only and line not in thread.logged
        )
        old_snapshot = None
        if need_log and not self.fast:
            old_snapshot = {
                w: self.machine.volatile.read_word(w) for w in words_of_line(line)
            }
        self.machine.volatile.write_range(addr, values)
        if pm and in_region:
            thread.write_set.add(line)

        def after_access(meta) -> None:
            if not need_log:
                done()
                return
            thread.logged.add(line)
            slot, entry_addr, record, _opened, sealed = thread.log.append(thread.rid, line)
            record.confirm(slot)  # the log flush below is synchronous
            if sealed is not None:
                # A filled record's header is written out (persist, no wait:
                # the entry flush below already orders after it per channel).
                self.machine.memory.issue_persist(
                    PersistOp(
                        kind=LOGHDR,
                        target_line=sealed.header_addr,
                        data_line=sealed.header_addr,
                        payload=sealed.header_payload(),
                        rid=thread.rid,
                    )
                )
            if self.fast:
                payload = None
            else:
                payload = {
                    entry_addr + (w - line): old_snapshot.get(w, 0)
                    for w in words_of_line(line)
                }
            # clwb + mfence: the store retires only once the log entry is
            # inside the persistence domain - the software critical path.
            def log_persisted(_op) -> None:
                done()

            self.machine.scheduler.after(
                _LOG_CONSTRUCT_COST,
                lambda: self.machine.memory.issue_persist(
                    PersistOp(
                        kind=LPO,
                        target_line=entry_addr,
                        data_line=line,
                        payload=payload,
                        rid=thread.rid,
                        on_drain=log_persisted,
                    )
                ),
            )

        self.machine.hierarchy.access(thread.core_id, addr, True, after_access)

    def read(self, thread: _SwThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        def after(meta) -> None:
            done([self.machine.volatile.read_word(addr + 8 * i) for i in range(nwords)])

        self.machine.hierarchy.access(thread.core_id, addr, False, after)

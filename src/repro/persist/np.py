"""The No-Persistency (NP) baseline: the performance upper bound.

Data is read from and written to persistent memory, but no LPOs or DPOs
are ever performed and no atomic durability is guaranteed (Sec. 6.3). PM
still sees write traffic from ordinary dirty-line evictions, which is why
NP appears in the Fig. 9 traffic comparison with a non-zero bar.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SimulationError
from repro.core.rid import pack_rid
from repro.persist.base import PersistenceScheme, SchemeThread


class NoPersistence(PersistenceScheme):
    """Begin/end are pure bookkeeping; reads/writes are plain cache ops."""

    name = "np"

    #: no persistence, no durability guarantees - every conflicting
    #: persist pair is (vacuously) a race, which is why the detector
    #: refuses to analyse this scheme rather than report noise
    ORDERING_EDGES = frozenset()

    def register_thread(self, thread_id: int, core_id: int) -> SchemeThread:
        return SchemeThread(thread_id, core_id)

    def begin(self, thread: SchemeThread, done: Callable[[], None]) -> None:
        thread.nest_depth += 1
        if thread.nest_depth == 1:
            thread.regions_begun += 1
        done()

    def end(self, thread: SchemeThread, done: Callable[[], None]) -> None:
        if thread.nest_depth <= 0:
            raise SimulationError("end without begin")
        thread.nest_depth -= 1
        if thread.nest_depth == 0:
            # NP gives no durability, but the region is "complete" for
            # throughput accounting purposes.
            self._notify_commit(pack_rid(thread.thread_id, thread.regions_begun))
        done()

    def write(self, thread: SchemeThread, addr: int, values, done: Callable[[], None]) -> None:
        self.machine.volatile.write_range(addr, values)
        self.machine.hierarchy.access(thread.core_id, addr, True, lambda meta: done())

    def read(self, thread: SchemeThread, addr: int, nwords: int, done: Callable[[list], None]) -> None:
        def after(meta) -> None:
            done([self.machine.volatile.read_word(addr + 8 * i) for i in range(nwords)])

        self.machine.hierarchy.access(thread.core_id, addr, False, after)

"""Persistence schemes: ASAP and the paper's four baselines (Sec. 6.3).

=========  ==================================================================
Scheme     Commit discipline
=========  ==================================================================
``np``     no persistency at all (upper bound)
``sw``     software undo logging; log flush+fence on the critical path per
           first write, data flushes + fence at region end
``hwundo`` hardware undo logging, synchronous commit: wait for all LPOs and
           DPOs at region end (Proteus-style)
``hwredo`` hardware redo logging, synchronous commit: wait for LPOs at
           region end; DPOs asynchronous after commit
``asap``   asynchronous commit: wait for nothing at region end; commit
           order enforced via hardware dependence tracking
``asap_redo`` the Fig. 2c extension: asynchronous commit on redo logging,
           with durable commit markers and replay recovery
``eadr``   idealized Sec. 8 contrast: battery-backed caches (zero persist
           ops, WAL entirely in cache, large battery requirement)
=========  ==================================================================

Use :func:`make_scheme` to construct one by name.
"""

from repro.persist.base import PersistenceScheme, SchemeThread
from repro.persist.np import NoPersistence
from repro.persist.sw import SoftwareLogging
from repro.persist.hwundo import HardwareUndoLogging
from repro.persist.hwredo import HardwareRedoLogging
from repro.persist.asap_scheme import AsapScheme
from repro.persist.asap_redo import AsapRedoLogging
from repro.persist.eadr import EadrLogging

_SCHEMES = {
    "np": NoPersistence,
    "sw": SoftwareLogging,
    "sw_dpo_only": lambda: SoftwareLogging(dpo_only=True),
    "hwundo": HardwareUndoLogging,
    "hwredo": HardwareRedoLogging,
    "asap": AsapScheme,
    "asap_redo": AsapRedoLogging,
    "eadr": EadrLogging,
}


def make_scheme(name: str) -> PersistenceScheme:
    """Build a persistence scheme by its evaluation name."""
    try:
        factory = _SCHEMES[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; choose from {sorted(_SCHEMES)}")
    return factory()


def scheme_names():
    """All known scheme names."""
    return sorted(_SCHEMES)


__all__ = [
    "PersistenceScheme",
    "SchemeThread",
    "NoPersistence",
    "SoftwareLogging",
    "HardwareUndoLogging",
    "HardwareRedoLogging",
    "AsapScheme",
    "AsapRedoLogging",
    "EadrLogging",
    "make_scheme",
    "scheme_names",
]

"""Machine-readable JSON reports for the analysis passes.

One report schema covers both tools::

    {
      "tool": "repro.analysis",
      "pass": "lint" | "sanitize",
      "rules": [ {id, name, severity, summary, paper_ref}, ... ],
      "targets": [ per-target result dicts ],
      "summary": {"targets": N, "errors": N, "warnings": N, "ok": bool}
    }

The ``make lint`` target and the CI workflow consume ``summary.ok``;
humans read the per-target violation lists.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping

from repro.analysis.rules import LINT_RULES, SANITIZER_RULES, Violation


def _summarise(violations: List[dict]) -> Dict[str, int]:
    errors = sum(1 for v in violations if v.get("severity") == "error")
    warnings = sum(1 for v in violations if v.get("severity") == "warning")
    return {"errors": errors, "warnings": warnings}


def lint_report(results: Mapping[str, object]) -> dict:
    """Build the report dict for a set of lint results (name -> LintResult)."""
    targets = [results[name].to_dict() for name in sorted(results)]
    all_violations = [v for t in targets for v in t["violations"]]
    counts = _summarise(all_violations)
    return {
        "tool": "repro.analysis",
        "pass": "lint",
        "rules": [rule.to_dict() for _, rule in sorted(LINT_RULES.items())],
        "targets": targets,
        "summary": {
            "targets": len(targets),
            "ops_checked": sum(t["ops_checked"] for t in targets),
            **counts,
            "ok": counts["errors"] == 0,
        },
    }


def sanitize_report(runs: List[dict]) -> dict:
    """Build the report dict for sanitized runs.

    Each entry of ``runs`` is ``{"workload", "scheme", "cycles",
    "violations": [Violation, ...], "events_checked"}``.
    """
    targets = []
    for run in runs:
        violations = [
            v.to_dict() if isinstance(v, Violation) else v
            for v in run.get("violations", [])
        ]
        targets.append({**run, "violations": violations})
    all_violations = [v for t in targets for v in t["violations"]]
    counts = _summarise(all_violations)
    return {
        "tool": "repro.analysis",
        "pass": "sanitize",
        "rules": [rule.to_dict() for _, rule in sorted(SANITIZER_RULES.items())],
        "targets": targets,
        "summary": {
            "targets": len(targets),
            "events_checked": sum(t.get("events_checked", 0) for t in targets),
            **counts,
            "ok": counts["errors"] == 0,
        },
    }


def write_json(path: str, report: dict) -> None:
    """Write ``report`` to ``path`` as indented JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def render_text(report: dict) -> str:
    """A terse human rendering of a report (used by the CLI)."""
    lines = [f"{report['pass']}: {report['summary']['targets']} target(s)"]
    for target in report["targets"]:
        name = target.get("source") or target.get("workload", "?")
        violations = target["violations"]
        if not violations:
            lines.append(f"  {name}: clean")
            continue
        lines.append(f"  {name}: {len(violations)} finding(s)")
        for v in violations:
            where = []
            if "thread_id" in v:
                where.append(f"t{v['thread_id']}")
            if "op_index" in v:
                where.append(f"op {v['op_index']}")
            if "cycle" in v and v["cycle"] is not None:
                where.append(f"cycle {v['cycle']}")
            loc = f" ({', '.join(where)})" if where else ""
            lines.append(
                f"    {v['rule_id']} [{v['severity']}]{loc}: {v['message']}"
            )
    s = report["summary"]
    lines.append(
        f"summary: {s['errors']} error(s), {s['warnings']} warning(s) -> "
        f"{'OK' if s['ok'] else 'FAIL'}"
    )
    return "\n".join(lines)

"""Machine-readable JSON reports for the analysis passes.

One report schema covers all three tools::

    {
      "schema_version": 1,
      "tool": "repro.analysis",
      "pass": "lint" | "sanitize" | "races",
      "rules": [ {id, name, severity, summary, paper_ref}, ... ],
      "targets": [ per-target result dicts ],
      "summary": {"targets": N, "errors": N, "warnings": N, "ok": bool}
    }

``schema_version`` is bumped on any incompatible shape change (the
recovery trace's ``TRACE_SCHEMA`` set the precedent;
:func:`validate_report` is the matching hand-rolled validator - no
external JSON-schema dependency). The ``make lint`` target and the CI
workflow consume ``summary.ok``; humans read the per-target violation
lists.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Tuple

from repro.analysis.rules import LINT_RULES, RACE_RULES, SANITIZER_RULES, Violation

#: bump on incompatible changes to the report shape below
ANALYSIS_SCHEMA_VERSION = 1

#: the report's shape: field -> (type, required)
REPORT_SCHEMA: Dict[str, Tuple[type, bool]] = {
    "schema_version": (int, True),
    "tool": (str, True),
    "pass": (str, True),
    "rules": (list, True),
    "targets": (list, True),
    "summary": (dict, True),
}

_SUMMARY_SCHEMA: Dict[str, Tuple[type, bool]] = {
    "targets": (int, True),
    "errors": (int, True),
    "warnings": (int, True),
    "ok": (bool, True),
}

_PASSES = ("lint", "sanitize", "races")


def _summarise(violations: List[dict]) -> Dict[str, int]:
    errors = sum(1 for v in violations if v.get("severity") == "error")
    warnings = sum(1 for v in violations if v.get("severity") == "warning")
    return {"errors": errors, "warnings": warnings}


def lint_report(results: Mapping[str, object]) -> dict:
    """Build the report dict for a set of lint results (name -> LintResult)."""
    targets = [results[name].to_dict() for name in sorted(results)]
    all_violations = [v for t in targets for v in t["violations"]]
    counts = _summarise(all_violations)
    return {
        "schema_version": ANALYSIS_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "pass": "lint",
        "rules": [rule.to_dict() for _, rule in sorted(LINT_RULES.items())],
        "targets": targets,
        "summary": {
            "targets": len(targets),
            "ops_checked": sum(t["ops_checked"] for t in targets),
            **counts,
            "ok": counts["errors"] == 0,
        },
    }


def sanitize_report(runs: List[dict]) -> dict:
    """Build the report dict for sanitized runs.

    Each entry of ``runs`` is ``{"workload", "scheme", "cycles",
    "violations": [Violation, ...], "events_checked"}``.
    """
    targets = []
    for run in runs:
        violations = [
            v.to_dict() if isinstance(v, Violation) else v
            for v in run.get("violations", [])
        ]
        targets.append({**run, "violations": violations})
    all_violations = [v for t in targets for v in t["violations"]]
    counts = _summarise(all_violations)
    return {
        "schema_version": ANALYSIS_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "pass": "sanitize",
        "rules": [rule.to_dict() for _, rule in sorted(SANITIZER_RULES.items())],
        "targets": targets,
        "summary": {
            "targets": len(targets),
            "events_checked": sum(t.get("events_checked", 0) for t in targets),
            **counts,
            "ok": counts["errors"] == 0,
        },
    }


def races_report(results: List[object]) -> dict:
    """Build the report dict for race-detector passes.

    Each entry of ``results`` is a
    :class:`~repro.analysis.races.RacesResult` (or its
    ``to_target_dict()`` output). A finding's report severity follows its
    rule; ``summary.confirmed`` separately counts findings whose witness
    was confirmed (observed inversion or directed-replay divergence).
    """
    targets = [
        r if isinstance(r, dict) else r.to_target_dict() for r in results
    ]
    all_violations = [v for t in targets for v in t["violations"]]
    counts = _summarise(all_violations)
    return {
        "schema_version": ANALYSIS_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "pass": "races",
        "rules": [rule.to_dict() for _, rule in sorted(RACE_RULES.items())],
        "targets": targets,
        "summary": {
            "targets": len(targets),
            "nodes": sum(t.get("nodes", 0) for t in targets),
            "events_checked": sum(t.get("events_checked", 0) for t in targets),
            "confirmed": sum(
                1 for v in all_violations if v.get("status") == "CONFIRMED"
            ),
            **counts,
            "ok": counts["errors"] == 0,
        },
    }


def validate_report(report: dict) -> List[str]:
    """Check a report against :data:`REPORT_SCHEMA`; returns problem
    strings (empty means valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return [f"report is {type(report).__name__}, expected dict"]
    for key, (typ, required) in REPORT_SCHEMA.items():
        if key not in report:
            if required:
                problems.append(f"missing field {key!r}")
            continue
        if not isinstance(report[key], typ):
            problems.append(
                f"field {key!r} is {type(report[key]).__name__}, "
                f"expected {typ.__name__}"
            )
    version = report.get("schema_version")
    if isinstance(version, int) and version > ANALYSIS_SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{ANALYSIS_SCHEMA_VERSION}"
        )
    if "pass" in report and report["pass"] not in _PASSES:
        problems.append(
            f"pass {report['pass']!r} not one of {', '.join(_PASSES)}"
        )
    for i, target in enumerate(report.get("targets") or []):
        if not isinstance(target, dict):
            problems.append(f"targets[{i}] is not an object")
            continue
        if not isinstance(target.get("violations"), list):
            problems.append(f"targets[{i}] missing violations list")
    summary = report.get("summary")
    if isinstance(summary, dict):
        for key, (typ, required) in _SUMMARY_SCHEMA.items():
            if key not in summary:
                if required:
                    problems.append(f"summary missing {key!r}")
            elif not isinstance(summary[key], typ):
                problems.append(
                    f"summary.{key} is {type(summary[key]).__name__}, "
                    f"expected {typ.__name__}"
                )
    return problems


def write_json(path: str, report: dict) -> None:
    """Write ``report`` to ``path`` as indented JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def render_text(report: dict) -> str:
    """A terse human rendering of a report (used by the CLI)."""
    lines = [f"{report['pass']}: {report['summary']['targets']} target(s)"]
    for target in report["targets"]:
        name = target.get("source") or target.get("workload", "?")
        violations = target["violations"]
        if not violations:
            lines.append(f"  {name}: clean")
            continue
        lines.append(f"  {name}: {len(violations)} finding(s)")
        for v in violations:
            where = []
            if "thread_id" in v:
                where.append(f"t{v['thread_id']}")
            if "op_index" in v:
                where.append(f"op {v['op_index']}")
            if "cycle" in v and v["cycle"] is not None:
                where.append(f"cycle {v['cycle']}")
            loc = f" ({', '.join(where)})" if where else ""
            lines.append(
                f"    {v['rule_id']} [{v['severity']}]{loc}: {v['message']}"
            )
    s = report["summary"]
    lines.append(
        f"summary: {s['errors']} error(s), {s['warnings']} warning(s) -> "
        f"{'OK' if s['ok'] else 'FAIL'}"
    )
    return "\n".join(lines)

"""Persistency-correctness analysis for the ASAP reproduction.

Two cooperating passes over the same rule namespace:

* the **static workload linter** (:mod:`repro.analysis.linter`) walks a
  workload's op streams functionally - no timing, no caches - and flags
  persistency anti-patterns (``ASAP-L...`` rules),
* the **runtime invariant sanitizer** (:mod:`repro.analysis.sanitizer`)
  observes a live simulated machine through the
  :class:`~repro.common.SimObserver` hook points and checks the WAL
  contract event by event (``ASAP-S...`` rules),
* the **persist-ordering race detector** (:mod:`repro.analysis.races`)
  builds a happens-before graph over one instrumented run's persist
  operations and reports conflicting pairs left unordered
  (``ASAP-R...`` rules), each with a fuzzer-directing witness.

Command-line front end (also reachable as ``asap-repro analyze``)::

    python -m repro.analysis lint            # lint every bundled workload
    python -m repro.analysis sanitize -w Q   # timed run with the sanitizer
    python -m repro.analysis races           # race-detect every workload
    python -m repro.analysis races --corpus tests/property/corpus
    python -m repro.analysis rules           # print the rule catalog

Rule IDs, severities, and paper references live in
:mod:`repro.analysis.rules` and are documented in ``docs/ANALYSIS.md``.
"""

from repro.analysis.rules import (
    ALL_RULES,
    LINT_RULES,
    RACE_RULES,
    SANITIZER_RULES,
    Rule,
    Violation,
    all_rules,
    get_rule,
)
from repro.analysis.linter import (
    LintMachine,
    LintResult,
    WorkloadLinter,
    lint_all_workloads,
    lint_machine,
    lint_threads,
    lint_workload,
)
from repro.analysis.sanitizer import Sanitizer
from repro.analysis.races import (
    RaceFinding,
    RaceGraph,
    RaceTracer,
    RacesResult,
    analyze_trace,
    detect_in_case,
    detect_in_workload,
    verify_finding,
)
from repro.analysis.report import (
    ANALYSIS_SCHEMA_VERSION,
    lint_report,
    races_report,
    render_text,
    sanitize_report,
    validate_report,
    write_json,
)

__all__ = [
    "ALL_RULES",
    "LINT_RULES",
    "RACE_RULES",
    "SANITIZER_RULES",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "LintMachine",
    "LintResult",
    "WorkloadLinter",
    "lint_all_workloads",
    "lint_machine",
    "lint_threads",
    "lint_workload",
    "Sanitizer",
    "RaceFinding",
    "RaceGraph",
    "RaceTracer",
    "RacesResult",
    "analyze_trace",
    "detect_in_case",
    "detect_in_workload",
    "verify_finding",
    "ANALYSIS_SCHEMA_VERSION",
    "lint_report",
    "races_report",
    "render_text",
    "sanitize_report",
    "validate_report",
    "write_json",
]

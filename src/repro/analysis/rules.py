"""Rule catalog and violation records for the persistency analyses.

Two rule families share one namespace:

* ``ASAP-Lxxx`` - static workload-linter rules (:mod:`repro.analysis.linter`),
  judged over an op stream without executing timing,
* ``ASAP-Sxxx`` - runtime sanitizer rules (:mod:`repro.analysis.sanitizer`),
  checked on live machine events via the :class:`~repro.common.SimObserver`
  hook points,
* ``ASAP-Rxxx`` - persist-ordering race rules (:mod:`repro.analysis.races`),
  judged by a happens-before pass over the persist graph of one
  instrumented run; each finding carries a fuzzer-replayable witness.

Each rule names the paper section whose contract it enforces; the catalog
is rendered by ``python -m repro.analysis rules`` and documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.common.errors import AnalysisError

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One analysis rule."""

    id: str
    name: str
    severity: str
    summary: str
    paper_ref: str

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "severity": self.severity,
            "summary": self.summary,
            "paper_ref": self.paper_ref,
        }


LINT_RULES = {
    rule.id: rule
    for rule in (
        Rule(
            "ASAP-L001",
            "pm-store-outside-region",
            ERROR,
            "A store to persistent memory outside any asap_begin/asap_end "
            "region: the write is neither logged nor failure-atomic.",
            "Secs. 4.5-4.6 (WAL contract covers region stores only)",
        ),
        Rule(
            "ASAP-L002",
            "unbalanced-region",
            ERROR,
            "asap_end without a matching asap_begin, or a thread that "
            "finishes with an atomic region still open.",
            "Secs. 4.5, 4.7 (region begin/end pairing and flattening)",
        ),
        Rule(
            "ASAP-L003",
            "lock-mismatch",
            ERROR,
            "A lock released while not held, re-acquired while held, or "
            "still held when its thread finishes.",
            "Sec. 2.1 (WAL provides atomicity, locks provide isolation)",
        ),
        Rule(
            "ASAP-L004",
            "fence-inside-region",
            ERROR,
            "asap_fence inside an open atomic region: the fence waits for "
            "the thread's last region to commit, which cannot happen "
            "before the region ends - guaranteed deadlock.",
            "Sec. 5.2 (synchronous persistence on demand)",
        ),
        Rule(
            "ASAP-L005",
            "uncommitted-pm-read",
            WARNING,
            "A read of persistent state last written by another thread's "
            "still-open atomic region: at a crash point here, recovery may "
            "roll the observed value back (a dirty read across regions).",
            "Secs. 4.6.3, 5.5 (dependence capture and recovery order)",
        ),
        Rule(
            "ASAP-L006",
            "migrate-inside-region",
            ERROR,
            "A context switch inside an atomic region; threads migrate "
            "between regions, after outstanding persists complete.",
            "Sec. 5.7 (context switching at quantum boundaries)",
        ),
        Rule(
            "ASAP-L007",
            "region-lock-overlap",
            WARNING,
            "A lock's critical section and an atomic region partially "
            "overlap (acquired outside the region but released inside it, "
            "or vice versa): isolation and failure-atomicity scopes must "
            "nest cleanly.",
            "Sec. 2.1 (regions nest inside critical sections)",
        ),
    )
}

SANITIZER_RULES = {
    rule.id: rule
    for rule in (
        Rule(
            "ASAP-S001",
            "log-before-data",
            ERROR,
            "A data persist (DPO or eviction writeback) for a line of an "
            "uncommitted region reached the persistence domain before the "
            "line's log entry was durable: undo logging is broken for "
            "that line.",
            "Sec. 4.6.1 (LockBit protocol: log persists before data)",
        ),
        Rule(
            "ASAP-S002",
            "commit-order",
            ERROR,
            "A region committed while a predecessor on its Dependence "
            "List was still uncommitted: recovery could expose an effect "
            "without its cause.",
            "Secs. 4.5, 4.8 (Dependence List gates Fig. 4 transition 4)",
        ),
        Rule(
            "ASAP-S003",
            "capacity-exceeded",
            ERROR,
            "A finite hardware structure (CL List entries/CLPtr slots, "
            "Dependence List entries/Dep slots, LH-WPQ, WPQ) holds more "
            "items than its configured capacity: a structural stall was "
            "bypassed.",
            "Table 2, Secs. 4.6.2, 7.4 (structure sizes and stalls)",
        ),
        Rule(
            "ASAP-S004",
            "freed-log-use",
            ERROR,
            "A log persist operation was issued for a region that already "
            "committed and freed its log records: the entry would land in "
            "a record slot that may belong to another region.",
            "Secs. 4.4, 5.5 (log freeing at commit, circular reuse)",
        ),
        Rule(
            "ASAP-S005",
            "mshr-consistency",
            ERROR,
            "The non-blocking hierarchy's outstanding-miss tracking broke "
            "its contract: a second fetch was allocated for a line already "
            "in flight, a merge or fill targeted a line with no in-flight "
            "fetch, or an MSHR file held more entries than its capacity.",
            "docs/MEMORY.md (MSHR allocate/merge/replay rules)",
        ),
    )
}

RACE_RULES = {
    rule.id: rule
    for rule in (
        Rule(
            "ASAP-R001",
            "unordered-data-persists",
            ERROR,
            "Two persists of the same line with different payloads, from "
            "different regions, have no durability-ordering edge between "
            "them: which value survives a crash depends on WPQ timing "
            "(the PR 3 cross-thread commit-ordering bug class).",
            "Sec. 4.8 (inter-thread ordering via Dependence Lists)",
        ),
        Rule(
            "ASAP-R002",
            "unordered-undo-chain",
            ERROR,
            "Chained same-line log entries (a dependent's logged old value "
            "is its predecessor's uncommitted data) may persist out of "
            "chain order: a crash between them leaves an undo chain whose "
            "restore materialises never-durable data (the PR 5 bug class).",
            "Sec. 5.5 + docs/RECOVERY.md (per-line log-persist ordering)",
        ),
        Rule(
            "ASAP-R003",
            "log-before-data-unordered",
            ERROR,
            "A data persist (DPO or eviction writeback) of an uncommitted "
            "region's line is not ordered after that line's log persist: "
            "the in-place bytes can become durable before the undo entry "
            "that protects them.",
            "Sec. 4.6.1 (LockBit protocol: log persists before data)",
        ),
        Rule(
            "ASAP-R004",
            "unordered-commit-order",
            ERROR,
            "A region's commit (or durable commit marker) is not ordered "
            "after a Dependence-List predecessor's: recovery could replay "
            "an effect without its cause.",
            "Secs. 4.5, 4.8 (Dependence List gates Fig. 4 transition 4)",
        ),
    )
}

ALL_RULES: Dict[str, Rule] = {**LINT_RULES, **SANITIZER_RULES, **RACE_RULES}


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by ID, raising :class:`AnalysisError` when unknown."""
    try:
        return ALL_RULES[rule_id]
    except KeyError:
        raise AnalysisError(f"unknown analysis rule {rule_id!r}") from None


def all_rules() -> Iterable[Rule]:
    """Every rule, linter first, in ID order."""
    return [ALL_RULES[rid] for rid in sorted(ALL_RULES)]


@dataclass
class Violation:
    """One analysis finding, attributable to a rule and a location.

    ``thread_id``/``op_index`` locate linter findings in the op stream;
    ``cycle`` locates sanitizer findings in simulated time. ``source``
    names the analysed workload or the machine structure involved.
    """

    rule_id: str
    message: str
    severity: str = ""
    thread_id: Optional[int] = None
    op_index: Optional[int] = None
    cycle: Optional[int] = None
    source: Optional[str] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.severity:
            self.severity = get_rule(self.rule_id).severity

    @property
    def rule(self) -> Rule:
        return get_rule(self.rule_id)

    def to_dict(self) -> dict:
        out = {
            "rule_id": self.rule_id,
            "rule_name": self.rule.name,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("thread_id", "op_index", "cycle", "source"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.details:
            out["details"] = dict(self.details)
        return out

    def __str__(self) -> str:
        where = []
        if self.source is not None:
            where.append(str(self.source))
        if self.thread_id is not None:
            where.append(f"thread {self.thread_id}")
        if self.op_index is not None:
            where.append(f"op {self.op_index}")
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        loc = f" ({', '.join(where)})" if where else ""
        return f"{self.rule_id} [{self.severity}]{loc}: {self.message}"

"""Runtime invariant sanitizer: checks ASAP's WAL contract on live events.

The sanitizer is a :class:`~repro.common.SimObserver` wired into the
machine's hook points (``AsapEngine.observer``, each WPQ's and Dependence
List's ``observer``, the cache hierarchy's ``observer``). It keeps a small
mirror of the protocol state - which regions are active, which (region,
line) pairs have durable log entries, which regions each region depends
on - and raises :class:`~repro.common.errors.SanitizerError` (or collects
a :class:`~repro.analysis.rules.Violation`) the moment an event breaks one
of the S-rules:

* ASAP-S001 log-before-data: a DPO/WB for an uncommitted region's line is
  accepted into a WPQ although the line's log entry is not durable yet,
* ASAP-S002 commit-order: a region commits before a recorded Dependence
  List predecessor,
* ASAP-S003 capacity: CL List / CLPtr / Dependence List / Dep slot /
  LH-WPQ / WPQ occupancy exceeds its configured capacity,
* ASAP-S004 freed-log-use: a log persist operation is issued for a region
  whose log records were already freed by commit.

Attach with :meth:`Sanitizer.attach`; enable on harness runs with the
``--sanitize`` flag (see :mod:`repro.harness.cli`) or
``run_once(..., sanitize=True)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import SanitizerError
from repro.common.observe import SimObserver
from repro.analysis.rules import Violation
from repro.mem.wpq import DPO, LPO, WB


class Sanitizer(SimObserver):
    """Collects (or raises on) runtime persistency-invariant violations."""

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.violations: List[Violation] = []
        self.events_checked = 0
        self._machine = None
        #: rids begun and not yet committed
        self._active: Set[int] = set()
        #: rids committed (log freed)
        self._committed: Set[int] = set()
        #: (rid, data line) pairs whose log entry is durable
        self._logged: Set[Tuple[int, int]] = set()
        #: rid -> set of rids it depends on (mirror of Dep slots over time)
        self._deps: Dict[int, Set[int]] = {}
        #: lines with an in-flight MSHR fetch (mirror of the LLC file)
        self._mshr_inflight: Set[int] = set()

    # -- bookkeeping -------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def _now(self) -> Optional[int]:
        if self._machine is not None:
            return self._machine.scheduler.now
        return None

    def _flag(self, rule_id: str, message: str, source: Optional[str] = None, **details) -> None:
        violation = Violation(
            rule_id=rule_id,
            message=message,
            cycle=self._now(),
            source=source,
            details=details,
        )
        self.violations.append(violation)
        if self.raise_on_violation:
            raise SanitizerError(violation)

    # -- wiring ------------------------------------------------------------

    def attach(self, machine) -> "Sanitizer":
        """Install this sanitizer on every hook point of ``machine``.

        WPQ and cache-hierarchy hooks apply to any scheme; engine and
        Dependence List hooks additionally apply when the scheme exposes an
        :class:`~repro.core.engine.AsapEngine`.
        """
        from repro.core.engine import AsapEngine

        self._machine = machine
        for channel in machine.memory.channels:
            channel.wpq.observer = self
        machine.hierarchy.observer = self
        engine = getattr(machine.scheme, "engine", None)
        if isinstance(engine, AsapEngine):
            engine.observer = self
            for dl in engine.dep_lists:
                dl.observer = self
        machine.sanitizer = self
        return self

    # -- engine events -----------------------------------------------------

    def region_begun(self, engine, thread, rid) -> None:
        self.events_checked += 1
        self._active.add(rid)
        self._deps.setdefault(rid, set())
        cl = engine.cl_lists[thread.core_id]
        if len(cl) > cl.max_entries:
            self._flag(
                "ASAP-S003",
                f"CL List of core {thread.core_id} holds {len(cl)} entries "
                f"(capacity {cl.max_entries})",
                source=f"cl-list[{thread.core_id}]",
                occupancy=len(cl),
                capacity=cl.max_entries,
            )

    def dep_captured(self, engine, rid, owner) -> None:
        self.events_checked += 1
        self._deps.setdefault(rid, set()).add(owner)
        entry = engine.dep_list_for(rid).entry(rid)
        if entry is not None and len(entry.deps) > entry.max_deps:
            self._flag(
                "ASAP-S003",
                f"region {rid:#x} tracks {len(entry.deps)} dependencies "
                f"(Dep slot capacity {entry.max_deps})",
                source="dep-slots",
                rid=rid,
                occupancy=len(entry.deps),
                capacity=entry.max_deps,
            )

    def slot_opened(self, engine, entry, line) -> None:
        self.events_checked += 1
        if len(entry.slots) > entry.max_slots:
            self._flag(
                "ASAP-S003",
                f"CL entry of region {entry.rid:#x} tracks "
                f"{len(entry.slots)} lines (CLPtr capacity {entry.max_slots})",
                source="clptr-slots",
                rid=entry.rid,
                occupancy=len(entry.slots),
                capacity=entry.max_slots,
            )

    def lpo_initiated(self, engine, rid, line, entry_addr) -> None:
        self.events_checked += 1
        if rid in self._committed:
            self._flag(
                "ASAP-S004",
                f"LPO initiated for line {line:#x} of region {rid:#x}, "
                "which already committed and freed its log records",
                source="undo-log",
                rid=rid,
                line=line,
            )
        for lh in engine.lh_wpqs:
            if len(lh) > lh.capacity:
                self._flag(
                    "ASAP-S003",
                    f"{lh.name} holds {len(lh)} headers "
                    f"(capacity {lh.capacity})",
                    source=lh.name,
                    occupancy=len(lh),
                    capacity=lh.capacity,
                )

    def lpo_logged(self, engine, rid, line) -> None:
        self.events_checked += 1
        self._logged.add((rid, line))

    def region_committed(self, engine, rid) -> None:
        self.events_checked += 1
        outstanding = {
            dep for dep in self._deps.get(rid, ()) if dep not in self._committed
        }
        self._active.discard(rid)
        self._committed.add(rid)
        self._deps.pop(rid, None)
        if outstanding:
            pretty = ", ".join(f"{dep:#x}" for dep in sorted(outstanding))
            self._flag(
                "ASAP-S002",
                f"region {rid:#x} committed before its Dependence List "
                f"predecessor(s) {pretty}",
                source="dependence-list",
                rid=rid,
                outstanding=sorted(outstanding),
            )

    # -- dependence list events -------------------------------------------

    def dep_entry_opened(self, dep_list, entry) -> None:
        self.events_checked += 1
        if len(dep_list) > dep_list.max_entries:
            self._flag(
                "ASAP-S003",
                f"Dependence List of channel {dep_list.channel_index} holds "
                f"{len(dep_list)} entries (capacity {dep_list.max_entries})",
                source=f"dep-list[{dep_list.channel_index}]",
                occupancy=len(dep_list),
                capacity=dep_list.max_entries,
            )

    # -- WPQ events --------------------------------------------------------

    def wpq_accepted(self, wpq, op) -> None:
        self.events_checked += 1
        if len(wpq) > wpq.capacity:
            self._flag(
                "ASAP-S003",
                f"{wpq.name} holds {len(wpq)} entries "
                f"(capacity {wpq.capacity})",
                source=wpq.name,
                occupancy=len(wpq),
                capacity=wpq.capacity,
            )
        rid = op.rid
        if rid is None:
            return
        if op.kind in (DPO, WB) and rid in self._active:
            if (rid, op.target_line) not in self._logged:
                self._flag(
                    "ASAP-S001",
                    f"{op.kind.upper()} for line {op.target_line:#x} of "
                    f"uncommitted region {rid:#x} accepted into {wpq.name} "
                    "before the line's log entry was durable",
                    source=wpq.name,
                    rid=rid,
                    line=op.target_line,
                    kind=op.kind,
                )
        elif op.kind == LPO and rid in self._committed:
            self._flag(
                "ASAP-S004",
                f"LPO for line {op.data_line:#x} of committed region "
                f"{rid:#x} accepted into {wpq.name} after its log records "
                "were freed",
                source=wpq.name,
                rid=rid,
                line=op.data_line,
            )

    # -- cache hierarchy events -------------------------------------------

    def line_evicted(self, meta, wb_op) -> None:
        self.events_checked += 1
        if meta.lock_bit:
            self._flag(
                "ASAP-S001",
                f"line {meta.line:#x} evicted from the LLC while its "
                "LockBit is set (an LPO is still in flight, so its log "
                "entry cannot be durable yet)",
                source="llc",
                line=meta.line,
                owner=meta.owner_rid,
            )

    def mshr_allocated(self, hierarchy, line, core_id) -> None:
        self.events_checked += 1
        if line in self._mshr_inflight:
            self._flag(
                "ASAP-S005",
                f"a second memory fetch was allocated for line {line:#x} "
                "while one is already in flight (secondary misses must "
                "merge, not refetch)",
                source="mshr",
                line=line,
                core=core_id,
            )
        self._mshr_inflight.add(line)
        mshrs = hierarchy.llc_mshrs
        if mshrs is not None and len(mshrs) > mshrs.capacity:
            self._flag(
                "ASAP-S003",
                f"{mshrs.name} holds {len(mshrs)} outstanding misses "
                f"(capacity {mshrs.capacity}): an exhaustion stall was "
                "bypassed",
                source="mshr",
                occupancy=len(mshrs),
                capacity=mshrs.capacity,
            )

    def mshr_merged(self, hierarchy, line, core_id) -> None:
        self.events_checked += 1
        if line not in self._mshr_inflight:
            self._flag(
                "ASAP-S005",
                f"a miss for line {line:#x} merged into a fetch that is "
                "not in flight",
                source="mshr",
                line=line,
                core=core_id,
            )

    def mshr_filled(self, hierarchy, line, waiters) -> None:
        self.events_checked += 1
        if line not in self._mshr_inflight:
            self._flag(
                "ASAP-S005",
                f"a fill completed for line {line:#x} with no in-flight "
                "fetch",
                source="mshr",
                line=line,
            )
        self._mshr_inflight.discard(line)
        if waiters <= 0:
            self._flag(
                "ASAP-S005",
                f"the fetch for line {line:#x} completed with no queued "
                "requester (every fetch starts with its primary miss's "
                "completion queued)",
                source="mshr",
                line=line,
            )

    def mshr_stalled(self, hierarchy, line, core_id) -> None:
        self.events_checked += 1

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        return {
            "events_checked": self.events_checked,
            "violations": [v.to_dict() for v in self.violations],
            "active_regions": len(self._active),
            "committed_regions": len(self._committed),
        }

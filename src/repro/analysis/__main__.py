"""``python -m repro.analysis``: the correctness-analysis front end.

Subcommands::

    lint [WORKLOAD ...]      statically lint workload op streams
    sanitize [-w WL ...]     run workloads under the runtime sanitizer
    races [-w WL ...]        happens-before race detection over persist
                             graphs (or --corpus DIR for fuzz cases)
    rules                    print the rule catalog

Every subcommand exits 0 when no error-severity violation was found
(``--strict`` also fails on warnings) and can emit the schema-versioned
JSON report with ``--json FILE``. The same front end is reachable as
``asap-repro analyze ...``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.linter import lint_workload
from repro.analysis.report import (
    lint_report,
    render_text,
    sanitize_report,
    write_json,
)
from repro.analysis.rules import all_rules
from repro.analysis.sanitizer import Sanitizer
from repro.common.errors import ReproError
from repro.workloads import WorkloadParams, workload_names


def _lint_params(args) -> WorkloadParams:
    return WorkloadParams(
        num_threads=args.threads,
        ops_per_thread=args.ops,
        value_bytes=args.value_bytes,
        setup_items=args.setup_items,
    )


def _cmd_lint(args) -> int:
    names = args.workloads or workload_names()
    params = _lint_params(args)
    results = {name: lint_workload(name, params) for name in names}
    report = lint_report(results)
    print(render_text(report))
    if args.json:
        write_json(args.json, report)
        print(f"wrote {args.json}")
    failed = not report["summary"]["ok"] or (
        args.strict and report["summary"]["warnings"] > 0
    )
    return 1 if failed else 0


def _cmd_sanitize(args) -> int:
    from repro.harness.runner import default_config, default_params, run_once

    names = args.workloads or ["Q", "HM", "BN"]
    runs = []
    for name in names:
        sanitizer = Sanitizer(raise_on_violation=False)
        result = run_once(
            name,
            args.scheme,
            config=default_config(quick=not args.full),
            params=default_params(quick=not args.full),
            sanitize=sanitizer,
        )
        runs.append(
            {
                "source": name,
                "workload": name,
                "scheme": args.scheme,
                "cycles": result.cycles,
                "events_checked": sanitizer.events_checked,
                "violations": list(sanitizer.violations),
            }
        )
    report = sanitize_report(runs)
    print(render_text(report))
    if args.json:
        write_json(args.json, report)
        print(f"wrote {args.json}")
    failed = not report["summary"]["ok"] or (
        args.strict and report["summary"]["warnings"] > 0
    )
    return 1 if failed else 0


def _cmd_races(args) -> int:
    from dataclasses import replace as dc_replace

    from repro.analysis.races import detect_in_case, detect_in_workload
    from repro.analysis.report import races_report
    from repro.harness.runner import default_config, default_params

    results = []
    if args.corpus or args.case:
        from repro.harness.fuzz import load_corpus_entry

        paths = list(args.case or [])
        if args.corpus:
            import glob
            import os

            paths.extend(
                sorted(glob.glob(os.path.join(args.corpus, "*.json")))
            )
        for path in paths:
            case, _meta = load_corpus_entry(path)
            if args.legacy_backpressure:
                case = dc_replace(case, fifo_backpressure=False)
            if args.legacy_line_order:
                case = dc_replace(case, ordered_line_log_persists=False)
            results.append(detect_in_case(case, source=path))
    else:
        names = args.workloads or workload_names()
        config = default_config(
            quick=not args.full,
            ordered_line_log_persists=not args.legacy_line_order,
        )
        if args.legacy_backpressure:
            config = dc_replace(
                config,
                memory=dc_replace(config.memory, wpq_fifo_backpressure=False),
            )
        params = default_params(quick=not args.full)
        for name in names:
            results.append(
                detect_in_workload(
                    name, args.scheme, config=config, params=params
                )
            )
    report = races_report(results)
    print(render_text(report))
    if args.json:
        write_json(args.json, report)
        print(f"wrote {args.json}")
    failed = not report["summary"]["ok"] or (
        args.strict and report["summary"]["warnings"] > 0
    )
    return 1 if failed else 0


def _cmd_rules(args) -> int:
    for rule in all_rules():
        print(f"{rule.id}  {rule.name} [{rule.severity}]")
        print(f"    {rule.summary}")
        print(f"    ref: {rule.paper_ref}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Persistency-correctness analysis for the ASAP reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="statically lint workload op streams")
    lint.add_argument("workloads", nargs="*", help="Table 3 names (default: all)")
    lint.add_argument("--threads", type=int, default=2)
    lint.add_argument("--ops", type=int, default=24, help="ops per thread")
    lint.add_argument("--value-bytes", type=int, default=64)
    lint.add_argument("--setup-items", type=int, default=24)
    lint.add_argument("--json", metavar="FILE", help="write the JSON report here")
    lint.add_argument("--strict", action="store_true", help="fail on warnings too")
    lint.set_defaults(fn=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize", help="run workloads with the runtime invariant sanitizer"
    )
    sanitize.add_argument(
        "-w", "--workloads", nargs="*", default=None, help="Table 3 names"
    )
    from repro.persist import scheme_names

    sanitize.add_argument("--scheme", default="asap", choices=scheme_names())
    sanitize.add_argument("--full", action="store_true", help="full-size machine")
    sanitize.add_argument("--json", metavar="FILE")
    sanitize.add_argument("--strict", action="store_true")
    sanitize.set_defaults(fn=_cmd_sanitize)

    races = sub.add_parser(
        "races",
        help="happens-before race detection over persist graphs",
    )
    races.add_argument(
        "-w", "--workloads", nargs="*", default=None, help="Table 3 names"
    )
    races.add_argument("--scheme", default="asap", choices=scheme_names())
    races.add_argument("--full", action="store_true", help="full-size machine")
    races.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="race-detect the fuzz corpus JSON cases in DIR instead of "
        "workloads",
    )
    races.add_argument(
        "--case",
        metavar="FILE",
        action="append",
        default=None,
        help="race-detect one corpus JSON case (repeatable)",
    )
    races.add_argument(
        "--legacy-backpressure",
        action="store_true",
        help="analyse under the pre-fix WPQ backpressure model (the "
        "wpq-fifo ordering edge drops out; expects findings)",
    )
    races.add_argument(
        "--legacy-line-order",
        action="store_true",
        help="analyse under the pre-fix same-line log-persist model (the "
        "line-chain ordering edge drops out; expects findings)",
    )
    races.add_argument("--json", metavar="FILE")
    races.add_argument("--strict", action="store_true")
    races.set_defaults(fn=_cmd_races)

    rules = sub.add_parser("rules", help="print the rule catalog")
    rules.set_defaults(fn=_cmd_rules)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
